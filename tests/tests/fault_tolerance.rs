//! Fault-tolerance integration tests (paper §III-C/D): with failed nodes
//! that have *not yet* been repaired, the overlay keeps routing queries
//! around them; once the recovery protocol runs, the structure is fully
//! consistent again.

use baton_core::{validate, BatonConfig, BatonError, BatonSystem};
use baton_net::SimRng;

fn build(n: usize, seed: u64) -> BatonSystem {
    BatonSystem::build(BatonConfig::default(), seed, n).expect("build overlay")
}

#[test]
fn queries_route_around_unrecovered_failures() {
    let mut overlay = build(200, 1);
    // Index data and remember which peer owns each key.
    let keys: Vec<u64> = (0..300u64).map(|i| 1 + i * 3_333_331).collect();
    for (i, key) in keys.iter().enumerate() {
        overlay.insert(*key, i as u64).unwrap();
    }

    // Silently fail 10% of the peers: no recovery protocol yet.
    let mut rng = SimRng::seeded(7);
    let mut peers = overlay.peers().to_vec();
    peers.sort_unstable();
    rng.shuffle(&mut peers);
    let failed: Vec<_> = peers.iter().copied().take(20).collect();
    for peer in &failed {
        overlay.fail_silently(*peer).unwrap();
    }

    // Every key whose owner is still alive must remain reachable from a
    // *live* issuer, by routing around the dead nodes (§III-D).  Keys owned
    // by a dead node are legitimately unreachable until recovery runs.
    let live_issuer = peers
        .iter()
        .copied()
        .find(|p| !failed.contains(p))
        .expect("a live peer exists");
    let owner_of = |overlay: &BatonSystem, key: u64| {
        overlay
            .peers()
            .iter()
            .copied()
            .find(|&p| overlay.node(p).unwrap().range.contains(key))
            .expect("domain fully covered")
    };
    let mut live_owned = 0usize;
    let mut reached = 0usize;
    for (i, key) in keys.iter().enumerate() {
        let owner = owner_of(&overlay, *key);
        let owner_alive = !failed.contains(&owner);
        match overlay.search_exact_from(live_issuer, *key) {
            Ok(report) => {
                if owner_alive {
                    live_owned += 1;
                    if report.matches.contains(&(i as u64)) {
                        reached += 1;
                    }
                }
            }
            Err(BatonError::PeerNotAlive(_)) | Err(BatonError::RoutingLoop { .. }) => {
                if owner_alive {
                    live_owned += 1;
                }
            }
            Err(other) => panic!("unexpected error while routing around failures: {other}"),
        }
    }
    // Live-owned keys stay reachable without any repair having run: the
    // DFS-style route-around explores every live detour, so even with 10%
    // of all peers dead *simultaneously* a key is only lost when the live
    // link graph itself is disconnected.  (The paper's protocol repairs
    // failures promptly; its fault-tolerance argument addresses single and
    // non-adjacent failures — see `single_failure_blocks_nothing`.)
    assert!(live_owned > 0);
    assert!(
        reached as f64 >= live_owned as f64 * 0.95,
        "only {reached}/{live_owned} live-owned keys reachable around {} failures",
        failed.len()
    );
}

#[test]
fn single_failure_blocks_nothing() {
    // The paper's primary fault-tolerance claim (§III-D): with one failed,
    // not-yet-repaired node, every key owned by a live node remains
    // reachable by routing around the hole.  Exercised for *every* internal
    // victim (the hardest cases: they sit on many paths) — the DFS-style
    // route-around in `locate_owner` must leave no hole unreachable.
    let keys: Vec<u64> = (0..100u64).map(|i| 1 + i * 9_999_998).collect();
    let base = build(120, 9);
    let mut peers = base.peers().to_vec();
    peers.sort_unstable();
    let victims: Vec<_> = peers
        .iter()
        .copied()
        .filter(|p| {
            let n = base.node(*p).unwrap();
            !n.is_leaf() && !n.is_root()
        })
        .collect();
    assert!(!victims.is_empty(), "internal nodes exist");
    for victim in victims {
        let mut overlay = build(120, 9);
        for (i, key) in keys.iter().enumerate() {
            overlay.insert(*key, i as u64).unwrap();
        }
        let victim_range = overlay.node(victim).unwrap().range;
        overlay.fail_silently(victim).unwrap();

        let issuer = peers.iter().copied().find(|p| *p != victim).unwrap();
        let mut blocked = 0usize;
        for (i, key) in keys.iter().enumerate() {
            if victim_range.contains(*key) {
                continue; // owned by the dead node: legitimately unreachable
            }
            match overlay.search_exact_from(issuer, *key) {
                Ok(report) => assert!(
                    report.matches.contains(&(i as u64)),
                    "key {key} reachable but value missing (victim {victim})"
                ),
                Err(_) => blocked += 1,
            }
        }
        assert_eq!(
            blocked, 0,
            "{blocked} live-owned keys became unreachable after failing {victim}"
        );
    }
}

#[test]
fn routing_around_failures_costs_only_a_few_extra_messages() {
    let mut overlay = build(150, 2);
    for i in 0..100u64 {
        overlay.insert(1 + i * 9_999_991, i).unwrap();
    }
    let log_n = (overlay.node_count() as f64).log2();

    // Baseline cost without failures.
    let mut baseline = 0u64;
    for i in 0..100u64 {
        baseline += overlay.search_exact(1 + i * 9_999_991).unwrap().messages;
    }

    // Fail a handful of peers silently and repeat the same queries from live
    // issuers.
    let mut rng = SimRng::seeded(3);
    let mut peers = overlay.peers().to_vec();
    peers.sort_unstable();
    rng.shuffle(&mut peers);
    let failed: Vec<_> = peers.iter().copied().take(8).collect();
    for peer in &failed {
        overlay.fail_silently(*peer).unwrap();
    }
    let issuer = peers.iter().copied().find(|p| !failed.contains(p)).unwrap();
    let mut degraded = 0u64;
    let mut answered = 0u64;
    for i in 0..100u64 {
        if let Ok(report) = overlay.search_exact_from(issuer, 1 + i * 9_999_991) {
            degraded += report.messages;
            answered += 1;
        }
    }
    assert!(answered >= 85, "too many queries failed: {answered}/100");
    let avg_degraded = degraded as f64 / answered as f64;
    let avg_baseline = baseline as f64 / 100.0;
    assert!(
        avg_degraded <= avg_baseline + log_n,
        "routing around failures cost {avg_degraded:.1} vs baseline {avg_baseline:.1}"
    );
}

#[test]
fn recovery_after_silent_failures_restores_full_consistency() {
    let mut overlay = build(80, 4);
    for i in 0..200u64 {
        overlay.insert(1 + i * 4_999_999, i).unwrap();
    }
    // Fail and recover nodes one at a time (failures without a parent-child
    // relationship are corrected independently, §III-C; overlapping
    // unrepaired failures are exercised by the routing tests above).
    let mut last_victim = None;
    for round in 0..5 {
        let victim = overlay.random_peer().unwrap();
        overlay.fail_silently(victim).unwrap();
        // Queries keep working while the failure is unrepaired.
        let _ = overlay.search_exact(1 + (round as u64) * 4_999_999);
        let report = overlay.recover_failed(victim).unwrap();
        assert_eq!(report.failed, victim);
        validate(&overlay)
            .unwrap_or_else(|e| panic!("inconsistent after recovering {victim}: {e}"));
        last_victim = Some(victim);
    }
    assert_eq!(overlay.node_count(), 75);
    // Recovering an alive or unknown peer is rejected.
    let alive = overlay.peers()[0];
    assert!(overlay.recover_failed(alive).is_err());
    assert!(matches!(
        overlay.recover_failed(last_victim.unwrap()),
        Err(BatonError::UnknownPeer(_))
    ));
}

#[test]
fn fail_silently_rejects_dead_or_unknown_peers() {
    let mut overlay = build(10, 5);
    let peer = overlay.peers()[0];
    overlay.fail_silently(peer).unwrap();
    assert!(matches!(
        overlay.fail_silently(peer),
        Err(BatonError::PeerNotAlive(_))
    ));
    assert!(matches!(
        overlay.fail_silently(baton_core::PeerId(9_999)),
        Err(BatonError::UnknownPeer(_))
    ));
}
