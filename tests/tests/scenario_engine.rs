//! The scenario registry and its generic engine:
//!
//! * the two legacy scenarios, now expressed as declarative
//!   [`ScenarioSpec`](baton_sim::scenario::ScenarioSpec)s, reproduce their
//!   pre-refactor JSON **byte for byte**
//!   (`tests/fixtures/scenario_smoke_seed.json`, captured from the
//!   hand-rolled runners before the phase/fault engine existed);
//! * every registered scenario is deterministic — two runs with the same
//!   profile render byte-identical JSON;
//! * every registered scenario covers every registered overlay purely by
//!   registration (no per-scenario per-overlay code to forget);
//! * the correlated-failure machinery actually kills peers, on every
//!   overlay, with the kills attributed to the `fail` class.

use baton_net::{RegionMap, SimTime};
use baton_sim::{render_scenarios_json, scenario, Profile};
use baton_workload::{FaultEvent, FaultKind, FaultPlan, OpClass};

/// The legacy scenarios re-expressed through the ScenarioSpec engine emit
/// the bytes captured from the pre-refactor hand-rolled runners.
#[test]
fn legacy_scenarios_match_the_pre_refactor_fixture_exactly() {
    let fixture = include_str!("../fixtures/scenario_smoke_seed.json");
    let profile = Profile::smoke();
    let results: Vec<_> = ["latency_under_churn", "flash_crowd"]
        .into_iter()
        .map(|id| scenario::run_scenario(id, &profile).expect("registered"))
        .collect();
    assert_eq!(
        render_scenarios_json(&results).trim(),
        fixture.trim(),
        "legacy scenario output diverged from the pre-refactor fixture"
    );
}

/// Byte-level determinism of the whole catalog: any registered scenario run
/// twice with the same profile renders identical JSON.  This is the
/// regression net for every seeded component a scenario composes — phased
/// schedules, regional latency, degradation windows, fault-victim
/// selection.
#[test]
fn every_registered_scenario_is_deterministic() {
    let profile = Profile::smoke();
    for spec in scenario::all_scenarios() {
        let first = scenario::run_scenario(spec.id, &profile).expect("registered");
        let second = scenario::run_scenario(spec.id, &profile).expect("registered");
        assert_eq!(
            render_scenarios_json(&[first]),
            render_scenarios_json(&[second]),
            "scenario {} is not deterministic",
            spec.id
        );
    }
}

/// Registration is the only wiring: every scenario reports one series per
/// registered overlay, and each series did real work.
#[test]
fn every_scenario_covers_every_overlay_by_registration_alone() {
    let profile = Profile::smoke();
    let overlays = baton_sim::overlay_names();
    for spec in scenario::all_scenarios() {
        let result = scenario::run_scenario(spec.id, &profile).expect("registered");
        assert_eq!(result.id, spec.id);
        let series_names: Vec<&str> = result.series.iter().map(|s| s.overlay.as_str()).collect();
        assert_eq!(
            series_names, overlays,
            "{}: series must cover every overlay in registration order",
            spec.id
        );
        for series in &result.series {
            assert!(
                series.throughput > 0.0,
                "{}: {} executed nothing",
                spec.id,
                series.overlay
            );
            assert!(series.virtual_seconds > 0.0);
            for class in &series.classes {
                assert!(
                    class.p50_ms <= class.p95_ms && class.p95_ms <= class.p99_ms,
                    "{}: {}::{} percentiles out of order",
                    spec.id,
                    series.overlay,
                    class.class
                );
            }
        }
    }
}

/// The correlated regional kill fires on all four overlays: deferred
/// fail-then-repair where the overlay supports it (BATON), and the
/// immediate fail-and-recover protocol — attributed to the `fail` class —
/// everywhere else.
#[test]
fn regional_failure_kills_peers_on_every_overlay() {
    let profile = Profile::smoke();
    let result = scenario::run_scenario("regional_failure", &profile).expect("registered");
    for series in &result.series {
        assert!(
            series.fault_kills > 0,
            "{} saw no correlated kills",
            series.overlay
        );
        if series.repairs > 0 {
            assert_eq!(
                series.repairs, series.fault_kills,
                "{}: every deferred kill must be repaired",
                series.overlay
            );
        } else {
            let fail_count: u64 = series
                .classes
                .iter()
                .filter(|c| c.class == OpClass::Fail.name())
                .map(|c| c.count)
                .sum();
            assert!(
                fail_count >= series.fault_kills,
                "{}: fail class ({fail_count}) must include the {} fault kills",
                series.overlay,
                series.fault_kills
            );
        }
    }
    // BATON is the overlay with a deferred-repair protocol: its series
    // carries the repair bookkeeping.
    assert!(result.series[0].repairs > 0);
    // The kills surface in the JSON rendering (legacy scenarios, with zero
    // kills, omit the key — that is what keeps their fixture stable).
    let json = render_scenarios_json(&[result]);
    assert!(json.contains("\"fault_kills\""));
    let legacy = scenario::run_scenario("flash_crowd", &profile).expect("registered");
    assert!(!render_scenarios_json(&[legacy]).contains("\"fault_kills\""));
}

/// Targeted region kills through the `Overlay` trait surface: every victim
/// of a `KillRegion` fault leaves the overlay's live peer list, and only
/// peers of the named region are touched — exercised directly against each
/// overlay, not through a scenario.
#[test]
fn targeted_region_kills_remove_exactly_the_selected_victims() {
    use baton_net::SimRng;
    use baton_workload::run_phased;

    let profile = Profile::smoke();
    let map = RegionMap::new(4, 0xFA11);
    for spec in baton_sim::standard_overlays() {
        let mut overlay = spec.build(&profile, 60, 0xC0FFEE);
        let before = overlay.peers().to_vec();
        assert_eq!(before.len(), 60, "{}", overlay.name());
        let region_size = before.iter().filter(|p| map.region_of(**p) == 2).count();
        assert!(region_size > 0, "{}: empty region", overlay.name());

        // An empty workload whose fault plan kills 50% of region 2 at t=1s.
        let workload = baton_workload::PhasedWorkload::queries_only(SimTime::from_secs(2), 0.0);
        let faults = FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::KillRegion {
                map,
                region: 2,
                fraction: 0.5,
            },
        }]);
        let mut rng = SimRng::seeded(7);
        let events = workload.schedule(&mut rng.derive(1));
        assert!(events.is_empty(), "zero-rate workload schedules nothing");
        let outcome =
            run_phased(&mut *overlay, &events, &workload, &faults, &mut rng, 5).expect("run");

        let expected = (region_size as f64 * 0.5).round() as u64;
        assert_eq!(
            outcome.fault_kills,
            expected,
            "{}: expected {expected} kills of region 2's {region_size} peers",
            overlay.name()
        );
        assert_eq!(overlay.node_count(), 60 - expected as usize);
        // BATON's leave/failure protocol relocates *other* peers into the
        // vacated positions but never removes them: the peers missing from
        // the live list afterwards are exactly in region 2.
        let after = overlay.peers();
        let gone: Vec<_> = before
            .iter()
            .filter(|p| after.binary_search(p).is_err())
            .collect();
        assert_eq!(gone.len(), expected as usize, "{}", overlay.name());
        assert!(
            gone.iter().all(|p| map.region_of(**p) == 2),
            "{}: a victim fell outside region 2",
            overlay.name()
        );
        overlay.validate().unwrap_or_else(|e| {
            panic!(
                "{} invariants broken after region kill: {e}",
                overlay.name()
            )
        });
    }
}

/// Regression: a fault wave must never select a victim that is already
/// dead.  Under deferred repair the victims of an earlier wave stay in the
/// membership list until their repair runs, so selection over raw
/// membership could re-kill a dead peer — erroring the kill and
/// under-delivering the wave's severity.  Two same-instant `Kill` waves
/// with a slow repair policy are the sharpest case: every wave-1 victim is
/// still dead while wave 2 selects.
#[test]
fn staggered_fault_waves_never_reselect_dead_victims() {
    use baton_core::{BatonConfig, BatonSystem};
    use baton_net::{Overlay, RepairPolicy, SimRng};
    use baton_workload::{run_phased, PhasedWorkload};

    let mut overlay = BatonSystem::build(BatonConfig::default(), 0xC0FFEE, 60).expect("build");
    overlay
        .set_replication(2)
        .expect("k=2 within BATON's range");
    let workload = PhasedWorkload::queries_only(SimTime::from_secs(4), 0.0);
    let policy = RepairPolicy {
        fast: SimTime::from_millis(500),
        slow: SimTime::from_secs(10),
    };
    let faults = FaultPlan::new(vec![
        FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::Kill { count: 8 },
        },
        FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::Kill { count: 8 },
        },
    ])
    .with_repair(policy);
    let mut rng = SimRng::seeded(7);
    let events = workload.schedule(&mut rng.derive(1));
    let outcome = run_phased(&mut overlay, &events, &workload, &faults, &mut rng, 5).expect("run");

    // 16 *distinct* peers died: dead victims are filtered out of the second
    // wave's selection pool, so no kill is wasted or skipped.
    assert_eq!(outcome.fault_kills, 16);
    assert_eq!(outcome.skipped_of(OpClass::Fail), 0);
    // Every deferred kill was repaired before the run returned.
    assert_eq!(outcome.repair_times.len(), 16);
    assert_eq!(outcome.repairs_abandoned, 0);
    assert_eq!(Overlay::node_count(&overlay), 60 - 16);
    overlay
        .validate()
        .expect("invariants hold after all repairs");
}

/// Fault-victim selection must not consume the shared key-draw stream:
/// overlays diverge in live peer sets once churn runs, so a selection that
/// drew from the main RNG would desynchronise every later data key and
/// break cross-overlay workload comparability.  Two identical runs — one
/// with a fault plan, one without — must leave the main stream in the same
/// state.
#[test]
fn fault_selection_leaves_the_key_stream_untouched() {
    use baton_core::{BatonConfig, BatonSystem};
    use baton_net::SimRng;
    use baton_workload::{run_phased, PhasedWorkload};

    let map = RegionMap::new(4, 0xFA11);
    let workload = PhasedWorkload::queries_only(SimTime::from_secs(2), 0.0);
    let faults = FaultPlan::new(vec![FaultEvent {
        at: SimTime::from_secs(1),
        kind: FaultKind::KillRegion {
            map,
            region: 2,
            fraction: 0.5,
        },
    }]);
    let next_draw_after = |faults: &FaultPlan| {
        let mut overlay = BatonSystem::build(BatonConfig::default(), 0xC0FFEE, 60).expect("build");
        let mut rng = SimRng::seeded(7);
        let events = workload.schedule(&mut rng.derive(1));
        let outcome = run_phased(&mut overlay, &events, &workload, faults, &mut rng, 5)
            .expect("run cannot fail");
        (outcome.fault_kills, rng.uniform_f64())
    };
    let (kills, with_faults) = next_draw_after(&faults);
    let (no_kills, without_faults) = next_draw_after(&FaultPlan::none());
    assert!(kills > 0 && no_kills == 0);
    assert_eq!(
        with_faults, without_faults,
        "victim selection consumed draws from the shared key stream"
    );
}
