//! The `--overlays` filter: narrowing the process-wide overlay list must
//! (a) drop every unselected series with zero per-figure code and (b) leave
//! the selected overlays' numbers **bit-identical** — the filtered run over
//! the paper's three systems reproduces the pre-D3-Tree golden fixture
//! exactly.
//!
//! The filter is process-global, so this file keeps all of its assertions
//! in a single test: test binaries run their tests concurrently, and two
//! tests mutating the filter would race.

use baton_sim::figures::{SERIES_BATON, SERIES_CHORD, SERIES_D3TREE, SERIES_MTREE};
use baton_sim::{
    clear_overlay_filter, figures, render_json, set_overlay_filter, standard_overlays, Profile,
};

#[test]
fn overlay_filter_narrows_every_driver_and_preserves_series_bits() {
    let profile = Profile::smoke();

    // Unknown names are rejected and leave the filter untouched.
    assert!(set_overlay_filter(&["Pastry".to_owned()]).is_err());
    assert_eq!(standard_overlays().len(), 4);

    // Filtered to the paper's three systems, the full figure run is
    // bit-identical to the fixture captured before the D3-Tree existed.
    let baselines: Vec<String> = [SERIES_BATON, SERIES_CHORD, SERIES_MTREE]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    set_overlay_filter(&baselines).expect("known names");
    assert_eq!(standard_overlays().len(), 3);
    let results = figures::run_all(&profile);
    let fixture = include_str!("../fixtures/fig8_smoke_pre_d3tree.json");
    assert_eq!(
        render_json(&results).trim(),
        fixture.trim(),
        "filtered figure output diverged from the pre-D3-Tree fixture"
    );

    // A single-overlay selection isolates that overlay in the comparison
    // figures (case-insensitively), without touching the BATON-only ones.
    set_overlay_filter(&["d3-tree".to_owned()]).expect("case-insensitive");
    let specs = standard_overlays();
    assert_eq!(specs.len(), 1);
    assert_eq!(specs[0].series, SERIES_D3TREE);
    let fig8d = figures::run_figure("8d", &profile).expect("8d");
    assert_eq!(fig8d.series_names(), vec![SERIES_D3TREE.to_owned()]);
    let fig8g = figures::run_figure("8g", &profile).expect("8g");
    assert!(
        !fig8g.series_names().is_empty(),
        "reference-only figures ignore the filter"
    );

    // An empty list clears the filter.
    clear_overlay_filter();
    assert_eq!(standard_overlays().len(), 4);
    set_overlay_filter(&[]).expect("empty clears");
    assert_eq!(standard_overlays().len(), 4);
}
