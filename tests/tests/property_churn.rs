//! Property-based integration tests: random operation sequences, applied to
//! a BATON overlay, never violate the structural invariants and never lose
//! data (except at explicitly failed nodes).

use baton_core::{validate, BatonConfig, BatonSystem, KeyRange, LoadBalanceConfig};
use proptest::prelude::*;

/// The operations the property tests draw from.
#[derive(Clone, Debug)]
enum Op {
    Join,
    Leave,
    Fail,
    Insert(u64),
    Delete(u64),
    SearchExact(u64),
    SearchRange(u64, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Join),
        2 => Just(Op::Leave),
        1 => Just(Op::Fail),
        4 => (1u64..1_000_000_000).prop_map(Op::Insert),
        2 => (1u64..1_000_000_000).prop_map(Op::Delete),
        2 => (1u64..1_000_000_000).prop_map(Op::SearchExact),
        1 => (1u64..999_000_000, 1u64..1_000_000).prop_map(|(low, width)| Op::SearchRange(low, low + width)),
    ]
}

fn apply(overlay: &mut BatonSystem, op: &Op, expected_items: &mut i64) {
    match op {
        Op::Join => {
            overlay.join_random().unwrap();
        }
        Op::Leave => {
            if overlay.node_count() > 2 {
                overlay.leave_random().unwrap();
            }
        }
        Op::Fail => {
            if overlay.node_count() > 2 {
                let victim = overlay.random_peer().unwrap();
                let report = overlay.fail(victim).unwrap();
                *expected_items -= report.lost_items as i64;
            }
        }
        Op::Insert(key) => {
            overlay.insert(*key, *key).unwrap();
            *expected_items += 1;
        }
        Op::Delete(key) => {
            let report = overlay.delete(*key).unwrap();
            if report.removed {
                *expected_items -= 1;
            }
        }
        Op::SearchExact(key) => {
            overlay.search_exact(*key).unwrap();
        }
        Op::SearchRange(low, high) => {
            overlay.search_range(KeyRange::new(*low, *high)).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_operation_sequences_preserve_every_invariant(
        seed in 0u64..1_000,
        initial in 4usize..24,
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let config = BatonConfig::default()
            .with_load_balance(LoadBalanceConfig::for_average_load(8));
        let mut overlay = BatonSystem::build(config, seed, initial).unwrap();
        let mut expected_items = 0i64;
        for op in &ops {
            apply(&mut overlay, op, &mut expected_items);
            validate(&overlay)
                .unwrap_or_else(|e| panic!("invariant violated after {op:?}: {e}"));
        }
        prop_assert_eq!(overlay.total_items() as i64, expected_items);
    }

    #[test]
    fn inserted_keys_are_always_findable(
        seed in 0u64..1_000,
        keys in proptest::collection::vec(1u64..1_000_000_000, 1..80),
    ) {
        let mut overlay = BatonSystem::build(BatonConfig::default(), seed, 16).unwrap();
        for (i, key) in keys.iter().enumerate() {
            overlay.insert(*key, i as u64).unwrap();
        }
        for (i, key) in keys.iter().enumerate() {
            let report = overlay.search_exact(*key).unwrap();
            prop_assert!(report.matches.contains(&(i as u64)), "lost key {}", key);
        }
        // Whole-domain range query returns everything.
        let all = overlay.search_range(KeyRange::paper_domain()).unwrap();
        prop_assert_eq!(all.matches.len(), keys.len());
    }
}
