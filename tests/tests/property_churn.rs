//! Property-style integration tests: random operation sequences, applied to
//! a BATON overlay, never violate the structural invariants and never lose
//! data (except at explicitly failed nodes).
//!
//! These were originally `proptest` properties; without registry access they
//! run as seeded deterministic loops over many random cases, which keeps the
//! same coverage shape while staying reproducible.

use baton_core::{validate, BatonConfig, BatonSystem, KeyRange, LoadBalanceConfig};
use baton_net::SimRng;

/// The operations the property tests draw from.
#[derive(Clone, Debug)]
enum Op {
    Join,
    Leave,
    Fail,
    Insert(u64),
    Delete(u64),
    SearchExact(u64),
    SearchRange(u64, u64),
}

fn random_op(rng: &mut SimRng) -> Op {
    // Weighted draw mirroring the original proptest strategy:
    // 2 join : 2 leave : 1 fail : 4 insert : 2 delete : 2 exact : 1 range.
    match rng.index(14) {
        0 | 1 => Op::Join,
        2 | 3 => Op::Leave,
        4 => Op::Fail,
        5..=8 => Op::Insert(rng.uniform_u64(1, 1_000_000_000)),
        9 | 10 => Op::Delete(rng.uniform_u64(1, 1_000_000_000)),
        11 | 12 => Op::SearchExact(rng.uniform_u64(1, 1_000_000_000)),
        _ => {
            let low = rng.uniform_u64(1, 999_000_000);
            let width = rng.uniform_u64(1, 1_000_000);
            Op::SearchRange(low, low + width)
        }
    }
}

fn apply(overlay: &mut BatonSystem, op: &Op, expected_items: &mut i64) {
    match op {
        Op::Join => {
            overlay.join_random().unwrap();
        }
        Op::Leave => {
            if overlay.node_count() > 2 {
                overlay.leave_random().unwrap();
            }
        }
        Op::Fail => {
            if overlay.node_count() > 2 {
                let victim = overlay.random_peer().unwrap();
                let report = overlay.fail(victim).unwrap();
                *expected_items -= report.lost_items as i64;
            }
        }
        Op::Insert(key) => {
            overlay.insert(*key, *key).unwrap();
            *expected_items += 1;
        }
        Op::Delete(key) => {
            let report = overlay.delete(*key).unwrap();
            if report.removed {
                *expected_items -= 1;
            }
        }
        Op::SearchExact(key) => {
            overlay.search_exact(*key).unwrap();
        }
        Op::SearchRange(low, high) => {
            overlay.search_range(KeyRange::new(*low, *high)).unwrap();
        }
    }
}

#[test]
fn random_operation_sequences_preserve_every_invariant() {
    let mut meta_rng = SimRng::seeded(0xBA70_2005);
    for case in 0..24 {
        let seed = meta_rng.uniform_u64(0, 1_000);
        let initial = 4 + meta_rng.index(20);
        let op_count = 1 + meta_rng.index(59);
        let ops: Vec<Op> = (0..op_count).map(|_| random_op(&mut meta_rng)).collect();

        let config =
            BatonConfig::default().with_load_balance(LoadBalanceConfig::for_average_load(8));
        let mut overlay = BatonSystem::build(config, seed, initial).unwrap();
        let mut expected_items = 0i64;
        for op in &ops {
            apply(&mut overlay, op, &mut expected_items);
            validate(&overlay)
                .unwrap_or_else(|e| panic!("case {case}: invariant violated after {op:?}: {e}"));
        }
        assert_eq!(
            overlay.total_items() as i64,
            expected_items,
            "case {case} lost or duplicated items"
        );
    }
}

#[test]
fn inserted_keys_are_always_findable() {
    let mut meta_rng = SimRng::seeded(0xF1AD);
    for case in 0..24 {
        let seed = meta_rng.uniform_u64(0, 1_000);
        let key_count = 1 + meta_rng.index(79);
        let keys: Vec<u64> = (0..key_count)
            .map(|_| meta_rng.uniform_u64(1, 1_000_000_000))
            .collect();

        let mut overlay = BatonSystem::build(BatonConfig::default(), seed, 16).unwrap();
        for (i, key) in keys.iter().enumerate() {
            overlay.insert(*key, i as u64).unwrap();
        }
        for (i, key) in keys.iter().enumerate() {
            let report = overlay.search_exact(*key).unwrap();
            assert!(
                report.matches.contains(&(i as u64)),
                "case {case}: lost key {key}"
            );
        }
        // Whole-domain range query returns everything.
        let all = overlay.search_range(KeyRange::paper_domain()).unwrap();
        assert_eq!(all.matches.len(), keys.len(), "case {case}");
    }
}
