//! Bulk-vs-join equivalence suite: for every overlay that registers a bulk
//! constructor, a bulk-built instance must be *behaviourally* equivalent to
//! a join-built one — same query answers, same delete semantics, same
//! structural invariants — even though the two are not byte-identical
//! (positions and ranges differ).  Extends the `range_oracle` pattern: the
//! same seeded key set is replayed into both instances and every result is
//! pinned against a brute-force sorted-vector oracle.
//!
//! Also covers the zero-message direct data load ([`load_direct`]) that
//! bulk-built scenario runs use: a directly-loaded overlay must answer
//! exactly like one loaded through routed inserts.

use baton_net::SimRng;
use baton_sim::{all_overlays, Profile};
use baton_workload::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};

/// Number of stored keys in `[low, high)` according to the sorted oracle.
fn oracle_count(oracle: &[u64], low: u64, high: u64) -> usize {
    oracle.partition_point(|k| *k < high) - oracle.partition_point(|k| *k < low)
}

/// Multiplicity of `key` according to the sorted oracle.
fn oracle_multiplicity(oracle: &[u64], key: u64) -> usize {
    oracle_count(oracle, key, key + 1)
}

/// A seeded key set with guaranteed duplicates.
fn seeded_keys() -> Vec<u64> {
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(0xB01D);
    let mut keys = generator.keys(&mut rng, 400);
    let repeats: Vec<u64> = keys.iter().copied().step_by(9).collect();
    keys.extend(repeats);
    keys
}

#[test]
fn bulk_built_overlays_answer_queries_like_join_built_ones() {
    let profile = Profile::smoke();
    let keys = seeded_keys();

    let mut checked = 0;
    for spec in all_overlays() {
        let mut joined = spec.build(&profile, 40, 77);
        // The registry's bulk constructor and the overlay's advertised
        // capability are the same fact stated twice; they must agree.
        assert_eq!(
            spec.supports_bulk(),
            joined.capabilities().bulk_build,
            "{}: registry and capability disagree on bulk construction",
            spec.series
        );
        if !spec.supports_bulk() {
            // No bulk path also means no direct data load.
            assert!(
                !joined.load_direct(&[(DOMAIN_LOW, 1)]),
                "{}: direct load without a bulk constructor",
                spec.series
            );
            continue;
        }
        checked += 1;
        let mut bulk = spec.build_bulk(&profile, 40, 77);
        assert_eq!(bulk.node_count(), joined.node_count(), "{}", spec.series);

        let mut oracle = Vec::new();
        for key in &keys {
            joined.insert(*key, *key).expect("join-built insert");
            bulk.insert(*key, *key).expect("bulk-built insert");
            let at = oracle.partition_point(|k| *k <= *key);
            oracle.insert(at, *key);
        }
        assert_eq!(joined.total_items(), oracle.len(), "{}", spec.series);
        assert_eq!(bulk.total_items(), oracle.len(), "{}", spec.series);

        // Exact matches report the key's multiplicity on both instances;
        // absent keys report zero on both.
        for key in keys.iter().step_by(7) {
            let expected = oracle_multiplicity(&oracle, *key);
            assert_eq!(
                joined.search_exact(*key).expect("exact").matches,
                expected,
                "{}: join-built exact {key}",
                spec.series
            );
            assert_eq!(
                bulk.search_exact(*key).expect("exact").matches,
                expected,
                "{}: bulk-built exact {key}",
                spec.series
            );
        }
        for probe in 0..20u64 {
            let key = DOMAIN_LOW + probe * 49_999_333 + 7;
            let expected = oracle_multiplicity(&oracle, key);
            assert_eq!(
                joined.search_exact(key).expect("exact").matches,
                expected,
                "{}: join-built probe {key}",
                spec.series
            );
            assert_eq!(
                bulk.search_exact(key).expect("exact").matches,
                expected,
                "{}: bulk-built probe {key}",
                spec.series
            );
        }

        // Range counts agree with the oracle on both instances (skipped for
        // overlays without range support — Chord hashes away key order).
        if joined.capabilities().range_queries {
            let mut query_rng = SimRng::seeded(0x5EED);
            for case in 0..40 {
                let (low, high) = match case {
                    0 => (DOMAIN_LOW, DOMAIN_HIGH),
                    _ => {
                        let low = query_rng.uniform_u64(DOMAIN_LOW, DOMAIN_HIGH);
                        let width = query_rng.uniform_u64(1, (DOMAIN_HIGH - DOMAIN_LOW) / 4);
                        (low, (low + width).min(DOMAIN_HIGH))
                    }
                };
                let expected = oracle_count(&oracle, low, high);
                assert_eq!(
                    joined.search_range(low, high).expect("range").matches,
                    expected,
                    "{}: join-built range [{low}, {high})",
                    spec.series
                );
                assert_eq!(
                    bulk.search_range(low, high).expect("range").matches,
                    expected,
                    "{}: bulk-built range [{low}, {high})",
                    spec.series
                );
            }
        }

        // Deletes remove exactly one occurrence on both instances, and the
        // totals stay in lockstep.
        for key in keys.iter().step_by(13) {
            assert_eq!(
                joined.delete(*key).expect("delete").matches,
                1,
                "{}: join-built delete {key}",
                spec.series
            );
            assert_eq!(
                bulk.delete(*key).expect("delete").matches,
                1,
                "{}: bulk-built delete {key}",
                spec.series
            );
            let at = oracle.partition_point(|k| *k < *key);
            oracle.remove(at);
        }
        assert_eq!(joined.total_items(), oracle.len(), "{}", spec.series);
        assert_eq!(bulk.total_items(), oracle.len(), "{}", spec.series);

        joined
            .validate()
            .expect("join-built overlay stays consistent");
        bulk.validate()
            .expect("bulk-built overlay stays consistent");
    }
    assert_eq!(checked, 2, "BATON and Chord register bulk constructors");
}

#[test]
fn direct_load_matches_routed_load_through_the_overlay_interface() {
    let profile = Profile::smoke();
    let data: Vec<(u64, u64)> = seeded_keys()
        .into_iter()
        .enumerate()
        .map(|(i, key)| (key, i as u64))
        .collect();

    let mut checked = 0;
    for spec in all_overlays() {
        if !spec.supports_bulk() {
            continue;
        }
        checked += 1;
        let mut direct = spec.build_bulk(&profile, 40, 77);
        let mut routed = spec.build_bulk(&profile, 40, 77);
        assert!(
            direct.load_direct(&data),
            "{}: bulk overlay refused a direct load",
            spec.series
        );
        assert_eq!(
            direct.stats().total_sent(),
            0,
            "{}: direct load charged messages",
            spec.series
        );
        for (key, value) in &data {
            routed.insert(*key, *value).expect("routed insert");
        }
        assert_eq!(
            direct.total_items(),
            routed.total_items(),
            "{}",
            spec.series
        );
        for (key, _) in data.iter().step_by(5) {
            assert_eq!(
                direct.search_exact(*key).expect("exact").matches,
                routed.search_exact(*key).expect("exact").matches,
                "{}: exact {key} diverged between direct and routed load",
                spec.series
            );
        }
        direct
            .validate()
            .expect("directly-loaded overlay stays consistent");
        routed
            .validate()
            .expect("routed-loaded overlay stays consistent");
    }
    assert_eq!(checked, 2, "BATON and Chord register bulk constructors");
}
