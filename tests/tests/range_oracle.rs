//! Cross-overlay query oracle: the same seeded key set is replayed into
//! every range-capable overlay (BATON, the multiway tree, the D3-Tree), and
//! each overlay's results are checked against a brute-force sorted-vector
//! oracle — exact counts, not shapes:
//!
//! * every seeded range query returns exactly the oracle's count;
//! * exact-match queries return the key's exact multiplicity (and zero for
//!   absent keys), which together with the range counts pins membership;
//! * deletes remove exactly one occurrence and the oracle tracks it.
//!
//! A second test exercises the D3-Tree's balance invariants (`validate()`
//! checks the weight counters, the partition and the deterministic
//! balancer's rest invariant) through heavy churn, including backbone
//! extensions and contractions.

use baton_d3tree::D3TreeSystem;
use baton_net::SimRng;
use baton_sim::{all_overlays, Profile};
use baton_workload::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};

/// Number of stored keys in `[low, high)` according to the sorted oracle.
fn oracle_count(oracle: &[u64], low: u64, high: u64) -> usize {
    oracle.partition_point(|k| *k < high) - oracle.partition_point(|k| *k < low)
}

/// Multiplicity of `key` according to the sorted oracle.
fn oracle_multiplicity(oracle: &[u64], key: u64) -> usize {
    oracle_count(oracle, key, key + 1)
}

#[test]
fn range_and_exact_results_match_a_sorted_vector_oracle() {
    let profile = Profile::smoke();
    // A seeded key set with guaranteed duplicates: uniform draws plus every
    // 7th key repeated.
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(0x0AC1E);
    let mut keys = generator.keys(&mut rng, 500);
    let repeats: Vec<u64> = keys.iter().copied().step_by(7).collect();
    keys.extend(repeats);

    let mut checked = 0;
    for spec in all_overlays() {
        let mut overlay = spec.build(&profile, 40, 77);
        if !overlay.capabilities().range_queries {
            continue;
        }
        checked += 1;
        let mut oracle = Vec::new();
        for key in &keys {
            overlay.insert(*key, *key).expect("insert");
            let at = oracle.partition_point(|k| *k <= *key);
            oracle.insert(at, *key);
        }
        assert_eq!(overlay.total_items(), oracle.len(), "{}", spec.series);

        // Seeded ranges of every width, including degenerate and
        // domain-spanning ones.
        let mut query_rng = SimRng::seeded(0x5EED);
        for case in 0..60 {
            let (low, high) = match case {
                0 => (DOMAIN_LOW, DOMAIN_HIGH),
                1 => (oracle[0], oracle[0] + 1),
                _ => {
                    let low = query_rng.uniform_u64(DOMAIN_LOW, DOMAIN_HIGH);
                    let width = query_rng.uniform_u64(1, (DOMAIN_HIGH - DOMAIN_LOW) / 4);
                    (low, (low + width).min(DOMAIN_HIGH))
                }
            };
            let cost = overlay.search_range(low, high).expect("range");
            assert_eq!(
                cost.matches,
                oracle_count(&oracle, low, high),
                "{}: range [{low}, {high}) diverged from the oracle",
                spec.series
            );
        }

        // Exact matches report the key's multiplicity; absent keys report
        // zero.
        for key in keys.iter().step_by(11) {
            let hit = overlay.search_exact(*key).expect("exact");
            assert_eq!(
                hit.matches,
                oracle_multiplicity(&oracle, *key),
                "{}: exact {key} diverged",
                spec.series
            );
        }
        for probe in 0..20u64 {
            let key = DOMAIN_LOW + probe * 49_999_333 + 7;
            let expected = oracle_multiplicity(&oracle, key);
            let hit = overlay.search_exact(key).expect("exact");
            assert_eq!(hit.matches, expected, "{}: probe {key}", spec.series);
        }

        // Deletes remove exactly one occurrence.
        for key in keys.iter().step_by(13) {
            let removed = overlay.delete(*key).expect("delete");
            assert_eq!(removed.matches, 1, "{}: delete {key}", spec.series);
            let at = oracle.partition_point(|k| *k < *key);
            oracle.remove(at);
        }
        let total = overlay
            .search_range(DOMAIN_LOW, DOMAIN_HIGH)
            .expect("sweep");
        assert_eq!(
            total.matches,
            oracle.len(),
            "{}: post-delete sweep",
            spec.series
        );
        overlay.validate().expect("overlay stays consistent");
    }
    assert_eq!(checked, 3, "BATON, the multiway tree and the D3-Tree");
}

#[test]
fn d3tree_balance_invariants_survive_growth_churn_and_shrink() {
    let mut system = D3TreeSystem::build(0xD37EE, 8).unwrap();
    let mut inserted = 0u64;

    // Growth phase: join-heavy churn with inserts — the backbone must
    // extend at least once and stay valid (weights, partition, rest
    // invariant of the deterministic balancer) after every event.
    let start_height = system.height();
    for round in 0..400 {
        if round % 5 == 4 && system.node_count() > 4 {
            system.leave_random().unwrap();
        } else {
            system.join_random().unwrap();
        }
        if round % 3 == 0 {
            system
                .insert(1 + (round as u64 * 7_919_993) % 999_999_998)
                .unwrap();
            inserted += 1;
        }
        system
            .validate()
            .unwrap_or_else(|e| panic!("growth round {round}: {e}"));
    }
    assert!(
        system.height() > start_height,
        "400 joins never extended the backbone"
    );
    assert_eq!(system.total_items() as u64, inserted);

    // Shrink phase: leave/fail-heavy churn — the backbone must contract
    // and bucket-local repair must keep every bucket populated.
    let peak_height = system.height();
    let mut lost = 0usize;
    while system.node_count() > 6 {
        if system.node_count().is_multiple_of(7) {
            lost += system.fail_random().unwrap().lost_items;
        } else {
            system.leave_random().unwrap();
        }
        system
            .validate()
            .unwrap_or_else(|e| panic!("shrink at n = {}: {e}", system.node_count()));
    }
    assert!(
        system.height() < peak_height,
        "shrinking to 6 peers never contracted the backbone"
    );
    assert_eq!(system.total_items() + lost, inserted as usize);
}
