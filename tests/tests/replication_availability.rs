//! Replication property suite: with k ≥ 2 replicas, killing any single
//! internal peer must cost *nothing observable* — every exact-match search
//! issued during the failover window answers with the multiplicity the
//! sorted-vector oracle predicts (zero unavailable reads), and once the
//! timed repair runs, the overlay holds exactly the oracle's key set (zero
//! lost keys).  Extends the oracle pattern of `bulk_equivalence.rs` from
//! query equivalence to fault transparency.
//!
//! Internal peers are the sharp case: leaves only lose their own range,
//! but an internal BATON node is also a routing waypoint, so its death
//! exercises both the replica read path (for its keys) and the DFS detour
//! path (for everyone else's).

use baton_core::{validate, BatonConfig, BatonSystem};
use baton_net::{PeerId, RepairPolicy, SimRng, SimTime};
use baton_workload::{KeyDistribution, KeyGenerator};

/// Multiplicity of `key` according to the sorted oracle.
fn oracle_multiplicity(oracle: &[u64], key: u64) -> usize {
    oracle.partition_point(|k| *k < key + 1) - oracle.partition_point(|k| *k < key)
}

/// The seeded key set of `bulk_equivalence.rs`: 400 uniform keys plus every
/// ninth one repeated, so duplicate multiplicities are exercised too.
fn seeded_keys() -> Vec<u64> {
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(0xB01D);
    let mut keys = generator.keys(&mut rng, 400);
    let repeats: Vec<u64> = keys.iter().copied().step_by(9).collect();
    keys.extend(repeats);
    keys
}

#[test]
fn killing_any_internal_peer_loses_no_reads_and_no_keys() {
    let keys = seeded_keys();
    for k in [2usize, 3] {
        let mut system = BatonSystem::build(BatonConfig::default(), 77, 40).expect("build");
        system
            .set_replication(k)
            .expect("k is within BATON's advertised range");

        let mut oracle: Vec<u64> = Vec::new();
        for key in &keys {
            system.insert(*key, *key).expect("insert");
            let at = oracle.partition_point(|c| *c <= *key);
            oracle.insert(at, *key);
        }
        assert_eq!(system.total_items(), oracle.len(), "k={k}");

        let policy = RepairPolicy {
            fast: SimTime::from_millis(500),
            slow: SimTime::from_secs(10),
        };
        let internal: Vec<PeerId> = system
            .peers()
            .to_vec()
            .into_iter()
            .filter(|p| {
                let node = system.node(*p).expect("member");
                node.left_child.is_some() || node.right_child.is_some()
            })
            .collect();
        assert!(
            internal.len() >= 10,
            "a 40-node tree has plenty of internal nodes"
        );

        for victim in internal {
            system
                .fail_deferred(victim, &policy)
                .unwrap_or_else(|e| panic!("k={k}: deferred failure of {victim}: {e}"));

            // The failover window: the victim is dead, its repair has not
            // run.  Every key — the victim's included — must answer from a
            // surviving issuer with the oracle's multiplicity.
            let issuer = system
                .peers()
                .iter()
                .copied()
                .find(|p| *p != victim)
                .expect("a 40-node overlay has survivors");
            for key in &keys {
                let report = system
                    .search_exact_from(issuer, *key)
                    .unwrap_or_else(|e| panic!("k={k}: search {key} with {victim} dead: {e}"));
                assert_eq!(
                    report.matches.len(),
                    oracle_multiplicity(&oracle, *key),
                    "k={k}: exact {key} wrong during failover of {victim}"
                );
            }

            // The timed repair mends the tree; nothing may have leaked.
            system
                .recover_failed(victim)
                .unwrap_or_else(|e| panic!("k={k}: repair of {victim}: {e}"));
            assert_eq!(
                system.total_items(),
                oracle.len(),
                "k={k}: keys lost across the failure/repair of {victim}"
            );
            validate(&system)
                .unwrap_or_else(|e| panic!("k={k}: invariants broken after {victim}: {e}"));
        }

        // After the full sweep the overlay still answers like the oracle.
        for key in keys.iter().step_by(7) {
            assert_eq!(
                system.search_exact(*key).expect("exact").matches.len(),
                oracle_multiplicity(&oracle, *key),
                "k={k}: post-sweep exact {key}"
            );
        }
    }
}
