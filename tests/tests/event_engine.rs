//! Property tests for the discrete-event simulation core (seeded
//! deterministic loops, matching the `property_churn` conventions):
//!
//! * the event queue is monotone in virtual time — deliveries never run
//!   backwards, whatever order messages were scheduled in;
//! * the constant-zero latency model reproduces the pre-refactor seed
//!   figures *exactly* (golden-fixture comparison — the regression check of
//!   the count-only substrate's subsumption);
//! * every emitted latency series satisfies p50 ≤ p95 ≤ p99.

use baton_net::{LatencyModel, NetMessage, SimNetwork, SimRng, SimTime};
use baton_sim::{figures, render_json, scenario, Profile};
use baton_workload::LatencySummary;

#[derive(Clone, Debug)]
struct Probe;

impl NetMessage for Probe {
    fn kind(&self) -> &'static str {
        "probe"
    }
}

/// Deliveries pop in nondecreasing virtual-time order, across many random
/// schedules: messages from independent operations (each departing its own
/// op's frontier) and chained hops (departing ever-later frontiers) are
/// pushed in arbitrary interleavings, then drained.
#[test]
fn event_queue_is_monotone_in_virtual_time() {
    for case in 0..50u64 {
        let mut rng = SimRng::seeded(0xE7E27 + case);
        let mut net: SimNetwork<Probe> = SimNetwork::with_latency(LatencyModel::log_normal(
            SimTime::from_millis(1 + case % 50),
            0.7,
            case,
        ));
        let peers: Vec<_> = (0..8).map(|_| net.add_peer()).collect();
        let ops: Vec<_> = (0..6)
            .map(|i| {
                // Stagger op arrivals so frontiers start at different times.
                net.advance_to(SimTime::from_micros(rng.uniform_u64(0, 10_000)));
                net.begin_op(&format!("op{i}"))
            })
            .collect();
        // Random mix of sends; chained ops reuse the same scope so their
        // messages depart later and later frontiers.
        for _ in 0..rng.uniform_u64(5, 60) {
            let op = ops[rng.index(ops.len())];
            let from = peers[rng.index(peers.len())];
            let to = peers[rng.index(peers.len())];
            net.send(op, from, to, Probe).unwrap();
            // Occasionally drain one event mid-stream, like the synchronous
            // protocols do.
            if rng.chance(0.5) {
                net.deliver_next();
            }
        }
        // Drain the remainder: the *queued* portion must be monotone.
        let mut last = net.next_delivery_at().unwrap_or(SimTime::ZERO);
        while let Some(result) = net.deliver_next() {
            let envelope = result.unwrap();
            assert!(
                envelope.deliver_at >= last,
                "case {case}: delivery at {} after {}",
                envelope.deliver_at,
                last
            );
            last = envelope.deliver_at;
        }
        assert!(net.now() >= last);
    }
}

/// With the default constant-zero latency model, all nine Figure-8 drivers
/// reproduce the exact message-count series captured from the substrate
/// before the event-engine refactor (`tests/fixtures/fig8_smoke_seed.json`,
/// generated with `reproduce --profile smoke --json` at the seed commit).
#[test]
fn zero_latency_model_reproduces_the_seed_figures_exactly() {
    let fixture = include_str!("../fixtures/fig8_smoke_seed.json");
    let results = figures::run_all(&Profile::smoke());
    let rendered = render_json(&results);
    assert_eq!(
        rendered.trim(),
        fixture.trim(),
        "figure output diverged from the pre-refactor seed fixture"
    );
}

/// Under the zero-latency model every operation completes with exactly zero
/// virtual latency — the count-only world is a special case of the event
/// engine, not an approximation.
#[test]
fn zero_latency_model_reports_zero_latencies() {
    let profile = Profile::smoke();
    for spec in baton_sim::standard_overlays() {
        let mut overlay = spec.build(&profile, 30, 11);
        overlay.search_exact(123_456_789).unwrap();
        overlay.join_random().unwrap();
        assert_eq!(overlay.now(), SimTime::ZERO, "{}", overlay.name());
        let latencies = overlay.op_latencies();
        assert!(!latencies.is_empty(), "{} recorded no ops", overlay.name());
        assert!(
            latencies.iter().all(|(_, l)| l.is_zero()),
            "{} leaked non-zero latency under the zero model",
            overlay.name()
        );
    }
}

/// Churn first, figures after: joins, graceful leaves and abrupt failures
/// punch holes into the dense peer-id space (dead slab slots that are never
/// reused), and the seeded measurements that follow must not notice.  The
/// message counts below were captured from the pre-slab (HashMap-backed)
/// substrate; the slab refactor must reproduce them bit-for-bit because
/// peer-id assignment and the sorted live-peer sampling order are unchanged.
#[test]
fn churned_overlay_reproduces_pinned_seeded_message_counts() {
    use baton_core::{BatonConfig, BatonSystem};

    let mut system = BatonSystem::build(BatonConfig::default(), 0xBA70, 60).expect("build");
    for _ in 0..12 {
        system.leave_random().expect("leave");
    }
    for _ in 0..8 {
        let victim = system.random_peer().expect("non-empty");
        system.fail(victim).expect("fail");
    }
    for _ in 0..20 {
        system.join_random().expect("join");
    }
    assert_eq!(system.node_count(), 60);
    baton_core::validate(&system).expect("post-churn invariants");

    let sent_before_queries = system.stats().total_sent();
    let mut search_messages = 0u64;
    for i in 0..100u64 {
        let key = 1 + (i * 9_999_991) % 999_999_998;
        search_messages += system.search_exact(key).expect("search").messages;
    }
    let mut range_messages = 0u64;
    for i in 0..20u64 {
        let low = 1 + (i * 49_999_999) % 900_000_000;
        range_messages += system
            .search_range(baton_core::KeyRange::new(low, low + 2_000_000))
            .expect("range")
            .messages;
    }
    let total_query_traffic = system.stats().total_sent() - sent_before_queries;
    assert_eq!(
        (search_messages, range_messages, total_query_traffic),
        (299, 67, 366),
        "seeded post-churn query traffic diverged from the pre-slab substrate"
    );
}

/// A long open-loop run retires finished operations into the per-class
/// streaming aggregates as it goes: when the run quiesces the live
/// per-operation window is empty — memory is bounded by the in-flight set,
/// not by the number of operations ever dispatched — while the begun-op
/// counter and the class aggregates keep the full history.
#[test]
fn open_loop_retires_finished_ops_into_bounded_aggregates() {
    use baton_core::{BatonConfig, BatonSystem};
    use baton_workload::{run_phased, FaultPlan, PhasedWorkload};

    let mut overlay = BatonSystem::build(BatonConfig::default(), 7, 40).expect("build");
    // Construction ran outside any runner, so its ops still sit in the live
    // window: this is the unbounded behaviour the runners retire away.
    let build_ops = overlay.stats().live_op_count();
    assert!(build_ops >= 39, "every join should still be live");

    let workload = PhasedWorkload::queries_only(SimTime::from_secs(120), 20.0);
    let mut rng = SimRng::seeded(0xFEED);
    let events = workload.schedule(&mut rng.derive(1));
    assert!(events.len() > 1500, "want a long run, got {}", events.len());
    let outcome = run_phased(
        &mut overlay,
        &events,
        &workload,
        &FaultPlan::none(),
        &mut rng,
        1,
    )
    .expect("run");
    assert_eq!(outcome.total_executed(), events.len() as u64);

    let stats = overlay.stats();
    assert_eq!(
        stats.live_op_count(),
        0,
        "the live op slab must drain once operations finish"
    );
    assert_eq!(stats.retired_op_count(), stats.op_count() as u64);
    let searches = stats.class_stats("search.exact").expect("searches ran");
    assert_eq!(searches.retired(), outcome.total_executed());
    assert!(searches.messages_histogram().mean() > 0.0);
    assert_eq!(stats.class_stats("join").expect("joins ran").retired(), 39);
}

/// p50 ≤ p95 ≤ p99 on every emitted latency series: the scenario report and
/// randomly generated sample sets.
#[test]
fn latency_percentiles_are_ordered_on_every_series() {
    // Random sample sets through the summary used by every report.
    for case in 0..100u64 {
        let mut rng = SimRng::seeded(0x9E4C + case);
        let samples: Vec<SimTime> = (0..rng.uniform_u64(1, 200))
            .map(|_| SimTime::from_micros(rng.uniform_u64(0, 10_000_000)))
            .collect();
        let summary = LatencySummary::from_samples(&samples).unwrap();
        assert!(
            summary.p50 <= summary.p95 && summary.p95 <= summary.p99 && summary.p99 <= summary.max,
            "case {case}: {summary:?}"
        );
        assert!(summary.mean <= summary.max && summary.count == samples.len());
    }
    // The actual emitted scenario series.
    let result = scenario::latency_under_churn(&Profile::smoke());
    assert!(!result.series.is_empty());
    for series in &result.series {
        for class in &series.classes {
            assert!(
                class.p50_ms <= class.p95_ms && class.p95_ms <= class.p99_ms,
                "{}::{}: p50 {} p95 {} p99 {}",
                series.overlay,
                class.class,
                class.p50_ms,
                class.p95_ms,
                class.p99_ms
            );
        }
    }
}

/// The histogram percentile accessors agree with a brute-force rank count
/// over random data.
#[test]
fn histogram_percentiles_match_brute_force() {
    for case in 0..50u64 {
        let mut rng = SimRng::seeded(0x415709 + case);
        let mut histogram = baton_net::Histogram::new();
        let mut values = Vec::new();
        for _ in 0..rng.uniform_u64(1, 300) {
            let v = rng.index(40);
            histogram.record(v);
            values.push(v);
        }
        values.sort_unstable();
        for (q, accessor) in [
            (0.50, histogram.p50()),
            (0.95, histogram.p95()),
            (0.99, histogram.p99()),
        ] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let expected = values[rank - 1];
            assert_eq!(
                accessor,
                Some(expected),
                "case {case}: q = {q}, values = {values:?}"
            );
        }
        let p50 = histogram.p50().unwrap();
        let p99 = histogram.p99().unwrap();
        assert!(p50 <= p99);
    }
    assert_eq!(baton_net::Histogram::new().p50(), None);
}
