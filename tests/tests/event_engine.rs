//! Property tests for the discrete-event simulation core (seeded
//! deterministic loops, matching the `property_churn` conventions):
//!
//! * the event queue is monotone in virtual time — deliveries never run
//!   backwards, whatever order messages were scheduled in;
//! * the constant-zero latency model reproduces the pre-refactor seed
//!   figures *exactly* (golden-fixture comparison — the regression check of
//!   the count-only substrate's subsumption);
//! * every emitted latency series satisfies p50 ≤ p95 ≤ p99.

use baton_net::{LatencyModel, NetMessage, SimNetwork, SimRng, SimTime};
use baton_sim::{figures, render_json, scenario, Profile};
use baton_workload::LatencySummary;

#[derive(Clone, Debug)]
struct Probe;

impl NetMessage for Probe {
    fn kind(&self) -> &'static str {
        "probe"
    }
}

/// Deliveries pop in nondecreasing virtual-time order, across many random
/// schedules: messages from independent operations (each departing its own
/// op's frontier) and chained hops (departing ever-later frontiers) are
/// pushed in arbitrary interleavings, then drained.
#[test]
fn event_queue_is_monotone_in_virtual_time() {
    for case in 0..50u64 {
        let mut rng = SimRng::seeded(0xE7E27 + case);
        let mut net: SimNetwork<Probe> = SimNetwork::with_latency(LatencyModel::log_normal(
            SimTime::from_millis(1 + case % 50),
            0.7,
            case,
        ));
        let peers: Vec<_> = (0..8).map(|_| net.add_peer()).collect();
        let ops: Vec<_> = (0..6)
            .map(|i| {
                // Stagger op arrivals so frontiers start at different times.
                net.advance_to(SimTime::from_micros(rng.uniform_u64(0, 10_000)));
                net.begin_op(&format!("op{i}"))
            })
            .collect();
        // Random mix of sends; chained ops reuse the same scope so their
        // messages depart later and later frontiers.
        for _ in 0..rng.uniform_u64(5, 60) {
            let op = ops[rng.index(ops.len())];
            let from = peers[rng.index(peers.len())];
            let to = peers[rng.index(peers.len())];
            net.send(op, from, to, Probe).unwrap();
            // Occasionally drain one event mid-stream, like the synchronous
            // protocols do.
            if rng.chance(0.5) {
                net.deliver_next();
            }
        }
        // Drain the remainder: the *queued* portion must be monotone.
        let mut last = net.next_delivery_at().unwrap_or(SimTime::ZERO);
        while let Some(result) = net.deliver_next() {
            let envelope = result.unwrap();
            assert!(
                envelope.deliver_at >= last,
                "case {case}: delivery at {} after {}",
                envelope.deliver_at,
                last
            );
            last = envelope.deliver_at;
        }
        assert!(net.now() >= last);
    }
}

/// With the default constant-zero latency model, all nine Figure-8 drivers
/// reproduce the exact message-count series captured from the substrate
/// before the event-engine refactor (`tests/fixtures/fig8_smoke_seed.json`,
/// generated with `reproduce --profile smoke --json` at the seed commit).
#[test]
fn zero_latency_model_reproduces_the_seed_figures_exactly() {
    let fixture = include_str!("../fixtures/fig8_smoke_seed.json");
    let results = figures::run_all(&Profile::smoke());
    let rendered = render_json(&results);
    assert_eq!(
        rendered.trim(),
        fixture.trim(),
        "figure output diverged from the pre-refactor seed fixture"
    );
}

/// Under the zero-latency model every operation completes with exactly zero
/// virtual latency — the count-only world is a special case of the event
/// engine, not an approximation.
#[test]
fn zero_latency_model_reports_zero_latencies() {
    let profile = Profile::smoke();
    for spec in baton_sim::standard_overlays() {
        let mut overlay = spec.build(&profile, 30, 11);
        overlay.search_exact(123_456_789).unwrap();
        overlay.join_random().unwrap();
        assert_eq!(overlay.now(), SimTime::ZERO, "{}", overlay.name());
        let latencies = overlay.op_latencies();
        assert!(!latencies.is_empty(), "{} recorded no ops", overlay.name());
        assert!(
            latencies.iter().all(|(_, l)| l.is_zero()),
            "{} leaked non-zero latency under the zero model",
            overlay.name()
        );
    }
}

/// p50 ≤ p95 ≤ p99 on every emitted latency series: the scenario report and
/// randomly generated sample sets.
#[test]
fn latency_percentiles_are_ordered_on_every_series() {
    // Random sample sets through the summary used by every report.
    for case in 0..100u64 {
        let mut rng = SimRng::seeded(0x9E4C + case);
        let samples: Vec<SimTime> = (0..rng.uniform_u64(1, 200))
            .map(|_| SimTime::from_micros(rng.uniform_u64(0, 10_000_000)))
            .collect();
        let summary = LatencySummary::from_samples(&samples).unwrap();
        assert!(
            summary.p50 <= summary.p95 && summary.p95 <= summary.p99 && summary.p99 <= summary.max,
            "case {case}: {summary:?}"
        );
        assert!(summary.mean <= summary.max && summary.count == samples.len());
    }
    // The actual emitted scenario series.
    let result = scenario::latency_under_churn(&Profile::smoke());
    assert!(!result.series.is_empty());
    for series in &result.series {
        for class in &series.classes {
            assert!(
                class.p50_ms <= class.p95_ms && class.p95_ms <= class.p99_ms,
                "{}::{}: p50 {} p95 {} p99 {}",
                series.overlay,
                class.class,
                class.p50_ms,
                class.p95_ms,
                class.p99_ms
            );
        }
    }
}

/// The histogram percentile accessors agree with a brute-force rank count
/// over random data.
#[test]
fn histogram_percentiles_match_brute_force() {
    for case in 0..50u64 {
        let mut rng = SimRng::seeded(0x415709 + case);
        let mut histogram = baton_net::Histogram::new();
        let mut values = Vec::new();
        for _ in 0..rng.uniform_u64(1, 300) {
            let v = rng.index(40);
            histogram.record(v);
            values.push(v);
        }
        values.sort_unstable();
        for (q, accessor) in [
            (0.50, histogram.p50()),
            (0.95, histogram.p95()),
            (0.99, histogram.p99()),
        ] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let expected = values[rank - 1];
            assert_eq!(
                accessor,
                Some(expected),
                "case {case}: q = {q}, values = {values:?}"
            );
        }
        let p50 = histogram.p50().unwrap();
        let p99 = histogram.p99().unwrap();
        assert!(p50 <= p99);
    }
    assert_eq!(baton_net::Histogram::new().p50(), None);
}
