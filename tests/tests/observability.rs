//! Observability integration tests: the route recorder's spans must agree
//! with the [`baton_net::MessageStats`] accounting (trace ↔ stats oracle),
//! the recorder's ring buffer must bound memory under long runs, and the
//! per-class detour split (`messages == primary + detour`) must hold with
//! and without failures.

use baton_core::{BatonConfig, BatonSystem};
use baton_net::{LatencyModel, Overlay, SimRng, SimTime, TraceConfig};
use baton_sim::{scenario, standard_overlays, Profile};
use baton_workload::{runner, QueryWorkload};

/// The operation-class label each overlay's exact-match search retires
/// under (the label its `begin_op` call uses).
fn search_class(series: &str) -> &'static str {
    match series {
        "BATON" => "search.exact",
        "Chord" => "chord.search",
        "Multiway tree" => "mtree.search",
        "D3-Tree" => "d3.search",
        other => panic!("unknown overlay series {other}"),
    }
}

/// Total retired messages across every class aggregate.
fn retired_messages(overlay: &dyn Overlay) -> u64 {
    overlay.stats().classes().map(|c| c.messages_sum()).sum()
}

/// Trace ↔ stats oracle: with sampling 1 and ample capacity, the recorder
/// captures one span per exact-match query on every overlay, the spans'
/// hop counts reconstruct exactly the message totals `MessageStats`
/// retires, and every span's timestamps are frontier-ordered under a
/// non-zero latency model.
#[test]
fn trace_spans_reconcile_with_message_stats_on_every_overlay() {
    let profile = Profile::smoke();
    let data: Vec<(u64, u64)> = (0..200u64).map(|i| (1 + i * 4_999_999, i)).collect();
    for spec in standard_overlays() {
        let mut overlay = spec.build(&profile, 60, 99);
        runner::bulk_load(&mut *overlay, &data).expect("load");
        overlay.set_latency_model(LatencyModel::uniform(
            SimTime::from_millis(2),
            SimTime::from_millis(9),
            5,
        ));
        overlay.stats_mut().retire_finished();
        let before = retired_messages(&*overlay);

        let workload = QueryWorkload::paper().scaled(0.05);
        let exact = workload.exact(&mut SimRng::seeded(4242));
        overlay.set_trace(TraceConfig::new(exact.len().max(1)));
        let outcome = runner::run_queries(&mut *overlay, &exact).expect("queries");
        overlay.stats_mut().retire_finished();
        let buffer = overlay.take_trace().expect("trace was installed");
        let after = retired_messages(&*overlay);

        // One span per executed query, none lost to sampling or eviction.
        assert_eq!(
            buffer.len() as u64,
            outcome.exact_executed,
            "{}: span count != executed queries",
            spec.series
        );
        assert_eq!(buffer.sampled(), buffer.ops_seen(), "{}", spec.series);
        assert_eq!(buffer.evicted(), 0, "{}", spec.series);

        // The spans reconstruct exactly the message count the stats
        // retired over the same window.
        let traced: u64 = buffer.spans().map(|s| s.message_count()).sum();
        assert_eq!(
            traced,
            after - before,
            "{}: traced hops != retired messages",
            spec.series
        );

        let class = search_class(spec.series);
        for span in buffer.spans() {
            assert_eq!(span.class, class, "{}: unexpected span class", spec.series);
            let finished = span
                .finished_at
                .unwrap_or_else(|| panic!("{}: span left open", spec.series));
            assert!(finished >= span.started_at, "{}", spec.series);
            // Frontier order: send times never regress within an op, and
            // a hop arrives no earlier than it was sent.
            let mut frontier = span.started_at;
            for hop in &span.hops {
                assert!(
                    hop.sent_at >= frontier,
                    "{}: frontier regressed in op {}",
                    spec.series,
                    span.op
                );
                assert!(hop.arrive_at >= hop.sent_at, "{}", spec.series);
                frontier = hop.sent_at;
            }
        }
    }
}

/// The recorder's ring buffer bounds memory under a long open-loop run:
/// the scenario engine drives far more operations than the configured
/// capacity, yet the buffer never holds more than `capacity` spans and
/// counts the overflow as evictions.
#[test]
fn ring_buffer_eviction_bounds_memory_under_an_open_loop_run() {
    let capacity = 8;
    let (_, traces) = scenario::run_scenario_traced(
        "latency_under_churn",
        &Profile::smoke(),
        TraceConfig::new(capacity),
    )
    .expect("registered scenario");
    assert!(!traces.is_empty());
    for (overlay, buffer) in &traces {
        assert!(
            buffer.len() <= capacity,
            "{overlay}: {} spans exceed capacity {capacity}",
            buffer.len()
        );
        assert!(
            buffer.evicted() > 0,
            "{overlay}: run too short to overflow the buffer"
        );
        // Every sampled operation is accounted for: retained or evicted.
        assert_eq!(
            buffer.len() as u64 + buffer.evicted(),
            buffer.sampled(),
            "{overlay}: spans leaked"
        );
    }
}

/// Sampling keeps observation cost proportional: a 1-in-3 modulus records
/// about a third of the operations, deterministically.
#[test]
fn sampling_modulus_thins_the_recorded_spans() {
    let (_, traces) = scenario::run_scenario_traced(
        "latency_under_churn",
        &Profile::smoke(),
        TraceConfig::default().with_sample(3),
    )
    .expect("registered scenario");
    for (overlay, buffer) in &traces {
        assert!(buffer.ops_seen() > 0, "{overlay}: no ops observed");
        assert!(
            buffer.sampled() < buffer.ops_seen(),
            "{overlay}: sampling recorded everything"
        );
        assert!(
            buffer.sampled() <= buffer.ops_seen() / 3 + 1,
            "{overlay}: sampled {} of {} ops at modulus 3",
            buffer.sampled(),
            buffer.ops_seen()
        );
    }
}

/// Regression test for the per-class detour split: `messages_sum ==
/// primary_hops + detour_hops` always holds, a healthy run charges zero
/// detour hops, and with an unrepaired failure the recovery hops land in
/// `detour_hops` — in exact agreement with the route recorder's per-span
/// charge.
#[test]
fn detour_accounting_splits_primary_and_recovery_hops() {
    let mut overlay = BatonSystem::build(BatonConfig::default(), 11, 150).expect("build");
    let keys: Vec<u64> = (0..100u64).map(|i| 1 + i * 9_999_991).collect();
    for (i, key) in keys.iter().enumerate() {
        overlay.insert(*key, i as u64).unwrap();
    }

    // Healthy run: every hop is first-try routing.
    for key in &keys {
        overlay.search_exact(*key).unwrap();
    }
    overlay.stats_mut().retire_finished();
    let healthy = overlay
        .stats()
        .class_stats("search.exact")
        .expect("searches retired")
        .clone();
    assert_eq!(
        healthy.messages_sum(),
        healthy.primary_hops() + healthy.detour_hops()
    );
    assert_eq!(
        healthy.detour_hops(),
        0,
        "a healthy run must charge no detour hops"
    );

    // Fail one internal node silently: live-owned keys stay reachable
    // (paper §III-D) but some routes must bounce off the hole and detour.
    let mut peers = overlay.peers().to_vec();
    peers.sort_unstable();
    let victim = peers
        .iter()
        .copied()
        .find(|p| {
            let node = overlay.node(*p).unwrap();
            !node.is_leaf() && !node.is_root()
        })
        .expect("internal node exists");
    let victim_range = overlay.node(victim).unwrap().range;
    overlay.fail_silently(victim).unwrap();
    let issuer = peers.iter().copied().find(|p| *p != victim).unwrap();

    Overlay::set_trace(&mut overlay, TraceConfig::new(keys.len()));
    for key in &keys {
        if victim_range.contains(*key) {
            continue; // owned by the dead node: legitimately unreachable
        }
        overlay.search_exact_from(issuer, *key).unwrap();
    }
    overlay.stats_mut().retire_finished();
    let buffer = Overlay::take_trace(&mut overlay).expect("trace was installed");
    let degraded = overlay
        .stats()
        .class_stats("search.exact")
        .expect("searches retired");

    let detour_delta = degraded.detour_hops() - healthy.detour_hops();
    assert_eq!(
        degraded.messages_sum(),
        degraded.primary_hops() + degraded.detour_hops()
    );
    assert!(
        detour_delta > 0,
        "routing around a dead internal node must charge detour hops"
    );
    // The trace charges the same hops to the detour as the stats do: the
    // bounce that opens the detour plus everything sent after it.
    let traced_detour: u64 = buffer.spans().map(|s| s.detour_count()).sum();
    assert_eq!(
        traced_detour, detour_delta,
        "span detour charge disagrees with ClassStats::detour_hops"
    );
}
