//! Snapshot-vs-routed oracle: every answer the lock-free serve path gives
//! must agree with the routed event engine it snapshots.
//!
//! * For every overlay that exports a [`RoutingSnapshot`], seeded exact
//!   queries (hits, duplicates and guaranteed misses) and — where ranges
//!   are supported — seeded range queries (degenerate, domain-spanning and
//!   random spans) return the same match counts through
//!   `RoutingSnapshot::{exact,range}` as through
//!   `Overlay::{search_exact,search_range}`.
//! * Under churn with a mid-stream [`SnapshotCell`] swap, a reader that has
//!   not refreshed keeps answering from its own consistent version — every
//!   stale answer equals the pre-churn routed answer, never a mix — while a
//!   refreshed reader agrees with the post-churn overlay.

use std::sync::Arc;

use baton_net::serve::ServeCounters;
use baton_net::{SimRng, SnapshotCell, SnapshotReader};
use baton_sim::{all_overlays, Profile};
use baton_workload::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};

/// Exact-match count through the snapshot path.
fn snapshot_exact(snapshot: &baton_net::RoutingSnapshot, key: u64, hint: u64) -> u64 {
    let mut counters = ServeCounters::default();
    snapshot.exact(key, hint, &mut counters).matches
}

/// Range count through the snapshot path.
fn snapshot_range(snapshot: &baton_net::RoutingSnapshot, low: u64, high: u64, hint: u64) -> u64 {
    let mut counters = ServeCounters::default();
    snapshot.range(low, high, hint, &mut counters).matches
}

#[test]
fn snapshot_answers_agree_with_the_routed_engine_on_every_overlay() {
    let profile = Profile::smoke();
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(0x5E4E_0AC1);
    let mut keys = generator.keys(&mut rng, 400);
    // Guaranteed duplicates so multiplicity (not just membership) is pinned.
    let repeats: Vec<u64> = keys.iter().copied().step_by(9).collect();
    keys.extend(repeats);

    let mut snapshotting = 0;
    let mut ranged = 0;
    for spec in all_overlays() {
        let mut overlay = spec.build(&profile, 40, 2005);
        for key in &keys {
            overlay.insert(*key, *key).expect("insert");
        }
        let Some(snapshot) = overlay.routing_snapshot() else {
            assert!(
                !spec.serve.snapshot,
                "{}: serve matrix promises a snapshot but none was exported",
                spec.series
            );
            continue;
        };
        assert!(
            spec.serve.snapshot,
            "{}: matrix says no snapshot",
            spec.series
        );
        snapshotting += 1;

        // Exact: loaded keys (multiplicity included) and never-inserted
        // probes, each from a seeded start hint.
        let mut hint_rng = SimRng::seeded(0x417);
        for key in keys.iter().step_by(7) {
            let routed = overlay.search_exact(*key).expect("routed exact").matches;
            let served = snapshot_exact(&snapshot, *key, hint_rng.uniform_u64(0, u64::MAX));
            assert_eq!(
                served, routed as u64,
                "{}: exact {key} served {served}, routed {routed}",
                spec.series
            );
        }
        for probe in 0..25u64 {
            let key = DOMAIN_LOW + probe * 39_999_331 + 3;
            let routed = overlay.search_exact(key).expect("routed exact").matches;
            let served = snapshot_exact(&snapshot, key, hint_rng.uniform_u64(0, u64::MAX));
            assert_eq!(served, routed as u64, "{}: probe {key}", spec.series);
        }

        assert_eq!(
            snapshot.range_supported(),
            spec.serve.range,
            "{}: serve matrix range flag diverges from the snapshot",
            spec.series
        );
        if !snapshot.range_supported() {
            // A ring snapshot must reject ranges, not misanswer them.
            let mut counters = ServeCounters::default();
            let answer = snapshot.range(DOMAIN_LOW, DOMAIN_HIGH, 0, &mut counters);
            assert_eq!(answer.matches, 0, "{}: rejected range matched", spec.series);
            assert_eq!(counters.rejected, 1, "{}: range not rejected", spec.series);
            continue;
        }
        ranged += 1;

        // Ranges: degenerate, domain-spanning, and seeded random spans.
        let mut query_rng = SimRng::seeded(0x5EED_2005);
        for case in 0..50 {
            let (low, high) = match case {
                0 => (DOMAIN_LOW, DOMAIN_HIGH),
                1 => (keys[0], keys[0] + 1),
                2 => (DOMAIN_HIGH - 1, DOMAIN_HIGH),
                3 => (DOMAIN_LOW, DOMAIN_LOW + 1),
                _ => {
                    let low = query_rng.uniform_u64(DOMAIN_LOW, DOMAIN_HIGH);
                    let width = query_rng.uniform_u64(1, (DOMAIN_HIGH - DOMAIN_LOW) / 4);
                    (low, (low + width).min(DOMAIN_HIGH))
                }
            };
            let routed = overlay
                .search_range(low, high)
                .expect("routed range")
                .matches;
            let served = snapshot_range(&snapshot, low, high, query_rng.uniform_u64(0, u64::MAX));
            assert_eq!(
                served, routed as u64,
                "{}: range [{low}, {high}) served {served}, routed {routed}",
                spec.series
            );
        }
    }
    assert_eq!(snapshotting, 4, "all four overlays export snapshots");
    assert_eq!(ranged, 3, "BATON, the multiway tree and the D3-Tree");
}

#[test]
fn stale_reader_answers_from_its_own_version_across_a_mid_stream_swap() {
    let profile = Profile::smoke();
    let spec = all_overlays()
        .into_iter()
        .find(|spec| spec.series == "BATON")
        .expect("BATON registered");
    let mut overlay = spec.build(&profile, 30, 7);
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(0xC0FFEE);
    let keys = generator.keys(&mut rng, 300);
    for key in &keys {
        overlay.insert(*key, *key).expect("insert");
    }

    // Version 1 published; both readers observe it.
    let cell = Arc::new(SnapshotCell::new(
        overlay.routing_snapshot().expect("snapshot"),
    ));
    let v1 = cell.version();
    let mut stale = SnapshotReader::new(Arc::clone(&cell));
    let mut fresh = SnapshotReader::new(Arc::clone(&cell));
    stale.refresh();
    fresh.refresh();

    // The pre-churn routed truth for a probe set mixing hits and misses.
    let probes: Vec<u64> = keys
        .iter()
        .copied()
        .step_by(5)
        .chain((0..20u64).map(|i| DOMAIN_LOW + i * 47_777_123 + 11))
        .collect();
    let before: Vec<usize> = probes
        .iter()
        .map(|key| overlay.search_exact(*key).expect("routed").matches)
        .collect();

    // Mid-stream structural churn: joins plus fresh inserts, then a swap.
    for round in 0..10 {
        overlay.join_random().expect("join");
        overlay
            .insert(DOMAIN_LOW + 1 + round * 31_337_111, 0)
            .expect("insert");
    }
    let v2 = cell.publish(overlay.routing_snapshot().expect("snapshot"));
    assert!(v2 > v1, "publish must advance the version");

    // The stale reader never refreshed: every answer comes from version 1
    // — byte-for-byte the pre-churn routed answers, with no post-churn
    // keys or peers leaking in.
    assert_eq!(stale.snapshot().version(), v1);
    let mut hint_rng = SimRng::seeded(0x717);
    for (key, expected) in probes.iter().zip(&before) {
        let served = snapshot_exact(stale.snapshot(), *key, hint_rng.uniform_u64(0, u64::MAX));
        assert_eq!(
            served, *expected as u64,
            "stale reader mixed versions on key {key}"
        );
    }
    let new_key = DOMAIN_LOW + 1;
    assert_eq!(
        snapshot_exact(stale.snapshot(), new_key, 0),
        0,
        "stale snapshot saw a post-swap insert"
    );

    // One refresh later the same reader agrees with the live overlay.
    fresh.refresh();
    assert_eq!(fresh.snapshot().version(), v2);
    for key in probes.iter().chain(std::iter::once(&new_key)) {
        let routed = overlay.search_exact(*key).expect("routed").matches;
        let served = snapshot_exact(fresh.snapshot(), *key, hint_rng.uniform_u64(0, u64::MAX));
        assert_eq!(served, routed as u64, "fresh reader diverged on key {key}");
    }
}
