//! Smoke tests for the experiment harness: every figure driver runs at the
//! smoke profile, produces non-empty series, and renders to tables / CSV /
//! JSON.

use baton_sim::{figures, render_json, render_report, Profile};

#[test]
fn every_figure_runs_and_renders() {
    let profile = Profile::smoke();
    let results = figures::run_all(&profile);
    assert_eq!(results.len(), figures::all_figure_ids().len());
    for result in &results {
        assert!(
            !result.points.is_empty(),
            "figure {} produced no points",
            result.id
        );
        let table = result.to_table();
        assert!(table.contains(&format!("Figure {}", result.id)));
        let csv = result.to_csv();
        assert!(
            csv.lines().count() >= 2,
            "figure {} CSV too short",
            result.id
        );
    }
    let report = render_report(&results);
    for id in figures::all_figure_ids() {
        assert!(
            report.contains(&format!("Figure {id}")),
            "missing figure {id}"
        );
    }
    let json = render_json(&results);
    assert!(json.contains("\"8a\"") && json.contains("\"8i\""));
}

#[test]
fn figure_ids_resolve_case_insensitively() {
    let profile = Profile::smoke();
    let lower = figures::run_figure("8d", &profile).unwrap();
    let upper = figures::run_figure("8D", &profile).unwrap();
    assert_eq!(lower.id, upper.id);
    assert!(figures::run_figure("nonsense", &profile).is_none());
}

#[test]
fn comparison_series_are_present_where_the_paper_plots_them() {
    let profile = Profile::smoke();
    let (fig_a, fig_b) = figures::fig8ab::run(&profile);
    for fig in [&fig_a, &fig_b] {
        let names = fig.series_names();
        assert!(names.iter().any(|n| n.contains("BATON")));
        assert!(names.iter().any(|n| n.contains("Chord")));
        assert!(names.iter().any(|n| n.contains("Multiway")));
    }
    let fig_e = figures::fig8e::run(&profile);
    let names = fig_e.series_names();
    assert!(names.iter().any(|n| n.contains("BATON")));
    assert!(
        !names.iter().any(|n| n == "Chord"),
        "Chord cannot appear in the range-query figure"
    );
}
