//! Cross-overlay smoke tests: all nine figure drivers run at
//! `Profile::smoke()` through the generic `Overlay`-based driver, and every
//! series they produce is non-empty and finite for BATON, Chord and the
//! multiway tree (where the paper plots them).

use std::collections::HashSet;

use baton_net::OverlayError;
use baton_sim::figures::{SERIES_BATON, SERIES_CHORD, SERIES_D3TREE, SERIES_MTREE};
use baton_sim::{figures, standard_overlays, Profile};
use baton_workload::{runner, ChurnWorkload, Query, QueryWorkload};

#[test]
fn all_nine_figures_produce_finite_series_through_the_generic_driver() {
    let profile = Profile::smoke();
    let results = figures::run_all(&profile);
    assert_eq!(results.len(), figures::all_figure_ids().len());

    // Which figures each comparison series appears in: the paper's
    // placement for its three systems, and every comparison figure for the
    // post-paper D3-Tree baseline (it is fully capable).
    let baton_figures: HashSet<&str> = ["8a", "8b", "8c", "8d", "8e", "8i"].into();
    let chord_figures: HashSet<&str> = ["8a", "8b", "8c", "8d"].into();
    let mtree_figures: HashSet<&str> = ["8a", "8b", "8c", "8d", "8e"].into();
    let d3tree_figures: HashSet<&str> = ["8a", "8b", "8c", "8d", "8e"].into();

    for result in &results {
        let id = result.id.as_str();
        assert!(!result.points.is_empty(), "figure {id} produced no points");
        for point in &result.points {
            assert!(point.x.is_finite(), "figure {id}: non-finite x");
            for (series, value) in &point.values {
                assert!(
                    value.is_finite(),
                    "figure {id}, series '{series}': non-finite value {value}"
                );
            }
        }
        let names = result.series_names();
        for (series, expected_in) in [
            (SERIES_BATON, &baton_figures),
            (SERIES_CHORD, &chord_figures),
            (SERIES_MTREE, &mtree_figures),
            (SERIES_D3TREE, &d3tree_figures),
        ] {
            if expected_in.contains(id) {
                assert!(
                    names.iter().any(|n| n == series),
                    "figure {id} is missing the '{series}' series (has {names:?})"
                );
                // Every point of an expected series carries a finite value.
                for point in &result.points {
                    let value = point.values.get(series).copied().unwrap_or_else(|| {
                        panic!("figure {id}, x = {}: no '{series}' value", point.x)
                    });
                    assert!(value.is_finite() && value >= 0.0);
                }
            }
        }
        // Chord never sneaks into the range-query figure.
        if id == "8e" {
            assert!(!names.iter().any(|n| n == SERIES_CHORD));
        }
    }
}

#[test]
fn one_workload_drives_every_overlay_through_the_runners() {
    let profile = Profile::smoke();
    let mut rng = baton_net::SimRng::seeded(777);
    let churn = ChurnWorkload::balanced(40).events(&mut rng);
    let workload = QueryWorkload::paper().scaled(0.02);
    let mut queries: Vec<Query> = workload.exact(&mut rng);
    queries.extend(workload.ranges(&mut rng));
    let data: Vec<(u64, u64)> = (0..200u64).map(|i| (1 + i * 4_999_999, i)).collect();

    for spec in standard_overlays() {
        let mut overlay = spec.build(&profile, 30, 99);
        let load = runner::bulk_load(&mut *overlay, &data).expect("load");
        assert_eq!(load.inserted, data.len() as u64);
        assert!(load.messages > 0, "{}: loads cost messages", spec.series);

        let churn_outcome = runner::run_churn(&mut *overlay, &churn, 4).expect("churn");
        assert!(churn_outcome.executed() > 0);
        assert!(churn_outcome.mean_messages().is_finite());

        let query_outcome = runner::run_queries(&mut *overlay, &queries).expect("queries");
        assert_eq!(query_outcome.exact_executed, workload.exact_queries as u64);
        let range_capable = overlay.capabilities().range_queries;
        if range_capable {
            assert_eq!(query_outcome.range_executed, workload.range_queries as u64);
            assert_eq!(query_outcome.unsupported, 0);
        } else {
            assert_eq!(query_outcome.range_executed, 0);
            assert_eq!(query_outcome.unsupported, workload.range_queries as u64);
        }

        overlay
            .validate()
            .unwrap_or_else(|e| panic!("{} inconsistent after the workload: {e}", spec.series));
    }
}

#[test]
fn capability_gates_match_the_systems() {
    let profile = Profile::smoke();
    let mut by_name: Vec<(String, bool, bool, bool)> = standard_overlays()
        .iter()
        .map(|spec| {
            let overlay = spec.build(&profile, 8, 1);
            let caps = overlay.capabilities();
            (
                overlay.name().to_owned(),
                caps.range_queries,
                caps.load_balancing,
                caps.failures,
            )
        })
        .collect();
    by_name.sort();
    assert_eq!(
        by_name,
        vec![
            ("BATON".to_owned(), true, true, true),
            ("Chord".to_owned(), false, false, false),
            ("D3-Tree".to_owned(), true, true, true),
            ("Multiway tree".to_owned(), true, false, false),
        ]
    );
}

#[test]
fn unsupported_operations_are_errors_not_panics() {
    let profile = Profile::smoke();
    for spec in standard_overlays() {
        let mut overlay = spec.build(&profile, 10, 5);
        if !overlay.capabilities().range_queries {
            assert!(matches!(
                overlay.search_range(1, 100),
                Err(OverlayError::Unsupported(_))
            ));
        }
        if !overlay.capabilities().failures {
            assert!(matches!(
                overlay.fail_random(),
                Err(OverlayError::Unsupported(_))
            ));
        }
    }
}
