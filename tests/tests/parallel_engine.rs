//! Shard determinism: the scenario engine must produce byte-identical
//! output regardless of how many worker threads the (overlay × repetition)
//! units fan across.
//!
//! The engine's contract is that thread count only changes *when* a unit
//! runs, never *what* it computes: every unit derives its seeds from its
//! own indices, and aggregation walks the outcomes in canonical unit order.
//! These tests pin that contract for every registered scenario.
//!
//! The thread budget (`baton_net::set_threads`) is process-global, so the
//! comparison runs live in one test — splitting them into separate `#[test]`
//! functions would race within the test binary.

use baton_net::set_threads;
use baton_sim::{render_scenarios_json, scenario, Profile};

#[test]
fn every_scenario_is_byte_identical_across_thread_counts() {
    let profile = Profile::smoke();
    for spec in scenario::all_scenarios() {
        set_threads(1);
        let single = scenario::run_scenario(spec.id, &profile).expect("registered");
        set_threads(4);
        let parallel = scenario::run_scenario(spec.id, &profile).expect("registered");
        set_threads(1);
        assert_eq!(
            render_scenarios_json(&[single]),
            render_scenarios_json(&[parallel]),
            "scenario {} diverged between 1 and 4 worker threads",
            spec.id
        );
    }
}

#[test]
fn thread_budget_exceeding_unit_count_is_harmless() {
    // More workers than (overlay × repetition) units: the engine must not
    // deadlock, panic, or change results when most workers have no work.
    let profile = Profile::smoke();
    set_threads(1);
    let single = scenario::run_scenario("flash_crowd", &profile).expect("registered");
    set_threads(64);
    let oversubscribed = scenario::run_scenario("flash_crowd", &profile).expect("registered");
    set_threads(1);
    assert_eq!(
        render_scenarios_json(&[single]),
        render_scenarios_json(&[oversubscribed]),
    );
}
