//! End-to-end integration tests spanning the whole workspace: workload
//! generators drive the BATON overlay, the results are validated against the
//! structural invariants after every phase.

use baton_core::{validate, BatonConfig, BatonSystem, KeyRange, LoadBalanceConfig};
use baton_net::SimRng;
use baton_workload::{ChurnEvent, ChurnWorkload, DatasetPlan, Query, QueryWorkload};

fn build(n: usize, seed: u64) -> BatonSystem {
    BatonSystem::build(BatonConfig::default(), seed, n).expect("build overlay")
}

#[test]
fn full_lifecycle_uniform_workload() {
    let mut overlay = build(120, 1);
    validate(&overlay).unwrap();

    // Bulk load with the workload crate's generator.
    let plan = DatasetPlan::paper_uniform().scaled(0.02);
    let mut rng = SimRng::seeded(11);
    let data = plan.generate(&mut rng, overlay.node_count());
    for (k, v) in &data {
        overlay.insert(*k, *v).unwrap();
    }
    assert_eq!(overlay.total_items(), data.len());
    validate(&overlay).unwrap();

    // Every inserted key is findable by an exact query from a random peer.
    for (k, v) in data.iter().take(200) {
        let report = overlay.search_exact(*k).unwrap();
        assert!(report.matches.contains(v), "lost value for key {k}");
    }

    // Range queries return exactly the keys in range, in order.
    let queries = QueryWorkload {
        range_queries: 20,
        range_selectivity: 0.01,
        ..QueryWorkload::paper()
    };
    for query in queries.ranges(&mut rng) {
        let Query::Range { low, high } = query else {
            continue;
        };
        let report = overlay.search_range(KeyRange::new(low, high)).unwrap();
        let expected: usize = data.iter().filter(|(k, _)| *k >= low && *k < high).count();
        assert_eq!(report.matches.len(), expected);
        let keys: Vec<u64> = report.matches.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "range results must be in key order");
    }
}

#[test]
fn churn_workload_preserves_structure_and_data() {
    let mut overlay = build(80, 2);
    let mut rng = SimRng::seeded(22);
    let data = DatasetPlan::paper_uniform()
        .scaled(0.01)
        .generate(&mut rng, overlay.node_count());
    for (k, v) in &data {
        overlay.insert(*k, *v).unwrap();
    }
    let total = overlay.total_items();

    let workload = ChurnWorkload {
        events: 150,
        join_fraction: 0.5,
        failure_fraction: 0.0,
    };
    for event in workload.events(&mut rng) {
        match event {
            ChurnEvent::Join => {
                overlay.join_random().unwrap();
            }
            ChurnEvent::Leave | ChurnEvent::Fail => {
                if overlay.node_count() > 2 {
                    overlay.leave_random().unwrap();
                }
            }
        }
    }
    validate(&overlay).unwrap();
    // Graceful churn never loses data.
    assert_eq!(overlay.total_items(), total);
}

#[test]
fn failures_lose_only_the_failed_nodes_data() {
    let mut overlay = build(60, 3);
    let mut rng = SimRng::seeded(33);
    let data = DatasetPlan::paper_uniform()
        .scaled(0.01)
        .generate(&mut rng, overlay.node_count());
    for (k, v) in &data {
        overlay.insert(*k, *v).unwrap();
    }
    let before = overlay.total_items();
    let mut lost = 0usize;
    for _ in 0..10 {
        let victim = overlay.random_peer().unwrap();
        let report = overlay.fail(victim).unwrap();
        lost += report.lost_items;
        validate(&overlay).unwrap();
    }
    assert_eq!(overlay.total_items() + lost, before);
    assert_eq!(overlay.node_count(), 50);
}

#[test]
fn skewed_load_balancing_keeps_every_value_reachable() {
    // 0.01 × 1000 = 10 values per node on average; thresholds sized for that
    // average so the Zipf hot spot (which receives ~10% of all inserts)
    // overloads its owner and triggers balancing.
    let avg = 10usize;
    let config = BatonConfig::default().with_load_balance(LoadBalanceConfig::for_average_load(avg));
    let mut overlay = BatonSystem::build(config, 4, 50).unwrap();
    let plan = DatasetPlan::paper_zipf().scaled(0.01);
    let mut rng = SimRng::seeded(44);
    let data = plan.generate(&mut rng, overlay.node_count());
    let mut balanced = 0u32;
    for (k, v) in &data {
        let report = overlay.insert(*k, *v).unwrap();
        if report.balance.is_some() {
            balanced += 1;
        }
    }
    validate(&overlay).unwrap();
    assert_eq!(overlay.total_items(), data.len());
    assert!(balanced > 0, "the skewed load never triggered balancing");
    // Spot-check reachability of the hot keys.
    for (k, v) in data.iter().take(300) {
        let report = overlay.search_exact(*k).unwrap();
        assert!(report.matches.contains(v));
    }
}

#[test]
fn domain_can_grow_through_out_of_range_inserts() {
    let config = BatonConfig::default().with_domain(KeyRange::new(1_000, 2_000));
    let mut overlay = BatonSystem::build(config, 5, 30).unwrap();
    overlay.insert(10, 1).unwrap();
    overlay.insert(5_000, 2).unwrap();
    validate(&overlay).unwrap();
    assert!(overlay.domain().contains(10));
    assert!(overlay.domain().contains(5_000));
    assert_eq!(overlay.search_exact(10).unwrap().matches, vec![1]);
    assert_eq!(overlay.search_exact(5_000).unwrap().matches, vec![2]);
}
