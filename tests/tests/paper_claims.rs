//! Cross-crate checks of the paper's headline claims, at test scale:
//!
//! * exact and range queries cost `O(log N)` / `O(log N + X)` messages;
//! * joins and departures update routing tables in `O(log N)` messages,
//!   cheaper than Chord's `O(log² N)`;
//! * the tree stays height-balanced (≤ 1.44 log₂ N);
//! * the root is not an access hotspot;
//! * Chord cannot answer range queries, BATON and the multiway tree can.

use baton_chord::ChordSystem;
use baton_core::{BatonConfig, BatonSystem, KeyRange};
use baton_mtree::MTreeSystem;
use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator};

const N: usize = 400;

fn baton(seed: u64) -> BatonSystem {
    BatonSystem::build(BatonConfig::default(), seed, N).unwrap()
}

#[test]
fn exact_queries_are_logarithmic() {
    let mut overlay = baton(1);
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(1);
    let log_n = (N as f64).log2();
    let mut total = 0u64;
    let queries = 300;
    for _ in 0..queries {
        let report = overlay.search_exact(generator.next_key(&mut rng)).unwrap();
        total += report.messages;
    }
    let avg = total as f64 / queries as f64;
    assert!(
        avg <= 1.5 * log_n,
        "average exact-query cost {avg:.1} exceeds 1.5·log2 N = {:.1}",
        1.5 * log_n
    );
}

#[test]
fn range_queries_cost_log_n_plus_coverage() {
    let mut overlay = baton(2);
    let log_n = (N as f64).log2();
    for i in 0..50u64 {
        let low = 1 + i * 19_000_000;
        let report = overlay
            .search_range(KeyRange::new(low, low + 5_000_000))
            .unwrap();
        assert!(
            (report.messages as f64) <= 2.0 * log_n + report.nodes_visited as f64 + 4.0,
            "range query cost {} with {} nodes covered",
            report.messages,
            report.nodes_visited
        );
    }
}

#[test]
fn baton_updates_tables_cheaper_than_chord() {
    let mut overlay = baton(3);
    let mut chord = ChordSystem::build(3, N).unwrap();
    let rounds = 40;
    let mut baton_updates = 0u64;
    let mut chord_updates = 0u64;
    for _ in 0..rounds {
        baton_updates += overlay.join_random().unwrap().update_messages;
        baton_updates += overlay.leave_random().unwrap().update_messages;
        chord_updates += chord.join_random().unwrap().update_messages;
        chord_updates += chord.leave_random().unwrap().update_messages;
    }
    let baton_avg = baton_updates as f64 / (2 * rounds) as f64;
    let chord_avg = chord_updates as f64 / (2 * rounds) as f64;
    assert!(
        baton_avg < chord_avg,
        "BATON table maintenance ({baton_avg:.1}) should undercut Chord ({chord_avg:.1})"
    );
    // And BATON's stays O(log N): generously below 10·log2 N.
    assert!(baton_avg <= 10.0 * (N as f64).log2());
}

#[test]
fn tree_height_is_within_the_balanced_bound() {
    for seed in 0..3u64 {
        let overlay = baton(100 + seed);
        let height = overlay.height() as f64;
        let bound = 1.44 * (overlay.node_count() as f64).log2() + 1.0;
        assert!(
            height <= bound,
            "height {height} exceeds 1.44·log2 N bound {bound:.1} (seed {seed})"
        );
    }
}

#[test]
fn the_root_is_not_an_access_hotspot() {
    let mut overlay = baton(5);
    overlay.stats_mut().reset_received_counters();
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(5);
    for i in 0..2_000u64 {
        let key = generator.next_key(&mut rng);
        if i % 2 == 0 {
            overlay.insert(key, i).unwrap();
        } else {
            overlay.search_exact(key).unwrap();
        }
    }
    let by_level = overlay.access_load_by_level();
    assert!(by_level.len() >= 3);
    let root_load = by_level.first().map(|(_, v)| *v).unwrap_or(0.0);
    let max_load = by_level.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    // The paper's claim: the root does not receive disproportionate load.
    assert!(
        root_load <= max_load * 1.5,
        "root load {root_load:.1} dominates the per-level maximum {max_load:.1}"
    );
}

#[test]
fn only_the_ordered_overlays_answer_range_queries() {
    let mut overlay = baton(6);
    let mut chord = ChordSystem::build(6, 100).unwrap();
    let mut mtree = MTreeSystem::build(6, 100).unwrap();
    overlay.insert(500_000_000, 1).unwrap();
    let b = overlay
        .search_range(KeyRange::new(400_000_000, 600_000_000))
        .unwrap();
    assert_eq!(b.matches.len(), 1);
    assert!(chord.search_range(400_000_000, 600_000_000).is_none());
    assert!(mtree.search_range(400_000_000, 600_000_000).is_ok());
}

#[test]
fn join_locate_cost_stays_nearly_flat() {
    // Paper §V-A: the join/leave locate cost grows very slowly with N.
    let mut small = BatonSystem::build(BatonConfig::default(), 7, 100).unwrap();
    let mut large = BatonSystem::build(BatonConfig::default(), 7, 800).unwrap();
    let measure = |overlay: &mut BatonSystem| {
        let mut total = 0u64;
        for _ in 0..30 {
            total += overlay.join_random().unwrap().locate_messages;
        }
        total as f64 / 30.0
    };
    let cost_small = measure(&mut small);
    let cost_large = measure(&mut large);
    // An 8× larger network may cost a bit more, but nowhere near 8× — and it
    // must stay well under log2 N.
    assert!(cost_large <= cost_small * 3.0 + 3.0);
    assert!(cost_large <= (800f64).log2());
}
