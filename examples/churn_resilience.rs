//! Churn and failure resilience: peers join, leave and crash while the
//! index keeps answering queries (paper §III-B/C/D).
//!
//! ```text
//! cargo run -p baton-examples --example churn_resilience
//! ```

use baton_core::{validate, BatonConfig, BatonSystem};
use baton_net::SimRng;
use baton_workload::{ChurnEvent, ChurnWorkload};

fn main() {
    let mut overlay = BatonSystem::build(BatonConfig::default(), 2024, 150).expect("build");
    let mut rng = SimRng::seeded(31337);

    // Seed the index with data we will keep querying throughout the churn.
    let tracked: Vec<u64> = (0..200u64).map(|i| 1 + i * 4_999_999).collect();
    for (i, key) in tracked.iter().enumerate() {
        overlay.insert(*key, i as u64).expect("insert");
    }
    println!(
        "start: {} nodes, {} indexed values",
        overlay.node_count(),
        overlay.total_items()
    );

    // Apply a churn workload: half joins, and of the rest one third are
    // abrupt failures rather than graceful departures.
    let workload = ChurnWorkload {
        events: 120,
        join_fraction: 0.5,
        failure_fraction: 0.34,
    };
    let mut joins = 0u32;
    let mut leaves = 0u32;
    let mut failures = 0u32;
    let mut lost_items = 0usize;
    for event in workload.events(&mut rng) {
        match event {
            ChurnEvent::Join => {
                overlay.join_random().expect("join");
                joins += 1;
            }
            ChurnEvent::Leave => {
                if overlay.node_count() > 2 {
                    overlay.leave_random().expect("leave");
                    leaves += 1;
                }
            }
            ChurnEvent::Fail => {
                if overlay.node_count() > 2 {
                    let victim = overlay.random_peer().expect("non-empty");
                    let report = overlay.fail(victim).expect("failure recovery");
                    lost_items += report.lost_items;
                    failures += 1;
                }
            }
        }
        // The overlay must stay a valid balanced tree after every event.
        validate(&overlay).expect("invariants survive churn");
    }
    println!(
        "churn applied: {joins} joins, {leaves} graceful departures, {failures} failures \
         ({lost_items} items lost with failed peers — BATON does not replicate)"
    );
    println!(
        "after churn: {} nodes, height {}, {:.2}·log2 N",
        overlay.node_count(),
        overlay.height(),
        overlay.height() as f64 / (overlay.node_count() as f64).log2()
    );

    // Every tracked key still routes to a live owner; values survive unless
    // their node crashed.
    let mut surviving = 0usize;
    let mut total_messages = 0u64;
    for key in &tracked {
        let report = overlay.search_exact(*key).expect("query after churn");
        total_messages += report.messages;
        if !report.matches.is_empty() {
            surviving += 1;
        }
    }
    println!(
        "queried {} tracked keys: {} still present, avg {:.1} messages per query",
        tracked.len(),
        surviving,
        total_messages as f64 / tracked.len() as f64
    );
    assert!(surviving + lost_items >= tracked.len());
    println!("routing never broke — done.");
}
