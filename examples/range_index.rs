//! A distributed time-series index: the workload the paper's introduction
//! motivates — range queries over ordered data that a DHT cannot serve.
//!
//! A fleet of peers indexes event timestamps (seconds since an epoch).  The
//! application asks questions like "which events happened in this hour?",
//! which map to range queries over the overlay.
//!
//! ```text
//! cargo run -p baton-examples --example range_index
//! ```

use baton_core::{BatonConfig, BatonSystem, KeyRange, LoadBalanceConfig};
use baton_net::SimRng;

/// One simulated day of events, one event every few seconds.
const DAY: u64 = 86_400;

fn main() {
    // Timestamps of one day live in [0, 86400); configure the overlay's key
    // domain accordingly instead of using the paper's [1, 10^9) default.
    let config = BatonConfig::default()
        .with_domain(KeyRange::new(0, DAY))
        .with_load_balance(LoadBalanceConfig::for_average_load(600));
    let mut overlay = BatonSystem::build(config, 7, 48).expect("build the overlay");
    println!(
        "indexing one day of events across {} peers (height {})",
        overlay.node_count(),
        overlay.height()
    );

    // Ingest events: bursty around "business hours" to make it interesting.
    let mut rng = SimRng::seeded(99);
    let mut total = 0u64;
    for event_id in 0..20_000u64 {
        let hour = if rng.chance(0.7) {
            9 + rng.uniform_u64(0, 9) // 09:00–17:59
        } else {
            rng.uniform_u64(0, 24)
        };
        let timestamp = hour * 3600 + rng.uniform_u64(0, 3600);
        overlay.insert(timestamp, event_id).expect("ingest event");
        total += 1;
    }
    println!("ingested {total} events");

    // Hourly aggregation: one range query per hour.
    println!("\n  hour | events | messages | nodes scanned");
    println!("  -----+--------+----------+--------------");
    let mut total_messages = 0u64;
    for hour in 0..24u64 {
        let window = KeyRange::new(hour * 3600, (hour + 1) * 3600);
        let report = overlay.search_range(window).expect("hourly range query");
        total_messages += report.messages;
        if hour % 3 == 0 || (9..18).contains(&hour) {
            println!(
                "  {hour:>4} | {:>6} | {:>8} | {:>13}",
                report.matches.len(),
                report.messages,
                report.nodes_visited
            );
        }
    }
    println!(
        "\n24 hourly range queries cost {total_messages} messages in total \
         ({:.1} per query, log2 N = {:.1})",
        total_messages as f64 / 24.0,
        (overlay.node_count() as f64).log2()
    );

    // Point lookup: "what happened at exactly 12:34:56?"
    let probe = 12 * 3600 + 34 * 60 + 56;
    let exact = overlay.search_exact(probe).expect("point query");
    println!(
        "point query at t={probe}: {} event(s), {} messages",
        exact.matches.len(),
        exact.messages
    );

    baton_core::validate(&overlay).expect("overlay consistent");
}
