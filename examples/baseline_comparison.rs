//! Side-by-side comparison of BATON against the paper's two baselines —
//! Chord and the multiway tree — on the same workload: a miniature version
//! of the whole Figure 8 evaluation in one program.
//!
//! ```text
//! cargo run -p baton-examples --example baseline_comparison --release
//! ```

use baton_chord::ChordSystem;
use baton_core::{BatonConfig, BatonSystem, KeyRange};
use baton_mtree::MTreeSystem;
use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator};

fn main() {
    let n = 500usize;
    let queries = 300usize;
    let seed = 4242u64;

    println!("building three {n}-node overlays on identical workloads…\n");
    let mut baton = BatonSystem::build(BatonConfig::default(), seed, n).expect("baton");
    let mut chord = ChordSystem::build(seed, n).expect("chord");
    let mut mtree = MTreeSystem::build(seed, n).expect("mtree");

    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(seed);

    // Insert the same keys everywhere.
    let keys: Vec<u64> = (0..5_000).map(|_| generator.next_key(&mut rng)).collect();
    let (mut bi, mut ci, mut mi) = (0u64, 0u64, 0u64);
    for (i, key) in keys.iter().enumerate() {
        bi += baton.insert(*key, i as u64).expect("insert").messages;
        ci += chord.insert(*key, i as u64).expect("insert").messages;
        mi += mtree.insert(*key).expect("insert").messages;
    }

    // Exact queries.
    let (mut bq, mut cq, mut mq) = (0u64, 0u64, 0u64);
    for _ in 0..queries {
        let key = generator.next_key(&mut rng);
        bq += baton.search_exact(key).expect("query").messages;
        cq += chord.search_exact(key).expect("query").messages;
        mq += mtree.search_exact(key).expect("query").messages;
    }

    // Range queries (Chord cannot answer them).
    let (mut br, mut mr) = (0u64, 0u64);
    for _ in 0..queries {
        let low = generator.next_key(&mut rng);
        let high = (low + 2_000_000).min(999_999_999);
        br += baton
            .search_range(KeyRange::new(low, high))
            .expect("range")
            .messages;
        mr += mtree.search_range(low, high).expect("range").messages;
        assert!(chord.search_range(low, high).is_none());
    }

    // Churn costs.
    let (mut bj, mut cj, mut mj) = (0u64, 0u64, 0u64);
    let (mut bl, mut cl, mut ml) = (0u64, 0u64, 0u64);
    for _ in 0..50 {
        let j = baton.join_random().expect("join");
        bj += j.locate_messages + j.update_messages;
        let l = baton.leave_random().expect("leave");
        bl += l.locate_messages + l.update_messages;
        let j = chord.join_random().expect("join");
        cj += j.locate_messages + j.update_messages;
        let l = chord.leave_random().expect("leave");
        cl += l.locate_messages + l.update_messages;
        let j = mtree.join_random().expect("join");
        mj += j.locate_messages + j.update_messages;
        let l = mtree.leave_random().expect("leave");
        ml += l.locate_messages + l.update_messages;
    }

    let per = |total: u64, count: usize| total as f64 / count as f64;
    println!("average messages per operation ({n} nodes, log2 N = {:.1}):\n", (n as f64).log2());
    println!("  operation       |   BATON |   Chord | Multiway");
    println!("  ----------------+---------+---------+---------");
    println!(
        "  insert          | {:>7.1} | {:>7.1} | {:>7.1}",
        per(bi, keys.len()),
        per(ci, keys.len()),
        per(mi, keys.len())
    );
    println!(
        "  exact query     | {:>7.1} | {:>7.1} | {:>7.1}",
        per(bq, queries),
        per(cq, queries),
        per(mq, queries)
    );
    println!(
        "  range query     | {:>7.1} |     n/a | {:>7.1}",
        per(br, queries),
        per(mr, queries)
    );
    println!(
        "  join (total)    | {:>7.1} | {:>7.1} | {:>7.1}",
        per(bj, 50),
        per(cj, 50),
        per(mj, 50)
    );
    println!(
        "  leave (total)   | {:>7.1} | {:>7.1} | {:>7.1}",
        per(bl, 50),
        per(cl, 50),
        per(ml, 50)
    );
    println!(
        "\nBATON matches Chord on exact queries, supports range queries that Chord \
         cannot, and updates its routing tables with far fewer messages on churn."
    );

    baton_core::validate(&baton).expect("baton consistent");
    chord.validate().expect("chord consistent");
    mtree.validate().expect("mtree consistent");
}
