//! Side-by-side comparison of BATON against the paper's two baselines —
//! Chord and the multiway tree — plus the post-paper D3-Tree, on the same
//! workload: a miniature version of the whole Figure 8 evaluation in one
//! program.
//!
//! The entire comparison is written against the [`baton_net::Overlay`]
//! trait: one measurement loop runs every system, and Chord drops out of the
//! range-query row because its capabilities say so, not because this program
//! special-cases it.
//!
//! ```text
//! cargo run -p baton-examples --example baseline_comparison --release
//! ```

use baton_chord::ChordSystem;
use baton_core::{BatonConfig, BatonSystem};
use baton_d3tree::D3TreeSystem;
use baton_mtree::MTreeSystem;
use baton_net::{Overlay, SimRng};
use baton_workload::{runner, ChurnEvent, KeyDistribution, KeyGenerator, Query};

/// Workload measurements for one overlay.
struct Row {
    name: &'static str,
    insert: f64,
    exact: f64,
    range: Option<f64>,
    join: f64,
    leave: f64,
}

fn measure(overlay: &mut dyn Overlay, seed: u64, n_keys: usize, queries: usize) -> Row {
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(seed);

    // Bulk load.
    let data: Vec<(u64, u64)> = (0..n_keys)
        .map(|i| (generator.next_key(&mut rng), i as u64))
        .collect();
    let load = runner::bulk_load(overlay, &data).expect("bulk load");

    // Exact queries, then range queries (skipped automatically where
    // unsupported).
    let mut batch: Vec<Query> = Vec::with_capacity(2 * queries);
    for _ in 0..queries {
        batch.push(Query::Exact(generator.next_key(&mut rng)));
    }
    for _ in 0..queries {
        let low = generator.next_key(&mut rng);
        batch.push(Query::Range {
            low,
            high: (low + 2_000_000).min(999_999_999),
        });
    }
    let query_outcome = runner::run_queries(overlay, &batch).expect("queries");

    // Churn: alternating joins and leaves.
    let churn: Vec<ChurnEvent> = (0..100)
        .map(|i| {
            if i % 2 == 0 {
                ChurnEvent::Join
            } else {
                ChurnEvent::Leave
            }
        })
        .collect();
    let churn_outcome = runner::run_churn(overlay, &churn, 2).expect("churn");

    overlay.validate().expect("overlay stays consistent");
    Row {
        name: overlay.name(),
        insert: load.mean_messages(),
        exact: query_outcome.mean_exact_messages(),
        range: (query_outcome.range_executed > 0).then(|| query_outcome.mean_range_messages()),
        join: churn_outcome.locate_messages as f64 / churn_outcome.executed().max(1) as f64,
        leave: churn_outcome.update_messages as f64 / churn_outcome.executed().max(1) as f64,
    }
}

fn main() {
    let n = 500usize;
    let queries = 300usize;
    let seed = 4242u64;

    println!("building four {n}-node overlays on identical workloads…\n");
    let mut overlays: Vec<Box<dyn Overlay>> = vec![
        Box::new(BatonSystem::build(BatonConfig::default(), seed, n).expect("baton")),
        Box::new(ChordSystem::build(seed, n).expect("chord")),
        Box::new(MTreeSystem::build(seed, n).expect("mtree")),
        Box::new(D3TreeSystem::build(seed, n).expect("d3tree")),
    ];

    let rows: Vec<Row> = overlays
        .iter_mut()
        .map(|overlay| measure(overlay.as_mut(), seed, 5_000, queries))
        .collect();

    println!(
        "average messages per operation ({n} nodes, log2 N = {:.1}):\n",
        (n as f64).log2()
    );
    print!("  operation         ");
    for row in &rows {
        print!(" | {:>13}", row.name);
    }
    println!();
    println!(
        "  ------------------{}",
        " | -------------".repeat(rows.len())
    );
    let print_row = |label: &str, values: Vec<String>| {
        print!("  {label:<18}");
        for v in values {
            print!(" | {v:>13}");
        }
        println!();
    };
    print_row(
        "insert",
        rows.iter().map(|r| format!("{:.1}", r.insert)).collect(),
    );
    print_row(
        "exact query",
        rows.iter().map(|r| format!("{:.1}", r.exact)).collect(),
    );
    print_row(
        "range query",
        rows.iter()
            .map(|r| match r.range {
                Some(v) => format!("{v:.1}"),
                None => "n/a".to_owned(),
            })
            .collect(),
    );
    print_row(
        "churn (locate)",
        rows.iter().map(|r| format!("{:.1}", r.join)).collect(),
    );
    print_row(
        "churn (update)",
        rows.iter().map(|r| format!("{:.1}", r.leave)).collect(),
    );

    println!(
        "\nBATON matches Chord on exact queries, supports range queries that Chord \
         cannot, and updates its routing tables with far fewer messages on churn."
    );
}
