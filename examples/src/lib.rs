//! Runnable examples for the BATON reproduction live in the package root as [[example]] targets.
