//! Load balancing under a skewed (Zipfian) workload: the §IV-D machinery in
//! action — adjacent-node migration, lightly loaded leaves re-joining next
//! to hot spots, and the restructuring shifts that keep the tree balanced.
//!
//! ```text
//! cargo run -p baton-examples --example load_balancing
//! ```

use baton_core::{validate, BalanceKind, BatonConfig, BatonSystem, LoadBalanceConfig};
use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator};

fn max_and_avg_load(overlay: &BatonSystem) -> (usize, f64) {
    let loads: Vec<usize> = overlay
        .peers()
        .iter()
        .map(|&p| overlay.node(p).unwrap().load())
        .collect();
    let max = loads.iter().copied().max().unwrap_or(0);
    let avg = loads.iter().sum::<usize>() as f64 / loads.len().max(1) as f64;
    (max, avg)
}

fn run(label: &str, balancing: bool) {
    let inserts = 30_000u64;
    let nodes = 100usize;
    let expected_avg = inserts as usize / nodes;
    let lb = if balancing {
        LoadBalanceConfig::for_average_load(expected_avg)
    } else {
        LoadBalanceConfig::disabled()
    };
    let config = BatonConfig::default().with_load_balance(lb);
    let mut overlay = BatonSystem::build(config, 77, nodes).expect("build");

    let generator = KeyGenerator::paper(KeyDistribution::Zipf { theta: 1.0 });
    let mut rng = SimRng::seeded(555);
    let mut migrations = 0u64;
    let mut rejoins = 0u64;
    let mut balance_messages = 0u64;
    for i in 0..inserts {
        let key = generator.next_key(&mut rng);
        let report = overlay.insert(key, i).expect("insert");
        if let Some(balance) = report.balance {
            balance_messages += balance.messages;
            match balance.kind {
                BalanceKind::AdjacentMigration => migrations += 1,
                BalanceKind::LeafRejoin => rejoins += 1,
            }
        }
    }
    let (max, avg) = max_and_avg_load(&overlay);
    println!("--- {label} ---");
    println!("  inserted {inserts} Zipf(1.0) keys into {nodes} nodes");
    println!(
        "  max node load {max}  (average {avg:.0}, imbalance ×{:.1})",
        max as f64 / avg
    );
    if balancing {
        println!("  balancing actions: {migrations} adjacent migrations, {rejoins} leaf re-joins");
        println!(
            "  balancing overhead: {balance_messages} messages \
             ({:.4} per insert — the paper reports ~1 per 1500 inserts)",
            balance_messages as f64 / inserts as f64
        );
        let hist = overlay.balance_shift_histogram();
        println!("  shift-size distribution (nodes involved -> share):");
        for (size, count) in hist.iter() {
            println!(
                "    {size:>3} -> {:>5.1}%",
                100.0 * count as f64 / hist.total() as f64
            );
        }
    }
    validate(&overlay).expect("overlay stays consistent");
}

fn main() {
    run("load balancing DISABLED", false);
    run("load balancing ENABLED (paper §IV-D)", true);
}
