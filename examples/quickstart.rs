//! Quickstart: build a BATON overlay, index data, run exact and range
//! queries, and watch a node join and leave.
//!
//! ```text
//! cargo run -p baton-examples --example quickstart
//! ```

use baton_core::{validate, BatonConfig, BatonSystem, KeyRange};

fn main() {
    // 1. Build an overlay of 100 peers: one bootstrap node plus 99 joins
    //    through random contacts, exactly how the paper grows its networks.
    let mut overlay =
        BatonSystem::build(BatonConfig::default(), 42, 100).expect("build the overlay");
    println!(
        "built a BATON overlay: {} nodes, tree height {} (1.44·log2 N = {:.1})",
        overlay.node_count(),
        overlay.height(),
        1.44 * (overlay.node_count() as f64).log2()
    );

    // 2. Index some data: every node owns a contiguous key range, so the
    //    overlay behaves like a distributed B-tree.
    for i in 0..1_000u64 {
        let key = 1 + i * 999_983 % 999_999_999;
        overlay.insert(key, i).expect("insert");
    }
    println!("inserted 1000 values across {} nodes", overlay.node_count());

    // 3. Exact-match query from a random peer: O(log N) messages.
    let key = 1 + (500 * 999_983);
    let hit = overlay.search_exact(key).expect("exact query");
    println!(
        "exact query for key {key}: {} match(es), {} messages, {} hops",
        hit.matches.len(),
        hit.messages,
        hit.hops
    );

    // 4. Range query — the reason BATON exists: DHTs cannot do this.
    let range = KeyRange::new(100_000_000, 200_000_000);
    let scan = overlay.search_range(range).expect("range query");
    println!(
        "range query {range}: {} matches from {} nodes, {} messages",
        scan.matches.len(),
        scan.nodes_visited,
        scan.messages
    );

    // 5. Churn: a peer joins and another leaves; both cost O(log N)
    //    messages and the tree stays balanced.
    let join = overlay.join_random().expect("join");
    println!(
        "peer {} joined under {} at {:?}: {} locate + {} update messages",
        join.new_peer, join.parent, join.position, join.locate_messages, join.update_messages
    );
    let leave = overlay.leave_random().expect("leave");
    println!(
        "peer {} left (replacement: {:?}): {} locate + {} update messages",
        leave.departed, leave.replacement, leave.locate_messages, leave.update_messages
    );

    // 6. The whole structure is still a valid balanced BATON tree.
    validate(&overlay).expect("the overlay keeps every invariant");
    println!("all structural invariants hold — done.");
}
