//! Figure 8(i): effect of network dynamics — extra messages under
//! concurrent joins and leaves.
//!
//! Prints the reproduced series (extra messages per operation vs the number
//! of concurrent operations) and benchmarks a concurrent churn batch.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8i");

    let mut group = c.benchmark_group("fig8i_network_dynamics");
    group.sample_size(10);

    let mut overlay = baton_bench::baton_overlay(500, 81, 100);
    group.bench_function("baton_churn_batch_of_8_n500", |b| {
        b.iter(|| {
            let mut joined = Vec::new();
            for _ in 0..4 {
                joined.push(overlay.join_random().expect("join").new_peer);
            }
            for peer in joined {
                overlay.leave(peer).expect("leave");
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
