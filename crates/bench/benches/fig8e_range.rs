//! Figure 8(e): cost of range queries.
//!
//! Prints the reproduced series (BATON `O(log N + X)`; Chord cannot answer
//! range queries) and benchmarks BATON range queries of two selectivities on
//! a 1,000-node overlay.

use baton_core::KeyRange;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8e");

    let mut group = c.benchmark_group("fig8e_range_query");
    group.sample_size(20);

    let mut overlay = baton_bench::baton_overlay(1000, 31, 1_000_000);
    for i in 0..20_000u64 {
        overlay
            .insert(1 + (i * 49_999) % 999_999_998, i)
            .expect("preload");
    }

    let mut low = 1u64;
    group.bench_function("baton_range_query_0p1pct_n1000", |b| {
        b.iter(|| {
            low = (low * 48271) % 900_000_000 + 1;
            overlay
                .search_range(KeyRange::new(low, low + 1_000_000))
                .expect("range");
        })
    });
    group.bench_function("baton_range_query_1pct_n1000", |b| {
        b.iter(|| {
            low = (low * 48271) % 900_000_000 + 1;
            overlay
                .search_range(KeyRange::new(low, low + 10_000_000))
                .expect("range");
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
