//! Figure 8(h): distribution of the number of nodes involved in one load
//! balancing operation.
//!
//! Prints the reproduced distribution (sharply decaying with shift length)
//! and benchmarks skewed inserts on a small overlay where balancing — and
//! the forced restructuring shifts it triggers — fires frequently.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8h");

    let mut group = c.benchmark_group("fig8h_shift_size");
    group.sample_size(20);

    // Keep one region overloaded by pumping keys into a narrow band, which
    // exercises the balancing + restructuring path on most iterations.
    let mut overlay = baton_bench::baton_overlay(200, 71, 20);
    let mut i = 0u64;
    group.bench_function("baton_skewed_insert_with_rebalance_n200", |b| {
        b.iter(|| {
            i += 1;
            let key = 1 + (i % 1000);
            let report = overlay.insert(key, i).expect("insert");
            criterion::black_box(report.balance.is_some());
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
