//! Figure 8(a): cost of finding the join node and the replacement node.
//!
//! Prints the reproduced series (BATON vs Chord vs multiway tree, messages
//! per operation vs network size) and benchmarks the wall-clock cost of a
//! BATON join and a BATON departure on a 1,000-node overlay.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8a");

    let mut group = c.benchmark_group("fig8a_join_leave");
    group.sample_size(20);

    let mut join_overlay = baton_bench::baton_overlay(1000, 41, 100);
    group.bench_function("baton_join_n1000", |b| {
        b.iter(|| {
            join_overlay.join_random().expect("join");
        })
    });

    let mut churn_overlay = baton_bench::baton_overlay(1000, 42, 100);
    group.bench_function("baton_join_then_leave_n1000", |b| {
        b.iter(|| {
            let report = churn_overlay.join_random().expect("join");
            churn_overlay.leave(report.new_peer).expect("leave");
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
