//! Figure 8(b): cost of updating routing tables on join and leave.
//!
//! Prints the reproduced series (BATON `O(log N)` vs Chord `O(log² N)` vs
//! multiway tree) and benchmarks the maintenance-heavy part in isolation:
//! a Chord join (finger construction) against a BATON join.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8b");

    let mut group = c.benchmark_group("fig8b_routing_update");
    group.sample_size(20);

    let mut baton = baton_bench::baton_overlay(1000, 7, 100);
    group.bench_function("baton_join_table_update_n1000", |b| {
        b.iter(|| {
            baton.join_random().expect("join");
        })
    });

    let mut chord = baton_chord::ChordSystem::build(7, 1000).expect("chord");
    group.bench_function("chord_join_finger_build_n1000", |b| {
        b.iter(|| {
            chord.join_random().expect("join");
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
