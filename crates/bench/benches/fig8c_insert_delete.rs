//! Figure 8(c): cost of insert and delete operations.
//!
//! Prints the reproduced series and benchmarks BATON inserts and deletes on
//! a 1,000-node overlay.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8c");

    let mut group = c.benchmark_group("fig8c_insert_delete");
    group.sample_size(30);

    let mut overlay = baton_bench::baton_overlay(1000, 11, 1_000_000);
    let mut key = 1u64;
    group.bench_function("baton_insert_n1000", |b| {
        b.iter(|| {
            key = (key * 48271) % 999_999_999 + 1;
            overlay.insert(key, key).expect("insert");
        })
    });

    let mut delete_overlay = baton_bench::baton_overlay(1000, 12, 1_000_000);
    for i in 0..10_000u64 {
        delete_overlay
            .insert(1 + (i * 99_991) % 999_999_998, i)
            .expect("preload");
    }
    let mut dkey = 1u64;
    group.bench_function("baton_delete_n1000", |b| {
        b.iter(|| {
            dkey = (dkey * 48271) % 999_999_999 + 1;
            delete_overlay.delete(dkey).expect("delete");
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
