//! Figure 8(g): average messages of the load-balancing operation,
//! uniform versus skewed (Zipf 1.0) data.
//!
//! Prints the reproduced series and benchmarks skewed inserts (which carry
//! the load-balancing machinery) against uniform inserts.

use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8g");

    let mut group = c.benchmark_group("fig8g_load_balance");
    group.sample_size(20);

    let mut uniform_overlay = baton_bench::baton_overlay(300, 61, 50);
    let uniform_keys = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(611);
    group.bench_function("baton_insert_uniform_n300", |b| {
        b.iter(|| {
            let key = uniform_keys.next_key(&mut rng);
            uniform_overlay.insert(key, 0).expect("insert");
        })
    });

    let mut skewed_overlay = baton_bench::baton_overlay(300, 62, 50);
    let zipf_keys = KeyGenerator::paper(KeyDistribution::Zipf { theta: 1.0 });
    let mut zipf_rng = SimRng::seeded(622);
    group.bench_function("baton_insert_zipf_with_balancing_n300", |b| {
        b.iter(|| {
            let key = zipf_keys.next_key(&mut zipf_rng);
            skewed_overlay.insert(key, 0).expect("insert");
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
