//! Figure 8(f): access load of nodes at different tree levels.
//!
//! Prints the per-level insert/search load table (showing that the root is
//! not a hotspot) and benchmarks the per-level aggregation itself plus a
//! mixed insert+search workload that generates the load.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8f");

    let mut group = c.benchmark_group("fig8f_access_load");
    group.sample_size(20);

    let mut overlay = baton_bench::baton_overlay(500, 51, 1_000_000);
    let mut key = 1u64;
    group.bench_function("baton_mixed_insert_search_n500", |b| {
        b.iter(|| {
            key = (key * 48271) % 999_999_999 + 1;
            overlay.insert(key, key).expect("insert");
            overlay.search_exact(key).expect("search");
        })
    });

    group.bench_function("access_load_aggregation_n500", |b| {
        b.iter(|| overlay.access_load_by_level())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
