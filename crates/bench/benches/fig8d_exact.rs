//! Figure 8(d): cost of exact-match queries.
//!
//! Prints the reproduced series (BATON vs Chord vs multiway tree) and
//! benchmarks a BATON exact query against a Chord lookup on 1,000-node
//! overlays.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    baton_bench::print_figure("8d");

    let mut group = c.benchmark_group("fig8d_exact_query");
    group.sample_size(30);

    let mut baton = baton_bench::baton_overlay(1000, 21, 1_000_000);
    for i in 0..20_000u64 {
        baton
            .insert(1 + (i * 49_999) % 999_999_998, i)
            .expect("preload");
    }
    let mut key = 1u64;
    group.bench_function("baton_search_exact_n1000", |b| {
        b.iter(|| {
            key = (key * 48271) % 999_999_999 + 1;
            baton.search_exact(key).expect("search");
        })
    });

    let mut chord = baton_chord::ChordSystem::build(21, 1000).expect("chord");
    for i in 0..20_000u64 {
        chord.insert(i * 7, i).expect("preload");
    }
    let mut ckey = 1u64;
    group.bench_function("chord_search_exact_n1000", |b| {
        b.iter(|| {
            ckey = (ckey * 48271) % 999_999_999 + 1;
            chord.search_exact(ckey).expect("search");
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
