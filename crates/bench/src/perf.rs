//! The `perf` target: wall-clock measurements of the simulator's hot paths.
//!
//! Unlike the Criterion benches (which reproduce the paper's *message
//! counts*), this module tracks how fast the substrate itself runs: overlay
//! construction, the paper-profile exact-match (fig8d) and range-search
//! (fig8e) query drivers, and two time-domain scenarios —
//! `latency_under_churn` (the original open-loop template) and
//! `regional_failure` (the phased engine with a regional latency topology
//! and a correlated fault plan, representative of the scenario registry's
//! new machinery).  The `perf` binary emits the results as
//! `BENCH_perf.json` so successive PRs can regress against a
//! machine-readable wall-clock trajectory.

use std::fmt::Write as _;
use std::time::Instant;

use baton_net::{LinkKind, Overlay, SimRng, TraceConfig};
use baton_sim::{json_string, scenario, Profile};
use baton_workload::{runner, KeyDistribution, QueryWorkload};

/// One timed measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Stable identifier (`"build"`, `"exact_fig8d"`, …).
    pub id: String,
    /// Human-readable description of what was timed.
    pub detail: String,
    /// Number of work items the wall time covers (nodes joined, queries
    /// executed, operations dispatched).
    pub work_items: u64,
    /// What one work item is (`"joins"`, `"queries"`, `"ops"`).
    pub unit: String,
    /// Wall-clock milliseconds for the whole measurement.
    pub wall_ms: f64,
    /// Work items per wall-clock second.
    pub per_second: f64,
    /// Availability fraction measured by the run (the `avail_k*` rows);
    /// `None` for pure timing rows.  When present it is in `[0, 1]`.
    pub availability: Option<f64>,
}

impl Measurement {
    pub(crate) fn timed<T>(
        id: &str,
        detail: String,
        unit: &str,
        run: impl FnOnce() -> (u64, T),
    ) -> (Self, T) {
        // Progress goes to stderr as each stage starts and finishes — full
        // runs take minutes, and a silent harness is indistinguishable from
        // a hung one.
        eprintln!("perf: running {id} ({detail})");
        let started = Instant::now();
        let (work_items, value) = run();
        let wall = started.elapsed();
        eprintln!("perf: {id} finished in {:.1} ms", wall.as_secs_f64() * 1e3);
        let wall_ms = wall.as_secs_f64() * 1e3;
        let per_second = if wall.as_secs_f64() > 0.0 {
            work_items as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        (
            Self {
                id: id.to_owned(),
                detail,
                work_items,
                unit: unit.to_owned(),
                wall_ms,
                per_second,
                availability: None,
            },
            value,
        )
    }
}

/// Scale knobs of one perf run.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfProfile {
    /// Profile name recorded in the report (`"full"` / `"smoke"`).
    pub name: &'static str,
    /// Nodes in the overlay whose construction and queries are timed.
    pub build_n: usize,
    /// Fraction of the paper's `1000 × N` bulk load inserted before the
    /// query measurements.
    pub data_scale: f64,
    /// Exact-match and range queries timed (the paper uses 1000 of each).
    pub queries: usize,
    /// Profile handed to the `latency_under_churn` scenario.
    pub scenario: Profile,
    /// Network sizes of the per-op cost-curve rows (`curve_build_*` /
    /// `curve_churn_*`).  Each size is bulk-built so construction cost does
    /// not mask the per-operation trend the curve exists to show.
    pub curve_ns: Vec<usize>,
    /// Profile template of the cost-curve churn rows; `network_sizes` is
    /// replaced by each entry of [`curve_ns`](Self::curve_ns) in turn.
    pub curve_churn: Profile,
    /// Nodes in the large-scale BATON build (`scale_build` / `scale_mem`
    /// rows) — one million at the full profile.
    pub scale_n: usize,
    /// Profile of the multi-threaded `latency_under_churn` scale rows
    /// (`scale_churn_t*`): its repetitions are the units the engine fans
    /// across worker threads.
    pub scale_churn: Profile,
    /// Worker threads of the parallel scale-churn row (compared against a
    /// single-threaded run of the same profile).
    pub scale_threads: usize,
    /// Profile of the availability rows (`avail_k1`..`avail_k3`): the
    /// `regional_failure` scenario, BATON only, at replication degrees
    /// 1 through 3.
    pub avail: Profile,
    /// Exact-match queries of each `serve_exact_t*` row (the lock-free
    /// snapshot read path; same work at every thread count).
    pub serve_queries: u64,
    /// Range queries of the `serve_range_t1` row.
    pub serve_range_queries: u64,
    /// Churn-commit → snapshot-publish swaps of the
    /// `serve_snapshot_staleness` row.
    pub serve_swaps: usize,
    /// Largest serve worker count: exact rows run at 1, 2 and 4 threads,
    /// capped by this and by the host's parallelism.
    pub serve_threads_max: usize,
}

impl PerfProfile {
    /// The paper-scale profile: a 10,000-node overlay, 1000 + 1000 queries,
    /// the scenario at N = 1000, a million-node scale build and the scale
    /// churn comparison at N = 100,000.
    pub fn full() -> Self {
        Self {
            name: "full",
            build_n: 10_000,
            data_scale: 0.01,
            queries: 1000,
            scenario: Profile {
                network_sizes: vec![1000],
                repetitions: 1,
                data_scale: 0.02,
                query_scale: 1.0,
                churn_ops: 100,
                seed: 2005,
            },
            curve_ns: vec![1_000, 10_000, 100_000],
            curve_churn: Profile {
                network_sizes: vec![],
                repetitions: 1,
                data_scale: 0.02,
                query_scale: 1.0,
                churn_ops: 100,
                seed: 2005,
            },
            scale_n: 1_000_000,
            scale_churn: Profile {
                network_sizes: vec![100_000],
                repetitions: 4,
                data_scale: 0.02,
                query_scale: 1.0,
                churn_ops: 100,
                seed: 2005,
            },
            scale_threads: 4,
            avail: Profile {
                network_sizes: vec![10_000],
                repetitions: 1,
                data_scale: 0.02,
                query_scale: 1.0,
                churn_ops: 100,
                seed: 2005,
            },
            serve_queries: 1_000_000,
            serve_range_queries: 100_000,
            serve_swaps: 200,
            serve_threads_max: 4,
        }
    }

    /// A reduced profile for CI smoke runs (seconds, not minutes).
    pub fn smoke() -> Self {
        Self {
            name: "smoke",
            build_n: 300,
            data_scale: 0.01,
            queries: 50,
            scenario: Profile::smoke(),
            curve_ns: vec![50, 100, 200],
            curve_churn: Profile {
                network_sizes: vec![],
                repetitions: 1,
                data_scale: 0.02,
                query_scale: 0.2,
                churn_ops: 20,
                seed: 2005,
            },
            scale_n: 10_000,
            scale_churn: Profile {
                network_sizes: vec![400],
                repetitions: 2,
                data_scale: 0.02,
                query_scale: 0.2,
                churn_ops: 20,
                seed: 2005,
            },
            scale_threads: 2,
            avail: Profile {
                network_sizes: vec![200],
                repetitions: 1,
                data_scale: 0.02,
                query_scale: 1.0,
                churn_ops: 20,
                seed: 2005,
            },
            serve_queries: 20_000,
            serve_range_queries: 2_000,
            serve_swaps: 20,
            serve_threads_max: 2,
        }
    }

    /// Resolves a profile by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "full" => Some(Self::full()),
            "smoke" => Some(Self::smoke()),
            _ => None,
        }
    }
}

/// Formats a network size as a row-id suffix: `"100k"` for round thousands,
/// the raw number otherwise (smoke-profile sizes).
fn n_suffix(n: usize) -> String {
    if n >= 1000 && n.is_multiple_of(1000) {
        format!("{}k", n / 1000)
    } else {
        n.to_string()
    }
}

/// Sums the per-class op counts of a finished scenario run.
fn scenario_ops(result: &scenario::ScenarioResult) -> u64 {
    result
        .series
        .iter()
        .flat_map(|s| s.classes.iter())
        .map(|c| c.count)
        .sum()
}

/// Appends a `mem{id_suffix}` row: the overlay's estimated resident
/// protocol-state bytes divided by its node count.  Not a timing — the
/// `work_items` column carries bytes per peer and the wall columns are
/// zero — but it rides in the same report so bytes-per-peer regresses
/// alongside the wall-clock trajectory.
fn push_mem_row(
    measurements: &mut Vec<Measurement>,
    overlay: &dyn Overlay,
    label: &str,
    id_suffix: &str,
) {
    let nodes = overlay.node_count().max(1) as u64;
    measurements.push(Measurement {
        id: format!("mem{id_suffix}"),
        detail: format!("estimated resident protocol state per peer, {nodes}-node {label} overlay"),
        work_items: overlay.estimated_state_bytes() / nodes,
        unit: "bytes/peer".to_owned(),
        wall_ms: 0.0,
        per_second: 0.0,
        availability: None,
    });
}

/// Times one overlay's build, exact-match (fig8d) and range (fig8e) query
/// drivers, appending three measurements (plus a bytes-per-peer `mem` row)
/// with the given id suffix.
fn time_overlay_group(
    measurements: &mut Vec<Measurement>,
    profile: &PerfProfile,
    label: &str,
    id_suffix: &str,
    seed: u64,
    build: impl FnOnce() -> Box<dyn Overlay>,
) {
    // 1. Overlay construction: N sequential joins through random contacts.
    let n = profile.build_n;
    let (build_m, mut overlay) = Measurement::timed(
        &format!("build{id_suffix}"),
        format!("{label} overlay build, {n} nodes"),
        "joins",
        || (n as u64, build()),
    );
    measurements.push(build_m);

    // Bulk-load the dataset the query drivers scan (not itself reported:
    // insert cost is dominated by the same routing path as exact queries).
    let plan = baton_workload::DatasetPlan {
        values_per_node: 1000,
        distribution: KeyDistribution::Uniform,
    }
    .scaled(profile.data_scale);
    let data = plan.generate(&mut SimRng::seeded(seed ^ 0xDA7A), n);
    runner::bulk_load(&mut *overlay, &data).expect("bulk load");

    // 2. Exact-match queries, fig8d shape: uniform keys, paper count.
    let workload = QueryWorkload {
        exact_queries: profile.queries,
        range_queries: profile.queries,
        distribution: KeyDistribution::Uniform,
        ..QueryWorkload::paper()
    };
    let exact = workload.exact(&mut SimRng::seeded(seed ^ 0xE5AC));
    let (exact_m, _) = Measurement::timed(
        &format!("exact_fig8d{id_suffix}"),
        format!(
            "{} uniform exact-match queries on the {n}-node {label} overlay",
            exact.len()
        ),
        "queries",
        || {
            let outcome = runner::run_queries(&mut *overlay, &exact).expect("exact queries");
            (outcome.exact_executed, ())
        },
    );
    measurements.push(exact_m);

    // 3. Range queries, fig8e shape: 0.1% selectivity, paper count.
    let ranges = workload.ranges(&mut SimRng::seeded(seed ^ 0x4A4E));
    let (range_m, _) = Measurement::timed(
        &format!("range_fig8e{id_suffix}"),
        format!(
            "{} range queries (0.1% selectivity) on the {n}-node {label} overlay",
            ranges.len()
        ),
        "queries",
        || {
            let outcome = runner::run_queries(&mut *overlay, &ranges).expect("range queries");
            (outcome.range_executed, ())
        },
    );
    measurements.push(range_m);

    // 4. Bytes per peer of the loaded overlay.
    push_mem_row(measurements, &*overlay, label, id_suffix);
}

/// Overlays that have a dedicated build/query timing group in [`run`].
/// Chord and the multiway tree appear only in the bytes-per-peer rows and
/// inside the scenario measurement (their figure timings are covered by the
/// Criterion benches); the `perf` binary warns when a selection names an
/// overlay outside this list.
pub const TIMED_OVERLAYS: [&str; 2] = ["BATON", "D3-Tree"];

/// Scenarios with a wall-clock measurement row in [`run`]: the original
/// open-loop template plus one representative of the phased/fault engine.
pub const TIMED_SCENARIOS: [&str; 2] = ["latency_under_churn", "regional_failure"];

/// Runs every perf measurement at the given profile.
///
/// The overlays measured — both the per-overlay build/query groups (see
/// [`TIMED_OVERLAYS`]) and the scenario's comparison list — come from
/// `baton_sim::standard_overlays()`, so the process-wide filter
/// (`baton_sim::set_overlay_filter`, the `perf --overlays` flag) is the
/// single selection channel and the scenario row always covers the same
/// overlay set as the timing groups.
pub fn run(profile: &PerfProfile) -> Vec<Measurement> {
    let seed = 2005;
    let mut measurements = Vec::new();
    let selected: Vec<&'static str> = baton_sim::standard_overlays()
        .iter()
        .map(|spec| spec.series)
        .collect();

    if selected.contains(&"BATON") {
        time_overlay_group(&mut measurements, profile, "BATON", "", seed, || {
            Box::new(crate::baton_overlay(profile.build_n, seed, 1000))
        });
    }
    if selected.contains(&"D3-Tree") {
        time_overlay_group(
            &mut measurements,
            profile,
            "D3-Tree",
            "_d3tree",
            seed,
            || Box::new(crate::d3tree_overlay(profile.build_n, seed)),
        );
    }

    // Bytes-per-peer rows for the overlays without a timing group, so every
    // overlay of the comparison reports its memory footprint at the same
    // size and bulk load as the timed ones.
    type MemOnlyBuild = fn(usize, u64) -> Box<dyn Overlay>;
    let mem_only: [(&str, &str, MemOnlyBuild); 2] = [
        ("Chord", "_chord", |n, seed| {
            Box::new(crate::chord_overlay(n, seed))
        }),
        ("Multiway tree", "_mtree", |n, seed| {
            Box::new(crate::mtree_overlay(n, seed))
        }),
    ];
    for (label, id_suffix, build) in mem_only {
        if !selected.contains(&label) {
            continue;
        }
        let n = profile.build_n;
        let mut overlay = build(n, seed);
        let plan = baton_workload::DatasetPlan {
            values_per_node: 1000,
            distribution: KeyDistribution::Uniform,
        }
        .scaled(profile.data_scale);
        let data = plan.generate(&mut SimRng::seeded(seed ^ 0xDA7A), n);
        runner::bulk_load(&mut *overlay, &data).expect("bulk load");
        push_mem_row(&mut measurements, &*overlay, label, id_suffix);
    }

    // Two time-domain scenarios (every selected overlay, open loop): the
    // original churn template and a representative of the phased registry
    // (regional topology + correlated fault plan).
    let scenario_profile = profile.scenario.clone();
    let scenario_n = *scenario_profile.network_sizes.last().unwrap_or(&0);
    for id in TIMED_SCENARIOS {
        let (scenario_m, _) = Measurement::timed(
            id,
            format!(
                "{id} scenario, N = {scenario_n}, overlays: {}",
                selected.join(", ")
            ),
            "ops",
            || {
                let result =
                    scenario::run_scenario(id, &scenario_profile).expect("registered scenario");
                (scenario_ops(&result), ())
            },
        );
        measurements.push(scenario_m);
    }

    // BATON-only scale group: the per-op cost curve, the million-peer
    // build/mem pair, and the threaded churn comparison.  The process-wide
    // selection is narrowed to BATON for the scenario-driven rows so they
    // run a single series.
    if selected.contains(&"BATON") {
        baton_sim::set_overlay_filter(&["BATON".to_owned()]).expect("BATON is registered");

        // Per-op cost-curve rows: at each N the overlay is bulk-built (so
        // construction cost does not mask the trend) and the churn scenario
        // runs once on one thread.  Near-flat ops/s across the curve is the
        // scaling claim these rows track.
        for &n in &profile.curve_ns {
            let suffix = n_suffix(n);
            let (curve_build_m, overlay) = Measurement::timed(
                &format!("curve_build_{suffix}"),
                format!("BATON bulk build (direct constructor), {n} nodes"),
                "nodes",
                || (n as u64, crate::baton_overlay_bulk(n, seed, 1000)),
            );
            measurements.push(curve_build_m);
            drop(overlay);

            let mut churn_profile = profile.curve_churn.clone();
            churn_profile.network_sizes = vec![n];
            let (curve_churn_m, _) = Measurement::timed(
                &format!("curve_churn_{suffix}"),
                format!(
                    "latency_under_churn scenario, N = {n}, BATON only, bulk-built, \
                     1 repetition on 1 thread"
                ),
                "ops",
                || {
                    baton_net::with_threads(1, || {
                        let result = scenario::run_scenario_with_build(
                            "latency_under_churn",
                            &churn_profile,
                            Some(scenario::BuildKind::Bulk),
                        )
                        .expect("registered scenario");
                        (scenario_ops(&result), ())
                    })
                },
            );
            measurements.push(curve_churn_m);
        }

        // Million-peer scale rows.  The build/mem pair shows a million peers
        // fit in RAM with the compact node layouts (built through the bulk
        // fast path — the join-by-join cost lives in the `build` row and the
        // Criterion fig8a bench); the churn pair runs the same scenario
        // profile single- and multi-threaded so the sharded engine's scaling
        // is tracked in the report.  Results are byte-identical across
        // thread counts (aggregation is in canonical unit order), so only
        // the wall clock may differ.
        let n = profile.scale_n;
        let (scale_build_m, overlay) = Measurement::timed(
            "scale_build",
            format!("BATON bulk build (direct constructor), {n} nodes (scale row)"),
            "nodes",
            || (n as u64, crate::baton_overlay_bulk(n, seed, 1000)),
        );
        measurements.push(scale_build_m);
        push_mem_row(&mut measurements, &overlay, "BATON", "_scale");
        drop(overlay);

        let churn_n = *profile.scale_churn.network_sizes.last().unwrap_or(&0);
        let reps = profile.scale_churn.repetitions;
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // On a single-hardware-thread host the multi-thread row would time
        // the same serial schedule twice, so only the t1 row is recorded;
        // the detail string carries the host parallelism either way so a
        // report reader can tell why.
        let mut thread_counts = vec![1];
        if profile.scale_threads > 1 && cores > 1 {
            thread_counts.push(profile.scale_threads);
        }
        for &threads in &thread_counts {
            let (churn_m, _) = Measurement::timed(
                &format!("scale_churn_t{threads}"),
                format!(
                    "latency_under_churn scenario, N = {churn_n}, BATON only, bulk-built, \
                     {reps} repetitions across {threads} thread(s), host parallelism {cores}"
                ),
                "ops",
                || {
                    baton_net::with_threads(threads, || {
                        let result = scenario::run_scenario_with_build(
                            "latency_under_churn",
                            &profile.scale_churn,
                            Some(scenario::BuildKind::Bulk),
                        )
                        .expect("registered scenario");
                        (scenario_ops(&result), ())
                    })
                },
            );
            measurements.push(churn_m);
        }
        // Availability-under-replication rows: the `regional_failure`
        // scenario at replication degrees k = 1..3.  The wall clock is
        // recorded like any other scenario row, but the headline column is
        // `availability` — the fraction of operations dispatched inside the
        // fault window that succeeded, rising from the unreplicated baseline
        // to near-1 once every key has a live replica.
        let avail_n = *profile.avail.network_sizes.last().unwrap_or(&0);
        for k in 1..=3usize {
            let (mut avail_m, run_outcome) = Measurement::timed(
                &format!("avail_k{k}"),
                format!(
                    "regional_failure scenario, N = {avail_n}, BATON only, bulk-built, \
                     replication k = {k}"
                ),
                "ops",
                || {
                    let result = scenario::run_scenario_with_options(
                        "regional_failure",
                        &profile.avail,
                        Some(scenario::BuildKind::Bulk),
                        Some(k),
                    )
                    .expect("registered scenario");
                    let series = &result.series[0];
                    (
                        scenario_ops(&result),
                        (series.availability, series.repair_wall),
                    )
                },
            );
            let (availability, repair_wall) = run_outcome;
            avail_m.availability = availability;
            // The wall clock of these rows is dominated by slow-path repair
            // execution, heaviest at k = 1 where every lost key needs a
            // routed re-insert; the detail carries that share so a long
            // avail_k1 wall time is not misread as a query-throughput
            // regression.
            let _ = write!(
                avail_m.detail,
                "; repair_wall_ms={:.1} ({:.0}% of wall)",
                repair_wall.as_secs_f64() * 1e3,
                100.0 * (repair_wall.as_secs_f64() * 1e3) / avail_m.wall_ms.max(1e-9)
            );
            measurements.push(avail_m);
        }

        // The serve rows: snapshot export, the lock-free read path at 1..4
        // threads, and the publish-staleness bound.
        measurements.extend(crate::serve::serve_rows(profile));

        // Restore the caller's overlay selection (the full list is
        // equivalent to no filter).
        let restore: Vec<String> = selected.iter().map(|s| (*s).to_owned()).collect();
        baton_sim::set_overlay_filter(&restore).expect("previously selected overlays");
    }

    measurements
}

/// One route-anatomy row of the report's `"observability"` section: mean
/// hops per exact-match query, split by link kind, for one overlay at one
/// network size.  Captured by the route recorder over the fig8d-shaped
/// workload — the structural counterpart of the wall-clock rows.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteAnatomy {
    /// Stable row identifier (`"anatomy_1k"`, `"anatomy_chord"`, …).
    pub id: String,
    /// Overlay series name (`"BATON"`, `"Chord"`, …).
    pub overlay: String,
    /// Network size the overlay was built at.
    pub nodes: usize,
    /// Exact-match operations the recorder sampled.
    pub ops: u64,
    /// Total hops across the sampled spans.
    pub hops: u64,
    /// Mean hops per sampled operation.
    pub mean_hops: f64,
    /// Mean hops per operation for every link kind that appeared, in
    /// canonical [`LinkKind::ALL`] order.
    pub by_kind: Vec<(&'static str, f64)>,
}

/// Bulk-loads `overlay`, traces the fig8d exact-match workload through the
/// route recorder and condenses the captured spans into one anatomy row.
fn anatomy_row(
    id: &str,
    label: &str,
    n: usize,
    profile: &PerfProfile,
    seed: u64,
    mut overlay: Box<dyn Overlay>,
) -> RouteAnatomy {
    eprintln!("perf: tracing route anatomy {id} ({label}, {n} nodes)");
    let plan = baton_workload::DatasetPlan {
        values_per_node: 1000,
        distribution: KeyDistribution::Uniform,
    }
    .scaled(profile.data_scale);
    let data = plan.generate(&mut SimRng::seeded(seed ^ 0xDA7A), n);
    runner::bulk_load(&mut *overlay, &data).expect("bulk load");
    let workload = QueryWorkload {
        exact_queries: profile.queries,
        range_queries: 0,
        distribution: KeyDistribution::Uniform,
        ..QueryWorkload::paper()
    };
    let exact = workload.exact(&mut SimRng::seeded(seed ^ 0xE5AC));
    // Capacity covers the whole workload so eviction never skews the means.
    overlay.set_trace(TraceConfig::new(exact.len().max(1)));
    runner::run_queries(&mut *overlay, &exact).expect("exact queries");
    let buffer = overlay.take_trace().expect("trace was installed");
    let ops = buffer.sampled();
    let counts = buffer.hop_counts_by_kind();
    let hops: u64 = counts.iter().sum();
    let per_op = |count: u64| count as f64 / ops.max(1) as f64;
    RouteAnatomy {
        id: id.to_owned(),
        overlay: label.to_owned(),
        nodes: n,
        ops,
        hops,
        mean_hops: per_op(hops),
        by_kind: LinkKind::ALL
            .into_iter()
            .filter(|kind| counts[kind.index()] > 0)
            .map(|kind| (kind.name(), per_op(counts[kind.index()])))
            .collect(),
    }
}

/// Captures the route-anatomy rows for the report's `"observability"`
/// section: BATON across the cost-curve sizes (bulk-built, so the rows
/// isolate routing structure), plus every other selected overlay at the
/// main build size.  Selection follows the same process-wide overlay
/// filter as [`run`].
pub fn route_anatomy(profile: &PerfProfile) -> Vec<RouteAnatomy> {
    let seed = 2005;
    let selected: Vec<&'static str> = baton_sim::standard_overlays()
        .iter()
        .map(|spec| spec.series)
        .collect();
    let mut rows = Vec::new();
    if selected.contains(&"BATON") {
        for &n in &profile.curve_ns {
            rows.push(anatomy_row(
                &format!("anatomy_{}", n_suffix(n)),
                "BATON",
                n,
                profile,
                seed,
                Box::new(crate::baton_overlay_bulk(n, seed, 1000)),
            ));
        }
    }
    type AnatomyBuild = fn(usize, u64) -> Box<dyn Overlay>;
    let baselines: [(&str, &str, AnatomyBuild); 3] = [
        ("Chord", "anatomy_chord", |n, seed| {
            Box::new(crate::chord_overlay(n, seed))
        }),
        ("Multiway tree", "anatomy_mtree", |n, seed| {
            Box::new(crate::mtree_overlay(n, seed))
        }),
        ("D3-Tree", "anatomy_d3tree", |n, seed| {
            Box::new(crate::d3tree_overlay(n, seed))
        }),
    ];
    for (label, id, build) in baselines {
        if !selected.contains(&label) {
            continue;
        }
        let n = profile.build_n;
        rows.push(anatomy_row(id, label, n, profile, seed, build(n, seed)));
    }
    rows
}

/// Renders a perf report as the `BENCH_perf.json` document.
///
/// Schema (`baton-perf/7` — version 7 added the serve rows
/// (`serve_snapshot_build`, `serve_exact_t{1,2,4}`, `serve_range_t1`,
/// `serve_snapshot_staleness`: the lock-free snapshot read path) and the
/// `repair_wall_ms` annotation in the `avail_k*` detail strings; version 6
/// added the `"observability"` section: its `"route_anatomy"` rows carry
/// the route recorder's mean hops per exact-match query split by link
/// kind, and the former top-level `"profiler"` array moved inside it as
/// `"scopes"`; version 5 added the `avail_k1`..`avail_k3` availability
/// rows and the optional per-measurement `"availability"` field; version 4
/// added the `curve_*` per-op cost-curve rows and switched the
/// `scale_build` row to the bulk constructor):
///
/// ```json
/// {
///   "schema": "baton-perf/7",
///   "profile": "full",
///   "measurements": [
///     {"id": "build", "detail": "…", "work_items": 10000,
///      "unit": "joins", "wall_ms": 1234.5, "per_second": 8100.2},
///     {"id": "avail_k2", "detail": "…", "work_items": 4000,
///      "unit": "ops", "wall_ms": 901.2, "per_second": 4438.5,
///      "availability": 0.9987}
///   ],
///   "observability": {
///     "route_anatomy": [
///       {"id": "anatomy_10k", "overlay": "BATON", "nodes": 10000,
///        "ops": 1000, "hops": 9120, "mean_hops": 9.12,
///        "by_kind": {"routing_table": 6.8, "child": 1.9, "adjacent": 0.42}}
///     ],
///     "scopes": [
///       {"name": "openloop.join", "count": 5000, "total_ns": 123456}
///     ]
///   }
/// }
/// ```
///
/// `"scopes"` appears only when the harness is compiled with the
/// `profiler` feature; the whole `"observability"` key is absent — not
/// empty — when there is nothing to report, so default documents carry no
/// placeholder keys.
pub fn render_json(
    profile: &PerfProfile,
    measurements: &[Measurement],
    anatomy: &[RouteAnatomy],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"baton-perf/7\",");
    let _ = writeln!(out, "  \"profile\": {},", json_string(profile.name));
    out.push_str("  \"measurements\": [");
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, "\"id\": {}, ", json_string(&m.id));
        let _ = write!(out, "\"detail\": {}, ", json_string(&m.detail));
        let _ = write!(out, "\"work_items\": {}, ", m.work_items);
        let _ = write!(out, "\"unit\": {}, ", json_string(&m.unit));
        let _ = write!(out, "\"wall_ms\": {:.3}, ", m.wall_ms);
        let _ = write!(out, "\"per_second\": {:.3}", m.per_second);
        if let Some(availability) = m.availability {
            let _ = write!(out, ", \"availability\": {availability:.4}");
        }
        out.push('}');
    }
    if !measurements.is_empty() {
        out.push_str("\n  ");
    }
    out.push(']');
    let scopes = if baton_net::profiler::enabled() {
        baton_net::profiler::snapshot()
    } else {
        Vec::new()
    };
    if !anatomy.is_empty() || !scopes.is_empty() {
        out.push_str(",\n  \"observability\": {");
        if !anatomy.is_empty() {
            out.push_str("\n    \"route_anatomy\": [");
            for (i, row) in anatomy.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n      {");
                let _ = write!(out, "\"id\": {}, ", json_string(&row.id));
                let _ = write!(out, "\"overlay\": {}, ", json_string(&row.overlay));
                let _ = write!(out, "\"nodes\": {}, ", row.nodes);
                let _ = write!(out, "\"ops\": {}, ", row.ops);
                let _ = write!(out, "\"hops\": {}, ", row.hops);
                let _ = write!(out, "\"mean_hops\": {:.3}, ", row.mean_hops);
                out.push_str("\"by_kind\": {");
                for (k, (kind, mean)) in row.by_kind.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {mean:.3}", json_string(kind));
                }
                out.push_str("}}");
            }
            out.push_str("\n    ]");
        }
        if !scopes.is_empty() {
            if !anatomy.is_empty() {
                out.push(',');
            }
            out.push_str("\n    \"scopes\": [");
            for (i, (name, count, total_ns)) in scopes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n      {");
                let _ = write!(out, "\"name\": {}, ", json_string(name));
                let _ = write!(out, "\"count\": {count}, ");
                let _ = write!(out, "\"total_ns\": {total_ns}");
                out.push('}');
            }
            out.push_str("\n    ]");
        }
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// Validates that `text` parses as a `baton-perf/7` document: well-formed
/// JSON (for the subset the renderer emits), the schema marker, at least
/// one measurement carrying every required field with finite numbers (and,
/// when present, an `availability` fraction in `[0, 1]`), and — when the
/// optional `"observability"` section is present — well-formed
/// `route_anatomy` rows (link-kind names from the closed [`LinkKind`]
/// enum) and `scopes` rows.  The pre-/6 top-level `"profiler"` key is
/// rejected with a pointer to its new home.
///
/// Returns the number of measurements, or a description of the first
/// problem.  Used by the `perf --check` mode so CI can gate on the artifact
/// without external tooling.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let value = json::parse(text)?;
    let root = value.as_object().ok_or("root is not an object")?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != "baton-perf/7" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    root.get("profile")
        .and_then(Json::as_str)
        .ok_or("missing \"profile\"")?;
    let measurements = root
        .get("measurements")
        .and_then(Json::as_array)
        .ok_or("missing \"measurements\"")?;
    if measurements.is_empty() {
        return Err("no measurements".into());
    }
    for (i, m) in measurements.iter().enumerate() {
        let m = m
            .as_object()
            .ok_or_else(|| format!("measurement {i} is not an object"))?;
        for key in ["id", "detail", "unit"] {
            m.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("measurement {i} missing string {key:?}"))?;
        }
        for key in ["work_items", "wall_ms", "per_second"] {
            let number = m
                .get(key)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("measurement {i} missing number {key:?}"))?;
            if !number.is_finite() || number < 0.0 {
                return Err(format!("measurement {i} has bad {key}: {number}"));
            }
        }
        if let Some(availability) = m.get("availability") {
            let number = availability
                .as_number()
                .ok_or_else(|| format!("measurement {i} has non-number \"availability\""))?;
            if !number.is_finite() || !(0.0..=1.0).contains(&number) {
                return Err(format!(
                    "measurement {i} has availability outside [0, 1]: {number}"
                ));
            }
        }
    }
    if root.get("profiler").is_some() {
        return Err(
            "legacy top-level \"profiler\" section (moved to \"observability\".\"scopes\" \
             in baton-perf/6)"
                .into(),
        );
    }
    if let Some(observability) = root.get("observability") {
        let observability = observability
            .as_object()
            .ok_or("\"observability\" is not an object")?;
        let mut saw_section = false;
        if let Some(rows) = observability.get("route_anatomy") {
            saw_section = true;
            let rows = rows.as_array().ok_or("\"route_anatomy\" is not an array")?;
            if rows.is_empty() {
                return Err("empty \"route_anatomy\" section (omit the key instead)".into());
            }
            for (i, row) in rows.iter().enumerate() {
                let row = row
                    .as_object()
                    .ok_or_else(|| format!("anatomy row {i} is not an object"))?;
                for key in ["id", "overlay"] {
                    row.get(key)
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("anatomy row {i} missing string {key:?}"))?;
                }
                for key in ["nodes", "ops", "hops", "mean_hops"] {
                    let number = row
                        .get(key)
                        .and_then(Json::as_number)
                        .ok_or_else(|| format!("anatomy row {i} missing number {key:?}"))?;
                    if !number.is_finite() || number < 0.0 {
                        return Err(format!("anatomy row {i} has bad {key}: {number}"));
                    }
                }
                let kinds = row
                    .get("by_kind")
                    .and_then(Json::as_object_pairs)
                    .ok_or_else(|| format!("anatomy row {i} missing object \"by_kind\""))?;
                for (kind, mean) in kinds {
                    if LinkKind::parse(kind).is_none() {
                        return Err(format!(
                            "anatomy row {i} has unknown link kind {kind:?} \
                             (outside the closed enum)"
                        ));
                    }
                    let mean = mean.as_number().ok_or_else(|| {
                        format!("anatomy row {i} has non-number mean for {kind:?}")
                    })?;
                    if !mean.is_finite() || mean < 0.0 {
                        return Err(format!("anatomy row {i} has bad mean for {kind:?}: {mean}"));
                    }
                }
            }
        }
        if let Some(scopes) = observability.get("scopes") {
            saw_section = true;
            let scopes = scopes.as_array().ok_or("\"scopes\" is not an array")?;
            if scopes.is_empty() {
                return Err("empty \"scopes\" section (omit the key instead)".into());
            }
            for (i, scope) in scopes.iter().enumerate() {
                let scope = scope
                    .as_object()
                    .ok_or_else(|| format!("scope row {i} is not an object"))?;
                scope
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("scope row {i} missing string \"name\""))?;
                for key in ["count", "total_ns"] {
                    let number = scope
                        .get(key)
                        .and_then(Json::as_number)
                        .ok_or_else(|| format!("scope row {i} missing number {key:?}"))?;
                    if !number.is_finite() || number < 0.0 {
                        return Err(format!("scope row {i} has bad {key}: {number}"));
                    }
                }
            }
        }
        if !saw_section {
            return Err("empty \"observability\" section (omit the key instead)".into());
        }
    }
    Ok(measurements.len())
}

pub use json::Json;

/// A minimal recursive-descent JSON parser, sufficient to validate the
/// documents this module emits (and any standards-compliant JSON without
/// exotic number forms).  Hand-rolled because the build environment has no
/// crates.io access for `serde_json`.
mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (parsed as `f64`).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Json>),
        /// An object, insertion-ordered.
        Object(Vec<(String, Json)>),
    }

    impl Json {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::String(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Json::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Array(items) => Some(items),
                _ => None,
            }
        }

        /// An object view with key lookup, if this is an object.
        pub fn as_object(&self) -> Option<ObjectView<'_>> {
            match self {
                Json::Object(pairs) => Some(ObjectView { pairs }),
                _ => None,
            }
        }

        /// The raw key/value pairs in insertion order, if this is an
        /// object — for validators that must check every key.
        pub fn as_object_pairs(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Object(pairs) => Some(pairs),
                _ => None,
            }
        }
    }

    /// Key-lookup view over an object's pairs.
    pub struct ObjectView<'a> {
        pairs: &'a [(String, Json)],
    }

    impl<'a> ObjectView<'a> {
        /// The value stored under `key`, if present.
        pub fn get(&self, key: &str) -> Option<&'a Json> {
            self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                *pos,
                bytes.get(*pos).map(|b| *b as char)
            ))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: Json,
    ) -> Result<Json, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {pos}", pos = *pos))
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            pairs.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Object(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = *pos;
                    *pos += 1;
                    while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                        *pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers both the full run and the filtered run: the overlay
    /// selection is process-global (`baton_sim::set_overlay_filter`), so
    /// splitting this into two tests would race within the test binary.
    #[test]
    fn smoke_profile_runs_filters_and_renders_valid_json() {
        let profile = PerfProfile::smoke();
        let measurements = run(&profile);
        let ids: Vec<&str> = measurements.iter().map(|m| m.id.as_str()).collect();
        // The multi-threaded churn row only exists on hosts with more than
        // one hardware thread (on a single core it would time the same
        // serial schedule twice).
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut expected = vec![
            "build",
            "exact_fig8d",
            "range_fig8e",
            "mem",
            "build_d3tree",
            "exact_fig8d_d3tree",
            "range_fig8e_d3tree",
            "mem_d3tree",
            "mem_chord",
            "mem_mtree",
            "latency_under_churn",
            "regional_failure",
            "curve_build_50",
            "curve_churn_50",
            "curve_build_100",
            "curve_churn_100",
            "curve_build_200",
            "curve_churn_200",
            "scale_build",
            "mem_scale",
            "scale_churn_t1",
        ];
        if cores > 1 {
            expected.push("scale_churn_t2");
        }
        expected.extend(["avail_k1", "avail_k2", "avail_k3"]);
        expected.push("serve_snapshot_build");
        expected.push("serve_exact_t1");
        if cores > 1 {
            expected.push("serve_exact_t2");
        }
        expected.extend(["serve_range_t1", "serve_snapshot_staleness"]);
        assert_eq!(ids, expected);
        for m in &measurements {
            assert!(m.work_items > 0, "{} did no work", m.id);
            assert!(m.wall_ms.is_finite() && m.wall_ms >= 0.0);
            if let Some(a) = m.availability {
                assert!((0.0..=1.0).contains(&a), "{}: availability {a}", m.id);
            }
        }
        // Route-anatomy rows ride in the same report's observability
        // section: BATON across the curve sizes, baselines at build_n.
        let anatomy = route_anatomy(&profile);
        let anatomy_ids: Vec<&str> = anatomy.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            anatomy_ids,
            vec![
                "anatomy_50",
                "anatomy_100",
                "anatomy_200",
                "anatomy_chord",
                "anatomy_mtree",
                "anatomy_d3tree"
            ]
        );
        for row in &anatomy {
            assert!(row.ops > 0 && row.hops > 0, "{} traced nothing", row.id);
            // The per-kind means partition the overall mean.
            let sum: f64 = row.by_kind.iter().map(|(_, mean)| mean).sum();
            assert!((sum - row.mean_hops).abs() < 1e-6, "{} kind split", row.id);
            for (kind, _) in &row.by_kind {
                assert!(LinkKind::parse(kind).is_some(), "open kind {kind}");
            }
        }
        let rendered = render_json(&profile, &measurements, &anatomy);
        assert!(rendered.contains("\"route_anatomy\": ["));
        assert_eq!(validate_json(&rendered), Ok(expected.len()));

        // The threaded churn rows record the host's parallelism so a report
        // reader can tell why the t2 row is or is not present.
        let t1 = measurements
            .iter()
            .find(|m| m.id == "scale_churn_t1")
            .expect("t1 row");
        assert!(t1.detail.contains(&format!("host parallelism {cores}")));

        // The thread-count comparison times the same deterministic work, so
        // when both rows exist they must report the same op count.
        if let Some(t2) = measurements.iter().find(|m| m.id == "scale_churn_t2") {
            assert_eq!(
                t1.work_items, t2.work_items,
                "thread count changed the scenario's op count"
            );
        }

        // Every availability row cites its slow-path repair wall time so a
        // long avail_k1 wall clock is not misread as query throughput.
        for m in measurements.iter().filter(|m| m.id.starts_with("avail_k")) {
            assert!(
                m.detail.contains("repair_wall_ms="),
                "{}: missing repair wall annotation",
                m.id
            );
        }

        // The serve exact rows did identical work at every thread count.
        let serve_exact: Vec<&Measurement> = measurements
            .iter()
            .filter(|m| m.id.starts_with("serve_exact_t"))
            .collect();
        for row in &serve_exact {
            assert_eq!(
                row.work_items, serve_exact[0].work_items,
                "thread count changed the serve workload"
            );
        }

        // Narrowed to one overlay, the timing groups, the scenario and the
        // scale rows follow the same selection — the scenario detail names
        // it, and the BATON-only scale group disappears.
        baton_sim::set_overlay_filter(&["D3-Tree".to_owned()]).expect("known overlay");
        let narrowed = run(&profile);
        baton_sim::clear_overlay_filter();
        let ids: Vec<&str> = narrowed.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "build_d3tree",
                "exact_fig8d_d3tree",
                "range_fig8e_d3tree",
                "mem_d3tree",
                "latency_under_churn",
                "regional_failure"
            ]
        );
        let scenario = narrowed.last().expect("scenario measurement");
        assert!(scenario.detail.contains("overlays: D3-Tree"));

        // The anatomy rows follow the same process-wide selection.
        baton_sim::set_overlay_filter(&["D3-Tree".to_owned()]).expect("known overlay");
        let narrowed_anatomy = route_anatomy(&profile);
        baton_sim::clear_overlay_filter();
        let ids: Vec<&str> = narrowed_anatomy.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["anatomy_d3tree"]);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json("{\"schema\": \"other/1\"}").is_err());
        // Previous schema versions are rejected — consumers must not mix
        // pre-`curve_*` (or older) reports into the trajectory.
        assert!(validate_json(
            "{\"schema\": \"baton-perf/2\", \"profile\": \"x\", \"measurements\": []}"
        )
        .is_err());
        assert!(validate_json(
            "{\"schema\": \"baton-perf/3\", \"profile\": \"x\", \"measurements\": []}"
        )
        .is_err());
        assert!(validate_json(
            "{\"schema\": \"baton-perf/4\", \"profile\": \"x\", \"measurements\": []}"
        )
        .is_err());
        assert!(validate_json(
            "{\"schema\": \"baton-perf/5\", \"profile\": \"x\", \"measurements\": []}"
        )
        .is_err());
        assert!(validate_json(
            "{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \"measurements\": []}"
        )
        .is_err());
        assert!(validate_json(
            "{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \"measurements\": []}"
        )
        .is_err());
        // Bad number in an otherwise complete measurement.
        let bad = "{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \"measurements\": [\
                   {\"id\": \"a\", \"detail\": \"d\", \"unit\": \"u\", \
                   \"work_items\": 1, \"wall_ms\": -5.0, \"per_second\": 0.0}]}";
        assert!(validate_json(bad).unwrap_err().contains("wall_ms"));
        // An availability outside [0, 1] is rejected.
        let bad_avail = "{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \"measurements\": [\
                         {\"id\": \"a\", \"detail\": \"d\", \"unit\": \"u\", \
                         \"work_items\": 1, \"wall_ms\": 5.0, \"per_second\": 0.2, \
                         \"availability\": 1.5}]}";
        assert!(validate_json(bad_avail)
            .unwrap_err()
            .contains("availability"));
    }

    #[test]
    fn validator_checks_the_observability_section() {
        let one_measurement = "{\"id\": \"a\", \"detail\": \"d\", \"unit\": \"u\", \
                               \"work_items\": 1, \"wall_ms\": 5.0, \"per_second\": 0.2}";
        let good = format!(
            "{{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \
             \"measurements\": [{one_measurement}], \"observability\": {{\
             \"route_anatomy\": [{{\"id\": \"anatomy_1k\", \"overlay\": \"BATON\", \
             \"nodes\": 1000, \"ops\": 50, \"hops\": 400, \"mean_hops\": 8.0, \
             \"by_kind\": {{\"routing_table\": 6.0, \"child\": 2.0}}}}], \
             \"scopes\": [\
             {{\"name\": \"openloop.join\", \"count\": 3, \"total_ns\": 900}}]}}}}"
        );
        assert_eq!(validate_json(&good), Ok(1));
        // The pre-/6 top-level section is rejected with a pointer to its
        // new home.
        let legacy = format!(
            "{{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \
             \"measurements\": [{one_measurement}], \"profiler\": [\
             {{\"name\": \"openloop.join\", \"count\": 3, \"total_ns\": 900}}]}}"
        );
        assert!(validate_json(&legacy)
            .unwrap_err()
            .contains("observability"));
        // An empty section must be omitted, not emitted.
        let empty = format!(
            "{{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \
             \"measurements\": [{one_measurement}], \"observability\": {{}}}}"
        );
        assert!(validate_json(&empty).unwrap_err().contains("observability"));
        // A link kind outside the closed enum is rejected.
        let bad_kind = format!(
            "{{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \
             \"measurements\": [{one_measurement}], \"observability\": {{\
             \"route_anatomy\": [{{\"id\": \"a\", \"overlay\": \"BATON\", \
             \"nodes\": 10, \"ops\": 5, \"hops\": 10, \"mean_hops\": 2.0, \
             \"by_kind\": {{\"warp\": 2.0}}}}]}}}}"
        );
        assert!(validate_json(&bad_kind).unwrap_err().contains("warp"));
        // A scope row missing its counters is rejected.
        let bad = format!(
            "{{\"schema\": \"baton-perf/7\", \"profile\": \"x\", \
             \"measurements\": [{one_measurement}], \"observability\": {{\"scopes\": [\
             {{\"name\": \"openloop.join\", \"count\": 3}}]}}}}"
        );
        assert!(validate_json(&bad).unwrap_err().contains("total_ns"));
    }

    #[test]
    fn json_parser_handles_the_usual_shapes() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\n\"y\""}"#;
        let value = Json::as_object(&super::json::parse(doc).unwrap())
            .and_then(|o| o.get("a").cloned())
            .unwrap();
        assert_eq!(value.as_array().unwrap()[2].as_number(), Some(-300.0));
        assert!(super::json::parse("[1, 2,]").is_err());
        assert!(super::json::parse("{\"a\" 1}").is_err());
        assert!(super::json::parse("[1] trailing").is_err());
    }

    /// With the `profiler` feature on, a scenario run populates the scope
    /// table, counters only grow, and the rendered report carries a
    /// `"profiler"` section the validator accepts.
    #[cfg(feature = "profiler")]
    #[test]
    fn profiler_feature_records_scopes_and_renders_them() {
        assert!(baton_net::profiler::enabled());
        baton_net::profiler::reset();
        let scenario_profile = Profile::smoke();
        scenario::run_scenario_with_build(
            "latency_under_churn",
            &scenario_profile,
            Some(scenario::BuildKind::Bulk),
        )
        .expect("registered scenario");
        let first = baton_net::profiler::snapshot();
        assert!(!first.is_empty(), "a scenario run must record scopes");
        assert!(first.iter().any(|(name, _, _)| *name == "scenario.build"));
        scenario::run_scenario_with_build(
            "latency_under_churn",
            &scenario_profile,
            Some(scenario::BuildKind::Bulk),
        )
        .expect("registered scenario");
        let second = baton_net::profiler::snapshot();
        for (name, count, total_ns) in &first {
            let later = second
                .iter()
                .find(|(n, _, _)| n == name)
                .unwrap_or_else(|| panic!("scope {name} disappeared"));
            assert!(later.1 >= *count, "count of {name} went backwards");
            assert!(later.2 >= *total_ns, "total_ns of {name} went backwards");
        }

        let profile = PerfProfile::smoke();
        let rendered = render_json(
            &profile,
            &[Measurement {
                id: "a".into(),
                detail: "d".into(),
                work_items: 1,
                unit: "u".into(),
                wall_ms: 1.0,
                per_second: 1.0,
                availability: None,
            }],
            &[],
        );
        assert!(rendered.contains("\"observability\": {"));
        assert!(rendered.contains("\"scopes\": ["));
        assert_eq!(validate_json(&rendered), Ok(1));
    }

    /// Without the feature, the scope table stays empty; with no anatomy
    /// rows either, the report has no `"observability"` key at all —
    /// default output carries no placeholder keys.
    #[cfg(not(feature = "profiler"))]
    #[test]
    fn disabled_profiler_leaves_the_report_untouched() {
        assert!(!baton_net::profiler::enabled());
        assert!(baton_net::profiler::snapshot().is_empty());
        let profile = PerfProfile::smoke();
        let rendered = render_json(
            &profile,
            &[Measurement {
                id: "a".into(),
                detail: "d".into(),
                work_items: 1,
                unit: "u".into(),
                wall_ms: 1.0,
                per_second: 1.0,
                availability: None,
            }],
            &[],
        );
        assert!(!rendered.contains("observability"));
        assert!(!rendered.contains("profiler"));
        assert_eq!(validate_json(&rendered), Ok(1));
    }

    /// Diagnostic probe, not part of any suite: profiles one bulk-built
    /// `latency_under_churn` repetition at `PROBE_N` nodes (default 30k)
    /// and prints the per-scope cost breakdown.  Run it manually with
    /// `PROBE_N=30000 cargo test -p baton-bench --features profiler \
    /// --release probe_churn_profile -- --ignored --nocapture`.
    #[cfg(feature = "profiler")]
    #[test]
    #[ignore = "diagnostic probe, run manually"]
    fn probe_churn_profile() {
        let n: usize = std::env::var("PROBE_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30_000);
        let churn_profile = Profile {
            network_sizes: vec![n],
            repetitions: 1,
            data_scale: 0.02,
            query_scale: 1.0,
            churn_ops: 100,
            seed: 2005,
        };
        baton_sim::set_overlay_filter(&["BATON".to_owned()]).expect("BATON is registered");
        baton_net::profiler::reset();
        let started = Instant::now();
        let result = scenario::run_scenario_with_build(
            "latency_under_churn",
            &churn_profile,
            Some(scenario::BuildKind::Bulk),
        )
        .expect("registered scenario");
        let wall = started.elapsed().as_secs_f64();
        baton_sim::clear_overlay_filter();
        let ops = scenario_ops(&result);
        eprintln!(
            "N = {n}: {ops} ops in {wall:.2}s ({:.0} ops/s)",
            ops as f64 / wall
        );
        for (name, count, total_ns) in baton_net::profiler::snapshot() {
            eprintln!(
                "  {name:<24} {count:>10} calls {:>12.1} ms",
                total_ns as f64 / 1e6
            );
        }
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(PerfProfile::by_name("FULL").unwrap().build_n, 10_000);
        assert_eq!(PerfProfile::by_name("smoke").unwrap().name, "smoke");
        assert!(PerfProfile::by_name("nope").is_none());
    }
}
