//! Serve-mode wall-clock rows: the lock-free snapshot read path under the
//! perf harness.
//!
//! The rows measure the concurrent serve front-end end to end —
//!
//! * `serve_snapshot_build` — exporting a [`baton_net::RoutingSnapshot`]
//!   from the loaded BATON overlay (the cost a structural commit pays
//!   before it can publish);
//! * `serve_exact_t{1,2,4}` — batched exact-match queries over the
//!   published snapshot from 1, 2 and 4 OS threads.  The work is
//!   bit-identical at every thread count (batches are derived from
//!   `(seed, batch index)` alone), so `work_items` and the checksum in the
//!   detail string must agree across the rows and only the wall clock may
//!   differ;
//! * `serve_range_t1` — range queries at the paper's 0.1% selectivity;
//! * `serve_snapshot_staleness` — churn-commit → rebuild → publish swap
//!   cycles, bounding how stale a served answer can be: a reader observes
//!   a new version after at most one rebuild+publish plus its own batch in
//!   flight.
//!
//! The same rows back both `perf` (they ride in `BENCH_perf.json`) and the
//! standalone `serve-bench` binary.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use baton_net::{Overlay, SimRng, SnapshotCell, SnapshotReader};
use baton_workload::{
    run_serve, runner, KeyDistribution, ServeConfig, ServeOutcome, DOMAIN_HIGH, DOMAIN_LOW,
};

use crate::perf::{Measurement, PerfProfile};

/// Range-query span at the paper's fig8e selectivity (0.1% of the domain).
pub fn range_span() -> u64 {
    (DOMAIN_HIGH - DOMAIN_LOW) / 1000
}

/// Serve worker counts measured at this profile on this host: always 1,
/// then 2 and 4 where both the profile's cap and the host's parallelism
/// allow (a thread count beyond the hardware would time oversubscription,
/// not the read path).
pub fn serve_thread_counts(profile: &PerfProfile) -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut counts = vec![1];
    for t in [2usize, 4] {
        if profile.serve_threads_max >= t && cores >= t {
            counts.push(t);
        }
    }
    counts
}

/// Builds and loads the BATON overlay the serve rows query: bulk-built at
/// the profile's main size, dataset placed through the direct path so
/// setup does not swamp the measurements.
pub fn served_overlay(profile: &PerfProfile, seed: u64) -> Box<dyn Overlay> {
    let n = profile.build_n;
    let mut overlay: Box<dyn Overlay> = Box::new(crate::baton_overlay_bulk(n, seed, 1000));
    let plan = baton_workload::DatasetPlan {
        values_per_node: 1000,
        distribution: KeyDistribution::Uniform,
    }
    .scaled(profile.data_scale);
    let data = plan.generate(&mut SimRng::seeded(seed ^ 0xDA7A), n);
    if !overlay.load_direct(&data) {
        runner::bulk_load(&mut *overlay, &data).expect("bulk load");
    }
    overlay
}

/// Appends the deterministic outcome fields to a serve row's detail: the
/// checksum and mean hops are thread-count invariant, so two rows that
/// disagree on them did different work.
fn annotate(row: &mut Measurement, outcome: &ServeOutcome) {
    let _ = write!(
        row.detail,
        "; matches {}, mean hops {:.2}, checksum {:016x}, {} batches, {} refreshes",
        outcome.counters.matches,
        outcome.counters.mean_hops(),
        outcome.counters.checksum,
        outcome.batches,
        outcome.refreshes
    );
}

/// Runs every serve row at the given profile.  The overlay is built once;
/// the same published snapshot serves all query rows, then the staleness
/// row churns the overlay and republishes.
pub fn serve_rows(profile: &PerfProfile) -> Vec<Measurement> {
    let seed = 2005u64;
    let mut rows = Vec::new();
    let n = profile.build_n;
    let mut overlay = served_overlay(profile, seed);

    let (build_row, snapshot) = Measurement::timed(
        "serve_snapshot_build",
        format!("RoutingSnapshot export from the loaded {n}-node BATON overlay"),
        "slots",
        || {
            let snapshot = overlay
                .routing_snapshot()
                .expect("BATON exports routing snapshots");
            (snapshot.slots() as u64, snapshot)
        },
    );
    rows.push(build_row);
    let cell = Arc::new(SnapshotCell::new(snapshot));

    for &threads in &serve_thread_counts(profile) {
        let config = ServeConfig::exact(profile.serve_queries, threads, seed ^ 0x5EE7);
        let (mut row, outcome) = Measurement::timed(
            &format!("serve_exact_t{threads}"),
            format!(
                "{} uniform exact queries over the published snapshot, batches of {}, \
                 {threads} thread(s)",
                config.queries, config.batch
            ),
            "queries",
            || {
                let outcome = run_serve(&cell, &config);
                (outcome.counters.queries, outcome)
            },
        );
        annotate(&mut row, &outcome);
        rows.push(row);
    }

    let config = ServeConfig::range(profile.serve_range_queries, 1, seed ^ 0x4A4E, range_span());
    let (mut range_row, outcome) = Measurement::timed(
        "serve_range_t1",
        format!(
            "{} range queries (0.1% selectivity) over the published snapshot, 1 thread",
            config.queries
        ),
        "queries",
        || {
            let outcome = run_serve(&cell, &config);
            (outcome.counters.queries, outcome)
        },
    );
    annotate(&mut range_row, &outcome);
    rows.push(range_row);

    let swaps = profile.serve_swaps;
    let (mut stale_row, visible) = Measurement::timed(
        "serve_snapshot_staleness",
        format!("{swaps} churn-commit, rebuild, publish, observe cycles on the {n}-node overlay"),
        "swaps",
        || {
            let mut reader = SnapshotReader::new(Arc::clone(&cell));
            reader.refresh();
            let mut visible = Duration::ZERO;
            for _ in 0..swaps {
                overlay.join_random().expect("join during staleness row");
                let committed = std::time::Instant::now();
                let rebuilt = overlay
                    .routing_snapshot()
                    .expect("BATON exports routing snapshots");
                let version = cell.publish(rebuilt);
                reader.refresh();
                assert_eq!(
                    reader.snapshot().version(),
                    version,
                    "published snapshot not visible to the reader"
                );
                visible += committed.elapsed();
            }
            (swaps as u64, visible)
        },
    );
    let _ = write!(
        stale_row.detail,
        "; mean commit-to-visible {:.3} ms (a served answer is at most one \
         rebuild+publish plus its in-flight batch stale)",
        visible.as_secs_f64() * 1e3 / swaps.max(1) as f64
    );
    rows.push(stale_row);

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_rows_cover_the_smoke_profile() {
        let profile = PerfProfile::smoke();
        let rows = serve_rows(&profile);
        let ids: Vec<&str> = rows.iter().map(|r| r.id.as_str()).collect();
        let mut expected = vec!["serve_snapshot_build".to_owned()];
        for t in serve_thread_counts(&profile) {
            expected.push(format!("serve_exact_t{t}"));
        }
        expected.push("serve_range_t1".to_owned());
        expected.push("serve_snapshot_staleness".to_owned());
        assert_eq!(ids, expected);
        for row in &rows {
            assert!(row.work_items > 0, "{} did no work", row.id);
        }
        // Every exact row did the same deterministic work regardless of
        // thread count: same query count and same checksum.
        let exact: Vec<&Measurement> = rows
            .iter()
            .filter(|r| r.id.starts_with("serve_exact_t"))
            .collect();
        for row in &exact {
            assert_eq!(row.work_items, profile.serve_queries);
            let tail = exact[0].detail.split(';').nth(1).expect("annotated");
            assert!(row.detail.ends_with(tail), "{} differs in outcome", row.id);
        }
    }
}
