//! # baton-bench — shared helpers for the Criterion benchmark harness
//!
//! Every table/figure of the paper's evaluation has a bench target under
//! `benches/` (one per sub-figure of Figure 8).  Each bench does two things:
//!
//! 1. **Reproduce the figure** — it runs the corresponding
//!    [`baton_sim::figures`] driver at a reduced profile and prints the same
//!    rows/series the paper plots, so `cargo bench` output doubles as the
//!    reproduction record (the full-scale run is available through the
//!    `reproduce` binary of `baton-sim`).
//! 2. **Benchmark the underlying operation** — it registers Criterion
//!    measurements of the core operations the figure is about (joins,
//!    searches, inserts, …) on a pre-built overlay, giving wall-clock
//!    regression tracking on top of the message-count reproduction.

use baton_chord::ChordSystem;
use baton_core::{BatonConfig, BatonSystem, LoadBalanceConfig};
use baton_d3tree::D3TreeSystem;
use baton_mtree::MTreeSystem;
use baton_sim::{figures, Profile};

pub mod perf;
pub mod serve;

/// Profile used when a bench reproduces its figure (kept small so that
/// `cargo bench` completes in minutes; use the `reproduce` binary for the
/// paper-scale run).
pub fn reproduction_profile() -> Profile {
    Profile::smoke()
}

/// Runs the figure driver for `id` at the reproduction profile and prints
/// its table to stdout.
pub fn print_figure(id: &str) {
    let profile = reproduction_profile();
    match figures::run_figure(id, &profile) {
        Some(result) => {
            println!("\n{}", result.to_table());
        }
        None => eprintln!("unknown figure id {id}"),
    }
}

/// Builds a BATON overlay of `n` nodes with load balancing sized for
/// `avg_load` items per node, for use inside Criterion measurement loops.
pub fn baton_overlay(n: usize, seed: u64, avg_load: usize) -> BatonSystem {
    let config = BatonConfig::default()
        .with_load_balance(LoadBalanceConfig::for_average_load(avg_load.max(4)));
    BatonSystem::build(config, seed, n).expect("overlay build")
}

/// Bulk-builds a BATON overlay of `n` nodes via the direct constructor —
/// same config as [`baton_overlay`], no join protocol, zero messages.  Used
/// by the perf harness's scale rows so construction cost does not swamp the
/// per-operation cost being measured.
pub fn baton_overlay_bulk(n: usize, seed: u64, avg_load: usize) -> BatonSystem {
    let config = BatonConfig::default()
        .with_load_balance(LoadBalanceConfig::for_average_load(avg_load.max(4)));
    BatonSystem::bulk_build(config, seed, n).expect("overlay bulk build")
}

/// Builds a D3-Tree overlay of `n` nodes, for the perf harness's baseline
/// build/query timings.
pub fn d3tree_overlay(n: usize, seed: u64) -> D3TreeSystem {
    D3TreeSystem::build(seed, n).expect("overlay build")
}

/// Builds a Chord ring of `n` nodes, for the perf harness's bytes-per-peer
/// accounting.
pub fn chord_overlay(n: usize, seed: u64) -> ChordSystem {
    ChordSystem::build(seed, n).expect("overlay build")
}

/// Builds a multiway-tree overlay of `n` nodes, for the perf harness's
/// bytes-per-peer accounting.
pub fn mtree_overlay(n: usize, seed: u64) -> MTreeSystem {
    MTreeSystem::build(seed, n).expect("overlay build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_small_overlays() {
        let overlay = baton_overlay(12, 3, 10);
        assert_eq!(overlay.node_count(), 12);
        baton_core::validate(&overlay).unwrap();
    }

    #[test]
    fn bulk_helper_builds_a_valid_overlay() {
        let overlay = baton_overlay_bulk(12, 3, 10);
        assert_eq!(overlay.node_count(), 12);
        baton_core::validate(&overlay).unwrap();
    }

    #[test]
    fn reproduction_profile_is_small() {
        let profile = reproduction_profile();
        assert!(profile.network_sizes.iter().all(|n| *n <= 1000));
    }
}
