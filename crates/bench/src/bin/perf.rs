//! Wall-clock perf harness: times the simulator's hot paths and writes the
//! machine-readable `BENCH_perf.json` report.
//!
//! ```text
//! perf [--profile full|smoke] [--overlays NAME[,NAME...]] [--threads N]
//!      [--out PATH] [--check PATH]
//! ```
//!
//! * `--profile full` (default): paper scale — a 10,000-node BATON build,
//!   1000 exact-match (fig8d) and 1000 range (fig8e) queries, the
//!   `latency_under_churn` and `regional_failure` scenarios at N = 1000,
//!   plus the million-node `scale_build`/`mem_scale` rows, the
//!   single- vs multi-threaded `scale_churn_t*` comparison at N = 100,000,
//!   the `avail_k1`..`avail_k3` availability-under-replication rows
//!   (`regional_failure` at N = 10,000, replication degrees 1–3), and the
//!   serve rows (`serve_snapshot_build`, `serve_exact_t{1,2,4}`,
//!   `serve_range_t1`, `serve_snapshot_staleness`: the lock-free snapshot
//!   read path; see the `serve-bench` binary for the standalone driver).
//! * `--profile smoke`: a reduced run for CI (seconds), including reduced
//!   scale rows.
//! * `--out PATH`: where to write the JSON report (default
//!   `BENCH_perf.json` in the current directory).
//! * `--overlays NAME[,NAME...]`: time only the named overlays
//!   (case-insensitive series names, e.g. `--overlays D3-Tree`); the
//!   scenario measurement is narrowed to the same list.
//! * `--threads N`: worker threads the scenario engine fans repetitions
//!   across (default: available parallelism).  The `scale_churn_t*` rows
//!   pin their own thread counts and are unaffected.
//! * `--check PATH`: validate an existing report against the
//!   `baton-perf/7` schema instead of running measurements (exit code 1 on
//!   schema violations) — the CI gate for the uploaded artifact.
//!
//! After the timed rows the harness traces the fig8d exact-match workload
//! through the route recorder and emits the `"observability"` section:
//! mean hops per query split by link kind (BATON across the cost-curve
//! sizes, each baseline at the main build size).

use std::process::ExitCode;

use baton_bench::perf::{render_json, route_anatomy, run, validate_json, PerfProfile};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut profile = PerfProfile::full();
    let mut out_path = String::from("BENCH_perf.json");
    let mut check_path: Option<String> = None;
    let mut overlays: Vec<String> = Vec::new();
    let mut threads = baton_net::default_threads();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--overlays" => match args.next() {
                Some(list) => overlays.extend(
                    list.split(',')
                        .map(|name| name.trim().to_owned())
                        .filter(|name| !name.is_empty()),
                ),
                None => {
                    eprintln!("--overlays needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--profile" => {
                let Some(name) = args.next() else {
                    eprintln!("--profile needs a value (full|smoke)");
                    return ExitCode::FAILURE;
                };
                match PerfProfile::by_name(&name) {
                    Some(p) => profile = p,
                    None => {
                        eprintln!("unknown profile {name:?} (expected full|smoke)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => {
                    eprintln!("--check needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match baton_sim::parse_threads(args.next()) {
                Ok(n) => threads = n,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: perf [--profile full|smoke] [--overlays NAME[,NAME...]] \
                     [--threads N (default: available parallelism)] \
                     [--out PATH] [--check PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_json(&text) {
            Ok(count) => {
                println!("{path}: valid baton-perf/7 report with {count} measurement(s)");
                ExitCode::SUCCESS
            }
            Err(problem) => {
                eprintln!("{path}: invalid report: {problem}");
                ExitCode::FAILURE
            }
        };
    }

    // One selection channel: the process-wide filter narrows both the
    // per-overlay timing groups and the scenario's overlay list.
    if let Err(msg) = baton_sim::set_overlay_filter(&overlays) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    for name in &overlays {
        if !baton_bench::perf::TIMED_OVERLAYS
            .iter()
            .any(|t| t.eq_ignore_ascii_case(name))
        {
            eprintln!(
                "perf: note: {name} has no build/query timing group (only {:?} do); \
                 it is timed inside the scenario measurement only",
                baton_bench::perf::TIMED_OVERLAYS
            );
        }
    }

    baton_net::set_threads(threads);
    eprintln!("perf: profile {}, {threads} worker thread(s)", profile.name);
    let measurements = run(&profile);
    for m in &measurements {
        eprintln!(
            "  {:<20} {:>12.1} ms   {:>12.1} {}/s   ({})",
            m.id, m.wall_ms, m.per_second, m.unit, m.detail
        );
    }
    let anatomy = route_anatomy(&profile);
    for row in &anatomy {
        let kinds: Vec<String> = row
            .by_kind
            .iter()
            .map(|(kind, mean)| format!("{kind} {mean:.2}"))
            .collect();
        eprintln!(
            "  {:<20} {:>12} ops   {:>8.2} hops/op   ({})",
            row.id,
            row.ops,
            row.mean_hops,
            kinds.join(", ")
        );
    }
    let rendered = render_json(&profile, &measurements, &anatomy);
    if let Err(error) = std::fs::write(&out_path, &rendered) {
        eprintln!("cannot write {out_path}: {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("perf: wrote {out_path}");
    ExitCode::SUCCESS
}
