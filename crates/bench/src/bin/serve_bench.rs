//! Standalone driver for the concurrent serve front-end: batched exact and
//! range queries over a published [`baton_net::RoutingSnapshot`] from a
//! fixed number of OS threads.
//!
//! ```text
//! serve-bench [--profile full|smoke] [--threads N] [--mix uniform|zipf]
//!             [--batch N] [--queries N] [--sample-ms N]
//! ```
//!
//! Output contract, relied on by CI: **stdout carries only deterministic
//! fields** — query counts, matches, total hops, the order-independent
//! checksum, batch counts.  Those are derived from `(seed, batch index)`
//! alone, so two runs that differ only in `--threads` must print
//! byte-identical stdout (CI literally `diff`s them).  Wall-clock figures
//! (queries/second, elapsed, snapshot build time, sampler output) go to
//! stderr.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use baton_bench::perf::PerfProfile;
use baton_bench::serve::{range_span, served_overlay};
use baton_net::SnapshotCell;
use baton_workload::{run_serve, KeyDistribution, ServeConfig, ServeOutcome};

/// One deterministic stdout row.  Everything printed here must be
/// invariant under `--threads`.
fn print_row(kind: &str, outcome: &ServeOutcome) {
    println!(
        "{kind} queries={} matches={} hops={} slots_swept={} rejected={} \
         checksum={:016x} batches={}",
        outcome.counters.queries,
        outcome.counters.matches,
        outcome.counters.hops,
        outcome.counters.slots_swept,
        outcome.counters.rejected,
        outcome.counters.checksum,
        outcome.batches,
    );
}

/// The wall-clock half of a row, kept off stdout.
fn report_wall(kind: &str, outcome: &ServeOutcome) {
    eprintln!(
        "serve-bench: {kind}: {:.1} ms, {:.0} queries/s, {} snapshot refreshes",
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.per_second(),
        outcome.refreshes,
    );
    for sample in &outcome.samples {
        eprintln!(
            "serve-bench: {kind} sample at {} us: {} executed, {:.0} q/s, {} in flight",
            sample.at.as_micros(),
            sample.executed,
            sample.ops_per_sec,
            sample.in_flight,
        );
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut profile = PerfProfile::full();
    let mut threads = 1usize;
    let mut distribution = KeyDistribution::Uniform;
    let mut batch: Option<usize> = None;
    let mut queries: Option<u64> = None;
    let mut sample_every: Option<Duration> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                let Some(name) = args.next() else {
                    eprintln!("--profile needs a value (full|smoke)");
                    return ExitCode::FAILURE;
                };
                match PerfProfile::by_name(&name) {
                    Some(p) => profile = p,
                    None => {
                        eprintln!("unknown profile {name:?} (expected full|smoke)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--threads" => match baton_sim::parse_threads(args.next()) {
                Ok(n) => threads = n,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            },
            "--mix" => {
                let Some(name) = args.next() else {
                    eprintln!("--mix needs a value (uniform|zipf)");
                    return ExitCode::FAILURE;
                };
                distribution = match name.as_str() {
                    "uniform" => KeyDistribution::Uniform,
                    "zipf" => KeyDistribution::Zipf { theta: 1.0 },
                    other => {
                        eprintln!("unknown mix {other:?} (expected uniform|zipf)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--batch" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => batch = Some(n),
                _ => {
                    eprintln!("--batch needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--queries" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => queries = Some(n),
                _ => {
                    eprintln!("--queries needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--sample-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => sample_every = Some(Duration::from_millis(n)),
                _ => {
                    eprintln!("--sample-ms needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve-bench [--profile full|smoke] [--threads N] \
                     [--mix uniform|zipf] [--batch N] [--queries N] [--sample-ms N]\n\
                     stdout is deterministic (thread-count invariant); wall-clock \
                     figures go to stderr"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let seed = 2005u64;
    let mix = match distribution {
        KeyDistribution::Uniform => "uniform",
        KeyDistribution::Zipf { .. } => "zipf",
    };
    eprintln!(
        "serve-bench: profile {}, {threads} thread(s), {mix} mix, building \
         {}-node BATON overlay",
        profile.name, profile.build_n
    );
    let started = Instant::now();
    let overlay = served_overlay(&profile, seed);
    let snapshot = overlay
        .routing_snapshot()
        .expect("BATON exports routing snapshots");
    eprintln!(
        "serve-bench: overlay + snapshot ready in {:.1} ms ({} slots, ~{} bytes)",
        started.elapsed().as_secs_f64() * 1e3,
        snapshot.slots(),
        snapshot.estimated_bytes(),
    );
    let cell = Arc::new(SnapshotCell::new(snapshot));

    // Header row: run shape, minus anything wall-clock or thread-dependent.
    let exact_queries = queries.unwrap_or(profile.serve_queries);
    let range_queries = queries
        .map(|q| q.div_ceil(10))
        .unwrap_or(profile.serve_range_queries);
    let mut exact = ServeConfig::exact(exact_queries, threads, seed ^ 0x5EE7);
    exact.distribution = distribution;
    if let Some(b) = batch {
        exact.batch = b;
    }
    exact.sample_every = sample_every;
    println!(
        "serve-bench profile={} mix={mix} batch={} span={}",
        profile.name,
        exact.batch,
        range_span()
    );

    let outcome = run_serve(&cell, &exact);
    print_row("exact", &outcome);
    report_wall("exact", &outcome);

    let mut range = ServeConfig::range(range_queries, threads, seed ^ 0x4A4E, range_span());
    range.distribution = distribution;
    if let Some(b) = batch {
        range.batch = b;
    }
    range.sample_every = sample_every;
    let outcome = run_serve(&cell, &range);
    print_row("range", &outcome);
    report_wall("range", &outcome);

    ExitCode::SUCCESS
}
