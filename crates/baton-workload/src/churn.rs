//! Churn workloads: join / leave / failure sequences.
//!
//! The paper evaluates join and leave costs by growing networks to different
//! sizes and, for Figure 8(i), by applying *concurrent* batches of joins and
//! leaves of increasing intensity ("network dynamics").

use rand::Rng;

/// One churn event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new node joins through a random contact.
    Join,
    /// A random node departs gracefully.
    Leave,
    /// A random node fails abruptly.
    Fail,
}

/// Parameters of a churn sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnWorkload {
    /// Total number of events.
    pub events: usize,
    /// Fraction of events that are joins (the rest split between leaves and
    /// failures).
    pub join_fraction: f64,
    /// Fraction of the non-join events that are failures rather than
    /// graceful departures.
    pub failure_fraction: f64,
}

impl Default for ChurnWorkload {
    fn default() -> Self {
        Self {
            events: 100,
            join_fraction: 0.5,
            failure_fraction: 0.0,
        }
    }
}

impl ChurnWorkload {
    /// Generates the event sequence.
    pub fn events<R: Rng>(&self, rng: &mut R) -> Vec<ChurnEvent> {
        (0..self.events)
            .map(|_| {
                if rng.gen::<f64>() < self.join_fraction {
                    ChurnEvent::Join
                } else if rng.gen::<f64>() < self.failure_fraction {
                    ChurnEvent::Fail
                } else {
                    ChurnEvent::Leave
                }
            })
            .collect()
    }

    /// A balanced join/leave mix of `events` events (no failures), the shape
    /// used by the network-dynamics experiment.
    pub fn balanced(events: usize) -> Self {
        Self {
            events,
            join_fraction: 0.5,
            failure_fraction: 0.0,
        }
    }
}

/// A batch of concurrent churn for the network-dynamics experiment
/// (Figure 8(i)): `concurrency` joins and leaves that are considered to be
/// in flight at the same time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConcurrentChurnBatch {
    /// Number of concurrent joins.
    pub joins: usize,
    /// Number of concurrent leaves.
    pub leaves: usize,
}

impl ConcurrentChurnBatch {
    /// A batch with an equal number of joins and leaves summing to
    /// `concurrency` (odd totals round the extra event to a join).
    pub fn of_intensity(concurrency: usize) -> Self {
        Self {
            joins: concurrency.div_ceil(2),
            leaves: concurrency / 2,
        }
    }

    /// Total number of concurrent operations.
    pub fn total(&self) -> usize {
        self.joins + self.leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_net::SimRng;

    #[test]
    fn event_mix_roughly_matches_fractions() {
        let workload = ChurnWorkload {
            events: 10_000,
            join_fraction: 0.7,
            failure_fraction: 0.5,
        };
        let mut rng = SimRng::seeded(1);
        let events = workload.events(&mut rng);
        let joins = events.iter().filter(|e| **e == ChurnEvent::Join).count();
        let fails = events.iter().filter(|e| **e == ChurnEvent::Fail).count();
        let leaves = events.iter().filter(|e| **e == ChurnEvent::Leave).count();
        assert_eq!(joins + fails + leaves, 10_000);
        assert!((6_500..7_500).contains(&joins), "joins = {joins}");
        assert!(fails > 1_000 && leaves > 1_000);
    }

    #[test]
    fn balanced_has_no_failures() {
        let workload = ChurnWorkload::balanced(1000);
        let mut rng = SimRng::seeded(2);
        let events = workload.events(&mut rng);
        assert!(events.iter().all(|e| *e != ChurnEvent::Fail));
    }

    #[test]
    fn concurrent_batch_intensity_splits_evenly() {
        let batch = ConcurrentChurnBatch::of_intensity(10);
        assert_eq!(batch.joins, 5);
        assert_eq!(batch.leaves, 5);
        assert_eq!(batch.total(), 10);
        let odd = ConcurrentChurnBatch::of_intensity(7);
        assert_eq!(odd.joins, 4);
        assert_eq!(odd.leaves, 3);
    }

    #[test]
    fn events_are_deterministic_per_seed() {
        let w = ChurnWorkload::default();
        assert_eq!(
            w.events(&mut SimRng::seeded(5)),
            w.events(&mut SimRng::seeded(5))
        );
    }
}
