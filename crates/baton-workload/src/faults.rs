//! Seeded fault plans: timed fault events injected into a phased open-loop
//! run.
//!
//! The per-class `fail` arrival rate of an [`OpRates`](crate::OpRates) kills
//! *random* peers at Poisson times; a [`FaultPlan`] instead schedules
//! *specific* faults at specific virtual instants — most importantly the
//! correlated regional failure ("kill half of region 2 at t = 20s") the
//! paper's independent-failure model cannot express.  Victims are selected
//! deterministically from the run's seeded RNG, so a fault plan is as
//! reproducible as the workload around it.

use baton_net::{PeerId, RegionMap, RepairPolicy, SimRng, SimTime};

/// What a [`FaultEvent`] does when it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Kill `count` peers chosen uniformly from the live set.
    Kill {
        /// Number of peers to fail.
        count: usize,
    },
    /// Kill a fraction of one region's live peers — the correlated failure:
    /// every victim shares the region, as when a data centre or its uplink
    /// goes down.
    KillRegion {
        /// The region assignment (shared with the latency topology).
        map: RegionMap,
        /// The region that fails.
        region: u32,
        /// Fraction of the region's live peers to kill, in `[0, 1]`.
        fraction: f64,
    },
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Virtual instant the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Chooses the victims of this fault from `peers` (the overlay's sorted
    /// live list), using `rng` for the seeded selection.
    pub fn select_victims(&self, peers: &[PeerId], rng: &mut SimRng) -> Vec<PeerId> {
        match self.kind {
            FaultKind::Kill { count } => pick(peers.to_vec(), count, rng),
            FaultKind::KillRegion {
                map,
                region,
                fraction,
            } => {
                let pool: Vec<PeerId> = peers
                    .iter()
                    .copied()
                    .filter(|p| map.region_of(*p) == region)
                    .collect();
                let count = (pool.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize;
                pick(pool, count, rng)
            }
        }
    }
}

/// Partial Fisher–Yates: the first `count` elements of a seeded shuffle.
fn pick(mut pool: Vec<PeerId>, count: usize, rng: &mut SimRng) -> Vec<PeerId> {
    let count = count.min(pool.len());
    for i in 0..count {
        let j = i + rng.index(pool.len() - i);
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// A schedule of fault events, kept sorted by firing time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// When set, fault kills are *deferred*: the victim is marked dead and
    /// repaired only after the policy's delay, opening a measurable
    /// availability window.  `None` (the default, and every legacy plan)
    /// keeps the immediate kill-and-recover behaviour.
    repair: Option<RepairPolicy>,
}

impl FaultPlan {
    /// The empty plan: no injected faults (every legacy scenario).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan firing the given events (sorted by time on construction).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self {
            events,
            repair: None,
        }
    }

    /// Switches the plan to deferred kills repaired per `policy`.
    pub fn with_repair(mut self, policy: RepairPolicy) -> Self {
        self.repair = Some(policy);
        self
    }

    /// The repair policy, if the plan defers its kills.
    pub fn repair(&self) -> Option<&RepairPolicy> {
        self.repair.as_ref()
    }

    /// The events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(n: u32) -> Vec<PeerId> {
        (0..n).map(PeerId).collect()
    }

    #[test]
    fn kill_selects_exactly_count_distinct_peers() {
        let pool = peers(50);
        let event = FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::Kill { count: 10 },
        };
        let mut rng = SimRng::seeded(3);
        let victims = event.select_victims(&pool, &mut rng);
        assert_eq!(victims.len(), 10);
        let mut unique = victims.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 10, "victims must be distinct");
        // Deterministic per seed.
        let again = event.select_victims(&pool, &mut SimRng::seeded(3));
        assert_eq!(victims, again);
        // Requesting more than exist kills everyone, no panic.
        let all = event.select_victims(&peers(4), &mut SimRng::seeded(3));
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn kill_region_only_touches_the_named_region() {
        let map = RegionMap::new(4, 0xFA17);
        let pool = peers(200);
        let region = 2u32;
        let in_region = pool.iter().filter(|p| map.region_of(**p) == region).count();
        let event = FaultEvent {
            at: SimTime::from_secs(20),
            kind: FaultKind::KillRegion {
                map,
                region,
                fraction: 0.5,
            },
        };
        let victims = event.select_victims(&pool, &mut SimRng::seeded(9));
        assert_eq!(victims.len(), (in_region as f64 * 0.5).round() as usize);
        assert!(victims.iter().all(|v| map.region_of(*v) == region));
        // A full-fraction kill takes the whole region and nothing more.
        let total = FaultEvent {
            at: SimTime::from_secs(20),
            kind: FaultKind::KillRegion {
                map,
                region,
                fraction: 1.0,
            },
        };
        let all = total.select_victims(&pool, &mut SimRng::seeded(9));
        assert_eq!(all.len(), in_region);
    }

    #[test]
    fn plans_sort_their_events_and_report_emptiness() {
        assert!(FaultPlan::none().is_empty());
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: SimTime::from_secs(30),
                kind: FaultKind::Kill { count: 1 },
            },
            FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::Kill { count: 2 },
            },
        ]);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].at, SimTime::from_secs(10));
        assert_eq!(plan.events()[1].at, SimTime::from_secs(30));
    }
}
