//! Phased open-loop workloads: the declarative core of every time-domain
//! scenario.
//!
//! A [`PhasedWorkload`] is a sequence of [`Phase`]s — each a span of virtual
//! time with its own per-class arrival rates ([`OpRates`]) and its own key
//! distribution ([`KeyMix`]) — plus optional [`KeyWindow`] overrides that
//! re-aim the data keys for a timed slice of the run (the generalisation of
//! the old flash-crowd `HotBurst`).  The schedule is a piecewise-constant
//! Poisson process per class: rates can step at phase boundaries while each
//! class keeps one continuous seeded arrival stream, so a single-phase
//! workload reproduces the legacy single-rate schedule *bit for bit* (the
//! fixture guarantee the scenario engine is pinned to).

use baton_net::{SimRng, SimTime};

use crate::keys::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};
use crate::openloop::{ArrivalEvent, OpClass};

/// Arrival rates of every operation class, per virtual second.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpRates {
    /// Exact-match queries per virtual second.
    pub search: f64,
    /// Range queries per virtual second.
    pub range: f64,
    /// Inserts per virtual second.
    pub insert: f64,
    /// Joins per virtual second.
    pub join: f64,
    /// Graceful departures per virtual second.
    pub leave: f64,
    /// Abrupt failures per virtual second.
    pub fail: f64,
}

impl OpRates {
    /// No arrivals at all (the rates of a quiet phase).
    pub fn zero() -> Self {
        Self::default()
    }

    /// Query-only rates: `search` exact queries per second, nothing else.
    pub fn queries(search: f64) -> Self {
        Self {
            search,
            ..Self::zero()
        }
    }

    /// Rate of `class` arrivals, per virtual second.
    pub fn rate(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Search => self.search,
            OpClass::Range => self.range,
            OpClass::Insert => self.insert,
            OpClass::Join => self.join,
            OpClass::Leave => self.leave,
            OpClass::Fail => self.fail,
        }
    }
}

/// The key distribution of one phase (or one override window): where
/// searches, range-query lower bounds and inserts aim their keys.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyMix {
    /// Uniform over the paper's whole `[1, 10^9)` domain.
    Uniform,
    /// Uniform over a hot sub-slice `[low, high)` of the domain — the
    /// flash-crowd ingredient.
    HotSlice {
        /// Inclusive lower bound of the hot slice.
        low: u64,
        /// Exclusive upper bound of the hot slice.
        high: u64,
    },
    /// Zipfian over the whole domain with exponent `theta`; larger `theta`
    /// concentrates more of the traffic on fewer keys.
    Zipf {
        /// Zipf exponent.
        theta: f64,
    },
}

impl KeyMix {
    /// Builds the deterministic generator this mix draws keys from.
    pub fn generator(&self) -> KeyGenerator {
        match self {
            KeyMix::Uniform => KeyGenerator::paper(KeyDistribution::Uniform),
            KeyMix::HotSlice { low, high } => {
                KeyGenerator::new(*low, *high, KeyDistribution::Uniform)
            }
            KeyMix::Zipf { theta } => KeyGenerator::paper(KeyDistribution::Zipf { theta: *theta }),
        }
    }

    /// Short human-readable description for catalogs and titles.
    pub fn describe(&self) -> String {
        match self {
            KeyMix::Uniform => "uniform".to_owned(),
            KeyMix::HotSlice { low, high } => {
                let share = (*high - *low) as f64 / (DOMAIN_HIGH - DOMAIN_LOW) as f64 * 100.0;
                format!("hot {share:.1}% slice")
            }
            KeyMix::Zipf { theta } => format!("zipf(θ = {theta})"),
        }
    }
}

/// One span of a phased workload: how long it lasts, what arrives during it
/// and where the data keys aim.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phase {
    /// Virtual length of the phase.
    pub duration: SimTime,
    /// Per-class arrival rates during the phase.
    pub rates: OpRates,
    /// Key distribution of searches, ranges and inserts that arrive during
    /// the phase (unless a [`KeyWindow`] override covers the arrival).
    pub keys: KeyMix,
}

/// A timed key-distribution override: while the window covers an arrival,
/// its keys are drawn from `keys` instead of the covering phase's mix.
///
/// This is the generalisation of the old `HotBurst`: a burst is a window
/// whose mix is a [`KeyMix::HotSlice`], but a window can equally impose a
/// Zipf mix or re-aim traffic at any slice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KeyWindow {
    /// Virtual instant the override starts (inclusive).
    pub from: SimTime,
    /// Virtual instant it ends (exclusive).
    pub until: SimTime,
    /// The mix in force while the window covers an arrival.
    pub keys: KeyMix,
}

impl KeyWindow {
    /// `true` while the window is active at `at`.
    pub fn covers(&self, at: SimTime) -> bool {
        at >= self.from && at < self.until
    }
}

/// A declarative open-loop workload: phases, key-window overrides and the
/// range-query shape.
#[derive(Clone, Debug, PartialEq)]
pub struct PhasedWorkload {
    /// The phases, in order; the run is their concatenation.
    pub phases: Vec<Phase>,
    /// Timed key overrides (checked in order; the first covering window
    /// wins).
    pub windows: Vec<KeyWindow>,
    /// Width of each range query as a fraction of the domain.
    pub range_selectivity: f64,
}

impl PhasedWorkload {
    /// A single-phase workload with the given duration, rates and key mix —
    /// the shape of every pre-phase scenario.
    pub fn single(duration: SimTime, rates: OpRates, keys: KeyMix) -> Self {
        Self {
            phases: vec![Phase {
                duration,
                rates,
                keys,
            }],
            windows: Vec::new(),
            range_selectivity: 0.001,
        }
    }

    /// A query-only single phase: `search` exact queries per second over
    /// uniform keys.
    pub fn queries_only(duration: SimTime, search: f64) -> Self {
        Self::single(duration, OpRates::queries(search), KeyMix::Uniform)
    }

    /// The churn-under-load shape: `search` queries per second while
    /// `churn_per_minute` (a fraction of the `n` starting peers, e.g. `0.1`
    /// for 10%) joins *and* the same fraction leaves per virtual minute.
    pub fn churn_under_load(
        duration: SimTime,
        search: f64,
        n: usize,
        churn_per_minute: f64,
    ) -> Self {
        let churn_rate = (n as f64 * churn_per_minute) / 2.0 / 60.0;
        Self::single(
            duration,
            OpRates {
                join: churn_rate,
                leave: churn_rate,
                ..OpRates::queries(search)
            },
            KeyMix::Uniform,
        )
    }

    /// Total virtual length of the run (the phases' concatenation).
    pub fn duration(&self) -> SimTime {
        self.phases
            .iter()
            .fold(SimTime::ZERO, |acc, p| acc + p.duration)
    }

    /// Draws the merged arrival schedule: one piecewise-constant-rate
    /// Poisson process per class (each class's exponential hazard stream
    /// carries across phase boundaries), merged and sorted by arrival time.
    ///
    /// Deterministic for a given `rng` seed; ties are broken by class order.
    /// For a single-phase workload this reduces — draw for draw and
    /// float-op for float-op — to the legacy constant-rate schedule.
    pub fn schedule(&self, rng: &mut SimRng) -> Vec<ArrivalEvent> {
        let duration = self.duration();
        // Phase ends in whole-run seconds, for the hazard arithmetic.
        let ends: Vec<f64> = {
            let mut acc = SimTime::ZERO;
            self.phases
                .iter()
                .map(|p| {
                    acc += p.duration;
                    acc.as_secs_f64()
                })
                .collect()
        };
        let mut events = Vec::new();
        for class in OpClass::ALL {
            // A class with no arrivals anywhere draws nothing at all — the
            // legacy scheduler's `rate <= 0` skip, phase-wise.
            if self.phases.iter().all(|p| p.rates.rate(class) <= 0.0) {
                continue;
            }
            let mut class_rng = rng.derive(class as u64 + 1);
            let mut t = 0.0f64; // seconds since the start of the run
            let mut phase = 0usize;
            'arrivals: loop {
                let u = class_rng.uniform_f64().max(f64::MIN_POSITIVE);
                let mut excess = -u.ln();
                // Spend the hazard across phases at each phase's rate.
                loop {
                    if phase >= self.phases.len() {
                        break 'arrivals;
                    }
                    let rate = self.phases[phase].rates.rate(class);
                    let end = ends[phase];
                    if rate > 0.0 {
                        let dt = excess / rate;
                        if t + dt < end {
                            t += dt;
                            break;
                        }
                        excess -= (end - t) * rate;
                    }
                    t = end;
                    phase += 1;
                }
                let at = SimTime::from_micros((t * 1_000_000.0) as u64);
                if at >= duration {
                    break;
                }
                events.push(ArrivalEvent { at, class });
            }
        }
        events.sort_by_key(|e| (e.at, e.class));
        events
    }

    /// Precomputes every key generator the run needs (Zipf CDF tables are
    /// built once here, not per draw).
    pub fn resolve_keys(&self) -> ResolvedKeys {
        let mut acc = SimTime::ZERO;
        let phase_gens = self
            .phases
            .iter()
            .map(|p| {
                acc += p.duration;
                (acc, p.keys.generator())
            })
            .collect();
        let window_gens = self
            .windows
            .iter()
            .map(|w| (*w, w.keys.generator()))
            .collect();
        ResolvedKeys {
            phase_gens,
            window_gens,
        }
    }
}

/// The workload's key generators, resolved per phase and per window.
#[derive(Clone, Debug)]
pub struct ResolvedKeys {
    /// `(phase end, generator)` per phase, in order.
    phase_gens: Vec<(SimTime, KeyGenerator)>,
    /// `(window, generator)` per override, in order.
    window_gens: Vec<(KeyWindow, KeyGenerator)>,
}

impl ResolvedKeys {
    /// Draws the data key of an operation arriving at `at`: from the first
    /// covering override window, else from the covering phase's mix (the
    /// last phase also serves arrivals at or past the run's end).
    pub fn draw(&self, at: SimTime, rng: &mut SimRng) -> u64 {
        for (window, generator) in &self.window_gens {
            if window.covers(at) {
                return generator.next_key(rng);
            }
        }
        let generator = self
            .phase_gens
            .iter()
            .find(|(end, _)| at < *end)
            .map(|(_, g)| g)
            .unwrap_or(&self.phase_gens.last().expect("workload has phases").1);
        generator.next_key(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_phase_schedule_is_sorted_deterministic_and_rate_proportional() {
        let workload = PhasedWorkload::single(
            SimTime::from_secs(100),
            OpRates {
                search: 10.0,
                insert: 2.0,
                join: 1.0,
                leave: 1.0,
                ..OpRates::zero()
            },
            KeyMix::Uniform,
        );
        let events = workload.schedule(&mut SimRng::seeded(1));
        let again = workload.schedule(&mut SimRng::seeded(1));
        assert_eq!(events, again);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "unsorted");
        assert!(events.iter().all(|e| e.at < workload.duration()));
        let count = |c: OpClass| events.iter().filter(|e| e.class == c).count();
        let searches = count(OpClass::Search);
        let inserts = count(OpClass::Insert);
        assert_eq!(count(OpClass::Range), 0);
        assert_eq!(count(OpClass::Fail), 0);
        // ~1000 searches, ~200 inserts: Poisson noise stays well inside 2x.
        assert!((500..2000).contains(&searches), "searches = {searches}");
        assert!((100..400).contains(&inserts), "inserts = {inserts}");
    }

    #[test]
    fn phase_rates_step_at_the_boundary() {
        // 0–50s at 2/s, 50–100s at 20/s: the second half must carry roughly
        // ten times the arrivals of the first.
        let workload = PhasedWorkload {
            phases: vec![
                Phase {
                    duration: SimTime::from_secs(50),
                    rates: OpRates::queries(2.0),
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: SimTime::from_secs(50),
                    rates: OpRates::queries(20.0),
                    keys: KeyMix::Uniform,
                },
            ],
            windows: Vec::new(),
            range_selectivity: 0.001,
        };
        let events = workload.schedule(&mut SimRng::seeded(7));
        let split = SimTime::from_secs(50);
        let first = events.iter().filter(|e| e.at < split).count();
        let second = events.iter().filter(|e| e.at >= split).count();
        assert!((50..200).contains(&first), "first half = {first}");
        assert!((700..1300).contains(&second), "second half = {second}");
        assert_eq!(workload.duration(), SimTime::from_secs(100));
    }

    #[test]
    fn a_quiet_phase_suspends_arrivals_without_breaking_the_stream() {
        let workload = PhasedWorkload {
            phases: vec![
                Phase {
                    duration: SimTime::from_secs(30),
                    rates: OpRates::queries(10.0),
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: SimTime::from_secs(30),
                    rates: OpRates::zero(),
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: SimTime::from_secs(30),
                    rates: OpRates::queries(10.0),
                    keys: KeyMix::Uniform,
                },
            ],
            windows: Vec::new(),
            range_selectivity: 0.001,
        };
        let events = workload.schedule(&mut SimRng::seeded(3));
        assert!(!events.is_empty());
        assert!(!events
            .iter()
            .any(|e| e.at >= SimTime::from_secs(30) && e.at < SimTime::from_secs(60)));
        assert!(events.iter().any(|e| e.at >= SimTime::from_secs(60)));
    }

    #[test]
    fn key_windows_override_the_phase_mix() {
        let workload = PhasedWorkload {
            phases: vec![Phase {
                duration: SimTime::from_secs(60),
                rates: OpRates::queries(1.0),
                keys: KeyMix::Uniform,
            }],
            windows: vec![KeyWindow {
                from: SimTime::from_secs(20),
                until: SimTime::from_secs(40),
                keys: KeyMix::HotSlice {
                    low: 100,
                    high: 200,
                },
            }],
            range_selectivity: 0.001,
        };
        let resolved = workload.resolve_keys();
        let mut rng = SimRng::seeded(5);
        for _ in 0..200 {
            let hot = resolved.draw(SimTime::from_secs(30), &mut rng);
            assert!((100..200).contains(&hot), "hot draw {hot} outside slice");
        }
        // Outside the window the phase mix rules: uniform over the domain
        // will leave the tiny slice almost immediately.
        let outside = (0..200)
            .map(|_| resolved.draw(SimTime::from_secs(50), &mut rng))
            .filter(|k| (100..200).contains(k))
            .count();
        assert!(outside < 5, "{outside}/200 cold draws hit the hot slice");
    }

    #[test]
    fn zipf_phases_skew_harder_with_theta() {
        let gen_for = |theta: f64| KeyMix::Zipf { theta }.generator();
        let first_percent = DOMAIN_LOW + (DOMAIN_HIGH - DOMAIN_LOW) / 100;
        let mut rng = SimRng::seeded(11);
        let hits = |g: &KeyGenerator, rng: &mut SimRng| {
            (0..2000)
                .map(|_| g.next_key(rng))
                .filter(|k| *k < first_percent)
                .count()
        };
        let soft = hits(&gen_for(0.6), &mut rng);
        let hard = hits(&gen_for(1.2), &mut rng);
        assert!(
            hard > soft,
            "zipf(1.2) should out-skew zipf(0.6): {hard} vs {soft}"
        );
    }

    #[test]
    fn describe_names_every_mix() {
        assert_eq!(KeyMix::Uniform.describe(), "uniform");
        let slice = KeyMix::HotSlice {
            low: DOMAIN_LOW,
            high: DOMAIN_LOW + (DOMAIN_HIGH - DOMAIN_LOW) / 100,
        };
        assert_eq!(slice.describe(), "hot 1.0% slice");
        assert_eq!(KeyMix::Zipf { theta: 1.0 }.describe(), "zipf(θ = 1)");
    }

    #[test]
    fn churn_under_load_rates_match_the_fraction() {
        let w = PhasedWorkload::churn_under_load(SimTime::from_secs(60), 5.0, 1200, 0.1);
        // 10% of 1200 peers per minute, split between joins and leaves:
        // 1 join/s and 1 leave/s.
        let rates = w.phases[0].rates;
        assert!((rates.join - 1.0).abs() < 1e-9);
        assert!((rates.leave - 1.0).abs() < 1e-9);
        assert_eq!(rates.search, 5.0);
        assert_eq!(rates.fail, 0.0);
    }
}
