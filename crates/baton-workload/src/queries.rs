//! Query workloads: exact-match and range queries.
//!
//! The paper executes 1000 exact queries and 1000 range queries per
//! configuration and reports the average message cost (§V).

use rand::Rng;

use crate::keys::{KeyDistribution, KeyGenerator};

/// One query of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Exact-match query for a key.
    Exact(u64),
    /// Range query `[low, high)`.
    Range {
        /// Inclusive lower bound.
        low: u64,
        /// Exclusive upper bound.
        high: u64,
    },
}

/// Parameters of a query workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryWorkload {
    /// Number of exact-match queries.
    pub exact_queries: usize,
    /// Number of range queries.
    pub range_queries: usize,
    /// Width of each range query as a fraction of the domain (the paper does
    /// not state its selectivity; 0.1% of the domain covers a handful of
    /// nodes at the evaluated scales, matching the `O(log N + X)` regime).
    pub range_selectivity: f64,
    /// Distribution the query points are drawn from.
    pub distribution: KeyDistribution,
}

impl Default for QueryWorkload {
    fn default() -> Self {
        Self {
            exact_queries: 1000,
            range_queries: 1000,
            range_selectivity: 0.001,
            distribution: KeyDistribution::Uniform,
        }
    }
}

impl QueryWorkload {
    /// The paper's workload: 1000 exact + 1000 range queries, uniform.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Scales the number of queries by `factor` (used by the fast test /
    /// bench profiles), keeping at least one query of each kind.
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            exact_queries: ((self.exact_queries as f64 * factor) as usize).max(1),
            range_queries: ((self.range_queries as f64 * factor) as usize).max(1),
            ..self
        }
    }

    /// Generates the exact-match queries.
    pub fn exact<R: Rng>(&self, rng: &mut R) -> Vec<Query> {
        let generator = KeyGenerator::paper(self.distribution);
        (0..self.exact_queries)
            .map(|_| Query::Exact(generator.next_key(rng)))
            .collect()
    }

    /// Generates the range queries.
    pub fn ranges<R: Rng>(&self, rng: &mut R) -> Vec<Query> {
        let generator = KeyGenerator::paper(self.distribution);
        let domain_width = crate::keys::DOMAIN_HIGH - crate::keys::DOMAIN_LOW;
        let width = ((domain_width as f64 * self.range_selectivity) as u64).max(1);
        (0..self.range_queries)
            .map(|_| {
                let low = generator.next_key(rng);
                let high = low.saturating_add(width).min(crate::keys::DOMAIN_HIGH);
                Query::Range { low, high }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_net::SimRng;

    #[test]
    fn paper_workload_sizes() {
        let w = QueryWorkload::paper();
        assert_eq!(w.exact_queries, 1000);
        assert_eq!(w.range_queries, 1000);
        let mut rng = SimRng::seeded(1);
        assert_eq!(w.exact(&mut rng).len(), 1000);
        assert_eq!(w.ranges(&mut rng).len(), 1000);
    }

    #[test]
    fn scaled_keeps_at_least_one_query() {
        let w = QueryWorkload::paper().scaled(0.0001);
        assert_eq!(w.exact_queries, 1);
        assert_eq!(w.range_queries, 1);
        let half = QueryWorkload::paper().scaled(0.5);
        assert_eq!(half.exact_queries, 500);
    }

    #[test]
    fn range_queries_have_the_requested_width() {
        let w = QueryWorkload {
            range_queries: 100,
            range_selectivity: 0.01,
            ..QueryWorkload::paper()
        };
        let mut rng = SimRng::seeded(2);
        for q in w.ranges(&mut rng) {
            match q {
                Query::Range { low, high } => {
                    assert!(high > low);
                    assert!(high - low <= (crate::keys::DOMAIN_HIGH / 100) + 1);
                }
                Query::Exact(_) => panic!("expected ranges"),
            }
        }
    }

    #[test]
    fn queries_are_deterministic_per_seed() {
        let w = QueryWorkload::paper();
        assert_eq!(
            w.exact(&mut SimRng::seeded(3)),
            w.exact(&mut SimRng::seeded(3))
        );
        assert_ne!(
            w.exact(&mut SimRng::seeded(3)),
            w.exact(&mut SimRng::seeded(4))
        );
    }
}
