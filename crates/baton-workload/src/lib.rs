//! # baton-workload — workload generators for the BATON evaluation
//!
//! Deterministic generators for everything the paper's experiments need:
//!
//! * [`keys`] — uniform and Zipfian(θ) key streams over `[1, 10^9)`;
//! * [`dataset`] — the `1000 × N` bulk loads (uniform and skewed), with a
//!   scale factor for fast test/bench profiles;
//! * [`queries`] — the 1000-exact + 1000-range query workloads;
//! * [`churn`] — join/leave/failure sequences and the concurrent-churn
//!   batches of the network-dynamics experiment.
//!
//! All generators are driven by an explicit [`rand::Rng`] (normally a
//! seeded `baton_net::SimRng`) so every experiment repetition is
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod dataset;
pub mod keys;
pub mod queries;

pub use churn::{ChurnEvent, ChurnWorkload, ConcurrentChurnBatch};
pub use dataset::DatasetPlan;
pub use keys::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};
pub use queries::{Query, QueryWorkload};
