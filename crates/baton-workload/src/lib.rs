//! # baton-workload — workload generators for the BATON evaluation
//!
//! Deterministic generators for everything the paper's experiments need:
//!
//! * [`keys`] — uniform and Zipfian(θ) key streams over `[1, 10^9)`;
//! * [`dataset`] — the `1000 × N` bulk loads (uniform and skewed), with a
//!   scale factor for fast test/bench profiles;
//! * [`queries`] — the 1000-exact + 1000-range query workloads;
//! * [`churn`] — join/leave/failure sequences and the concurrent-churn
//!   batches of the network-dynamics experiment;
//! * [`runner`] — generic executors that apply the generated workloads to
//!   **any** [`baton_net::Overlay`] implementation and aggregate the
//!   message costs;
//! * [`phases`] — declarative phased workloads: per-class arrival rates and
//!   key distributions (uniform / hot-slice / Zipf) that step at phase
//!   boundaries, plus timed key-window overrides;
//! * [`faults`] — seeded fault plans: timed targeted fault events, including
//!   correlated regional kills ("fail half of region 2 at t = 20s");
//! * [`openloop`] — open-loop execution over virtual time: the phased
//!   schedule's searches, inserts, joins, leaves, failures and fault events
//!   interleave in the discrete-event engine, yielding latency percentiles
//!   and throughput under churn.
//!
//! All generators are driven by an explicit [`rand::Rng`] (normally a
//! seeded `baton_net::SimRng`) so every experiment repetition is
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod dataset;
pub mod faults;
pub mod keys;
pub mod openloop;
pub mod phases;
pub mod queries;
pub mod runner;
pub mod serve;

pub use churn::{ChurnEvent, ChurnWorkload, ConcurrentChurnBatch};
pub use dataset::DatasetPlan;
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use keys::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};
pub use openloop::{
    run_phased, run_phased_with_metrics, ArrivalEvent, LatencySummary, MetricsConfig,
    MetricsSample, OpClass, OpenLoopOutcome,
};
pub use phases::{KeyMix, KeyWindow, OpRates, Phase, PhasedWorkload, ResolvedKeys};
pub use queries::{Query, QueryWorkload};
pub use runner::{bulk_load, run_churn, run_queries, ChurnOutcome, LoadOutcome, QueryOutcome};
pub use serve::{run_serve, ServeConfig, ServeOutcome};
