//! Open-loop workloads: operations arrive on a virtual-time schedule and
//! *interleave*, instead of executing back-to-back.
//!
//! The closed-loop runners in [`crate::runner`] issue the next operation the
//! moment the previous one finishes — fine for counting messages, useless
//! for latency or throughput, because the system is never under load.  An
//! open-loop workload draws per-class Poisson arrival processes (searches,
//! inserts, joins, leaves, failures) from a seeded RNG, merges them into one
//! schedule, and dispatches each operation at its arrival time by advancing
//! the overlay's arrival clock ([`baton_net::Overlay::advance_to`]).  Two
//! operations whose hop chains overlap in virtual time then genuinely
//! overlap: each accumulates only its own chain's latency.
//!
//! This is the substrate for churn-under-load questions the paper cannot
//! ask, e.g. *what is search latency while 10% of the peers join or leave
//! per virtual minute?*

use std::collections::BTreeMap;

use baton_net::{Overlay, OverlayError, OverlayResult, SimRng, SimTime};

use crate::keys::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};

/// The class of an operation in an open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// Exact-match query for a random key.
    Search,
    /// Range query for a random interval.
    Range,
    /// Insert of a random key/value pair.
    Insert,
    /// A new node joins through a random contact.
    Join,
    /// A random node departs gracefully.
    Leave,
    /// A random node fails abruptly (degrades to a graceful leave on
    /// overlays without failure support, like [`crate::runner::run_churn`]).
    Fail,
}

impl OpClass {
    /// Every class, in scheduling order.
    pub const ALL: [OpClass; 6] = [
        OpClass::Search,
        OpClass::Range,
        OpClass::Insert,
        OpClass::Join,
        OpClass::Leave,
        OpClass::Fail,
    ];

    /// Stable name used to group latency samples in reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Search => "search",
            OpClass::Range => "range",
            OpClass::Insert => "insert",
            OpClass::Join => "join",
            OpClass::Leave => "leave",
            OpClass::Fail => "fail",
        }
    }
}

/// One scheduled arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Virtual arrival time of the operation.
    pub at: SimTime,
    /// What arrives.
    pub class: OpClass,
}

/// A burst window during which the key distribution of searches, range
/// queries and inserts collapses onto a hot slice of the domain — the
/// flash-crowd ingredient of an open-loop workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotBurst {
    /// Virtual instant the burst starts (inclusive).
    pub from: SimTime,
    /// Virtual instant the burst ends (exclusive).
    pub until: SimTime,
    /// Inclusive lower bound of the hot key slice.
    pub low: u64,
    /// Exclusive upper bound of the hot key slice.
    pub high: u64,
}

impl HotBurst {
    /// `true` while the burst is active at `at`.
    pub fn covers(&self, at: SimTime) -> bool {
        at >= self.from && at < self.until
    }
}

/// An open-loop workload: per-class Poisson arrival rates over a virtual
/// duration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoopWorkload {
    /// Virtual length of the run.
    pub duration: SimTime,
    /// Exact-match queries per virtual second.
    pub search_rate: f64,
    /// Range queries per virtual second.
    pub range_rate: f64,
    /// Inserts per virtual second.
    pub insert_rate: f64,
    /// Joins per virtual second.
    pub join_rate: f64,
    /// Graceful departures per virtual second.
    pub leave_rate: f64,
    /// Abrupt failures per virtual second.
    pub fail_rate: f64,
    /// Distribution query and insert keys are drawn from.
    pub distribution: KeyDistribution,
    /// Width of each range query as a fraction of the domain.
    pub range_selectivity: f64,
    /// Optional flash-crowd window: while active, search/range/insert keys
    /// are drawn uniformly from the burst's hot slice instead of
    /// `distribution`.
    pub hot_burst: Option<HotBurst>,
}

impl OpenLoopWorkload {
    /// A query-only workload: `search_rate` exact queries per virtual
    /// second, nothing else.
    pub fn queries_only(duration: SimTime, search_rate: f64) -> Self {
        Self {
            duration,
            search_rate,
            range_rate: 0.0,
            insert_rate: 0.0,
            join_rate: 0.0,
            leave_rate: 0.0,
            fail_rate: 0.0,
            distribution: KeyDistribution::Uniform,
            range_selectivity: 0.001,
            hot_burst: None,
        }
    }

    /// The churn-under-load scenario: `search_rate` queries per second while
    /// `churn_per_minute` (a fraction of the `n` starting peers, e.g. `0.1`
    /// for 10%) joins *and* the same fraction leaves per virtual minute —
    /// node count stays stationary in expectation while the routing state
    /// churns underneath the queries.
    pub fn churn_under_load(
        duration: SimTime,
        search_rate: f64,
        n: usize,
        churn_per_minute: f64,
    ) -> Self {
        let churn_rate = (n as f64 * churn_per_minute) / 2.0 / 60.0;
        Self {
            join_rate: churn_rate,
            leave_rate: churn_rate,
            ..Self::queries_only(duration, search_rate)
        }
    }

    /// Rate of `class` arrivals, per virtual second.
    pub fn rate(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Search => self.search_rate,
            OpClass::Range => self.range_rate,
            OpClass::Insert => self.insert_rate,
            OpClass::Join => self.join_rate,
            OpClass::Leave => self.leave_rate,
            OpClass::Fail => self.fail_rate,
        }
    }

    /// Draws the merged arrival schedule: one Poisson process per class
    /// (exponential inter-arrival times at the class rate), merged and
    /// sorted by arrival time.
    ///
    /// Deterministic for a given `rng` seed; ties are broken by class order
    /// so the schedule is stable across platforms.
    pub fn schedule(&self, rng: &mut SimRng) -> Vec<ArrivalEvent> {
        let mut events = Vec::new();
        for class in OpClass::ALL {
            let rate = self.rate(class);
            if rate <= 0.0 {
                continue;
            }
            let mut class_rng = rng.derive(class as u64 + 1);
            let mut t = 0.0f64; // seconds
            loop {
                let u = class_rng.uniform_f64().max(f64::MIN_POSITIVE);
                t += -u.ln() / rate;
                let at = SimTime::from_micros((t * 1_000_000.0) as u64);
                if at >= self.duration {
                    break;
                }
                events.push(ArrivalEvent { at, class });
            }
        }
        events.sort_by_key(|e| (e.at, e.class));
        events
    }
}

/// Latency percentiles over one class of operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of completed operations the summary covers.
    pub count: usize,
    /// Mean virtual latency.
    pub mean: SimTime,
    /// Median (50th percentile).
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Slowest completed operation.
    pub max: SimTime,
}

impl LatencySummary {
    /// Summarises a set of latency samples; `None` if empty.
    ///
    /// Percentile convention matches
    /// [`Histogram::percentile`](baton_net::Histogram::percentile): the
    /// smallest sample such that at least `q · count` samples are ≤ it.
    pub fn from_samples(samples: &[SimTime]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let at = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        let total: u64 = sorted.iter().map(|t| t.as_micros()).sum();
        Some(Self {
            count: n,
            mean: SimTime::from_micros(total / n as u64),
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: sorted[n - 1],
        })
    }
}

/// Aggregate outcome of an open-loop run.
#[derive(Clone, Debug, Default)]
pub struct OpenLoopOutcome {
    /// Operations executed, per class.
    pub executed: BTreeMap<&'static str, u64>,
    /// Operations skipped, per class (node floor reached, or a class the
    /// overlay does not support, e.g. range queries on a DHT) — kept per
    /// [`OpClass`] so "Chord skipped ranges" stays distinguishable from
    /// "node-floor skipped leaves" in reports.
    pub skipped: BTreeMap<&'static str, u64>,
    /// Virtual instant the overlay had reached when the run ended — the
    /// denominator of [`throughput`](Self::throughput).
    pub makespan: SimTime,
    /// Completed-operation latency samples, per class, in completion order.
    pub latencies: BTreeMap<&'static str, Vec<SimTime>>,
    /// Total messages across all executed operations.
    pub messages: u64,
}

impl OpenLoopOutcome {
    /// Total operations executed across all classes.
    pub fn total_executed(&self) -> u64 {
        self.executed.values().sum()
    }

    /// Total operations skipped across all classes.
    pub fn total_skipped(&self) -> u64 {
        self.skipped.values().sum()
    }

    /// Operations of one class that were skipped.
    pub fn skipped_of(&self, class: OpClass) -> u64 {
        self.skipped.get(class.name()).copied().unwrap_or(0)
    }

    /// Completed operations per virtual second (0.0 for a zero makespan,
    /// i.e. under the count-only zero-latency model).
    pub fn throughput(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_executed() as f64 / self.makespan.as_secs_f64()
        }
    }

    /// Latency percentiles of one class; `None` if nothing completed.
    pub fn summary(&self, class: OpClass) -> Option<LatencySummary> {
        self.latencies
            .get(class.name())
            .and_then(|samples| LatencySummary::from_samples(samples))
    }
}

/// Executes an open-loop schedule against an overlay.
///
/// Each event advances the overlay's arrival clock to its scheduled time and
/// dispatches the operation; the operation's virtual latency (read back from
/// the overlay's per-op statistics) is recorded under its class.  Leaves and
/// failures are skipped while the overlay has `min_nodes` nodes or fewer;
/// failures degrade to graceful departures on overlays without failure
/// support; range queries are skipped on overlays without range support —
/// one schedule drives every system, as with the closed-loop runners.
pub fn run_open_loop(
    overlay: &mut dyn Overlay,
    events: &[ArrivalEvent],
    workload: &OpenLoopWorkload,
    rng: &mut SimRng,
    min_nodes: usize,
) -> OverlayResult<OpenLoopOutcome> {
    let keygen = KeyGenerator::paper(workload.distribution);
    let hot_keygen = workload
        .hot_burst
        .map(|burst| KeyGenerator::new(burst.low, burst.high, KeyDistribution::Uniform));
    // Draws the next data key: from the hot slice while a burst covers the
    // arrival, from the workload's distribution otherwise.
    let next_key = |at: SimTime, rng: &mut SimRng| match (&workload.hot_burst, &hot_keygen) {
        (Some(burst), Some(hot)) if burst.covers(at) => hot.next_key(rng),
        _ => keygen.next_key(rng),
    };
    let range_width =
        (((DOMAIN_HIGH - DOMAIN_LOW) as f64 * workload.range_selectivity) as u64).max(1);
    let mut outcome = OpenLoopOutcome::default();
    for event in events {
        overlay.advance_to(event.at);
        let first_op = baton_net::OpId(overlay.stats().next_op_id());
        let messages = match event.class {
            OpClass::Search => Some(overlay.search_exact(next_key(event.at, rng))?.messages),
            OpClass::Range => {
                let low = next_key(event.at, rng);
                let high = (low + range_width).min(DOMAIN_HIGH);
                match overlay.search_range(low, high) {
                    Ok(cost) => Some(cost.messages),
                    Err(OverlayError::Unsupported(_)) => None,
                    Err(other) => return Err(other),
                }
            }
            OpClass::Insert => {
                let key = next_key(event.at, rng);
                let cost = overlay.insert(key, key)?;
                Some(cost.messages + cost.balance_messages)
            }
            OpClass::Join => Some(overlay.join_random()?.total_messages()),
            OpClass::Leave | OpClass::Fail => {
                if overlay.node_count() <= min_nodes {
                    None
                } else if event.class == OpClass::Fail {
                    match overlay.fail_random() {
                        Ok(cost) => Some(cost.total_messages()),
                        // No failure protocol: degrade to a graceful leave.
                        Err(OverlayError::Unsupported(_)) => {
                            Some(overlay.leave_random()?.total_messages())
                        }
                        Err(other) => return Err(other),
                    }
                } else {
                    Some(overlay.leave_random()?.total_messages())
                }
            }
        };
        let Some(messages) = messages else {
            *outcome.skipped.entry(event.class.name()).or_insert(0) += 1;
            continue;
        };
        *outcome.executed.entry(event.class.name()).or_insert(0) += 1;
        outcome.messages += messages;
        // The first op begun by the dispatch is the client-visible one;
        // anything after it (e.g. a triggered load-balancing pass) is
        // background maintenance and not part of the client's latency.
        if let Some(latency) = overlay.stats().op(first_op).and_then(|s| s.latency()) {
            outcome
                .latencies
                .entry(event.class.name())
                .or_default()
                .push(latency);
        }
        // Everything the dispatch begun has finished: retire it into the
        // per-class aggregates so a long open-loop run holds O(in-flight)
        // operation state, not O(operations-ever).
        overlay.stats_mut().retire_finished();
    }
    outcome.makespan = overlay.now();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_deterministic_and_rate_proportional() {
        let workload = OpenLoopWorkload {
            duration: SimTime::from_secs(100),
            search_rate: 10.0,
            range_rate: 0.0,
            insert_rate: 2.0,
            join_rate: 1.0,
            leave_rate: 1.0,
            fail_rate: 0.0,
            distribution: KeyDistribution::Uniform,
            range_selectivity: 0.001,
            hot_burst: None,
        };
        let events = workload.schedule(&mut SimRng::seeded(1));
        let again = workload.schedule(&mut SimRng::seeded(1));
        assert_eq!(events, again);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "unsorted");
        assert!(events.iter().all(|e| e.at < workload.duration));
        let count = |c: OpClass| events.iter().filter(|e| e.class == c).count();
        let searches = count(OpClass::Search);
        let inserts = count(OpClass::Insert);
        assert_eq!(count(OpClass::Range), 0);
        assert_eq!(count(OpClass::Fail), 0);
        // ~1000 searches, ~200 inserts: Poisson noise stays well inside 2x.
        assert!((500..2000).contains(&searches), "searches = {searches}");
        assert!((100..400).contains(&inserts), "inserts = {inserts}");
    }

    #[test]
    fn churn_under_load_rates_match_the_fraction() {
        let w = OpenLoopWorkload::churn_under_load(SimTime::from_secs(60), 5.0, 1200, 0.1);
        // 10% of 1200 peers per minute, split between joins and leaves:
        // 1 join/s and 1 leave/s.
        assert!((w.join_rate - 1.0).abs() < 1e-9);
        assert!((w.leave_rate - 1.0).abs() < 1e-9);
        assert_eq!(w.search_rate, 5.0);
        assert_eq!(w.fail_rate, 0.0);
    }

    #[test]
    fn latency_summary_percentiles_are_ordered() {
        let samples: Vec<SimTime> = (1..=100).map(SimTime::from_millis).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, SimTime::from_millis(50));
        assert_eq!(s.p95, SimTime::from_millis(95));
        assert_eq!(s.p99, SimTime::from_millis(99));
        assert_eq!(s.max, SimTime::from_millis(100));
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(LatencySummary::from_samples(&[]).is_none());
        let one = LatencySummary::from_samples(&[SimTime::from_millis(7)]).unwrap();
        assert_eq!(one.p50, SimTime::from_millis(7));
        assert_eq!(one.p99, SimTime::from_millis(7));
    }

    #[test]
    fn empty_outcome_reports_zero_throughput() {
        let outcome = OpenLoopOutcome::default();
        assert_eq!(outcome.total_executed(), 0);
        assert_eq!(outcome.total_skipped(), 0);
        assert_eq!(outcome.skipped_of(OpClass::Range), 0);
        assert_eq!(outcome.throughput(), 0.0);
        assert!(outcome.summary(OpClass::Search).is_none());
    }

    #[test]
    fn hot_burst_covers_its_window_half_open() {
        let burst = HotBurst {
            from: SimTime::from_secs(20),
            until: SimTime::from_secs(40),
            low: 1,
            high: 10_000_001,
        };
        assert!(!burst.covers(SimTime::from_millis(19_999)));
        assert!(burst.covers(SimTime::from_secs(20)));
        assert!(burst.covers(SimTime::from_millis(39_999)));
        assert!(!burst.covers(SimTime::from_secs(40)));
    }
}
