//! Open-loop execution: operations arrive on a virtual-time schedule and
//! *interleave*, instead of executing back-to-back.
//!
//! The closed-loop runners in [`crate::runner`] issue the next operation the
//! moment the previous one finishes — fine for counting messages, useless
//! for latency or throughput, because the system is never under load.  An
//! open-loop run takes the merged arrival schedule of a
//! [`PhasedWorkload`](crate::PhasedWorkload) and dispatches each operation
//! at its arrival time by advancing the overlay's arrival clock
//! ([`baton_net::Overlay::advance_to`]).  Two operations whose hop chains
//! overlap in virtual time then genuinely overlap: each accumulates only its
//! own chain's latency.
//!
//! On top of the schedule, a [`FaultPlan`](crate::FaultPlan) injects timed
//! targeted faults (correlated regional kills) between arrivals — the
//! substrate for stress questions the paper cannot ask, e.g. *what happens
//! to search latency when half of one region fails at t = 20s?*

use std::collections::BTreeMap;

use baton_net::{
    OpId, Overlay, OverlayError, OverlayResult, PeerId, RepairPolicy, SimRng, SimTime,
};

use crate::faults::{FaultEvent, FaultPlan};
use crate::keys::{DOMAIN_HIGH, DOMAIN_LOW};
use crate::phases::PhasedWorkload;

/// The class of an operation in an open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// Exact-match query for a random key.
    Search,
    /// Range query for a random interval.
    Range,
    /// Insert of a random key/value pair.
    Insert,
    /// A new node joins through a random contact.
    Join,
    /// A random node departs gracefully.
    Leave,
    /// A random node fails abruptly (degrades to a graceful leave on
    /// overlays without failure support, like [`crate::runner::run_churn`]).
    Fail,
}

impl OpClass {
    /// Every class, in scheduling order.
    pub const ALL: [OpClass; 6] = [
        OpClass::Search,
        OpClass::Range,
        OpClass::Insert,
        OpClass::Join,
        OpClass::Leave,
        OpClass::Fail,
    ];

    /// Stable name used to group latency samples in reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Search => "search",
            OpClass::Range => "range",
            OpClass::Insert => "insert",
            OpClass::Join => "join",
            OpClass::Leave => "leave",
            OpClass::Fail => "fail",
        }
    }
}

/// One scheduled arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Virtual arrival time of the operation.
    pub at: SimTime,
    /// What arrives.
    pub class: OpClass,
}

/// Latency percentiles over one class of operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of completed operations the summary covers.
    pub count: usize,
    /// Mean virtual latency.
    pub mean: SimTime,
    /// Median (50th percentile).
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Slowest completed operation.
    pub max: SimTime,
}

impl LatencySummary {
    /// Summarises a set of latency samples; `None` if empty.
    ///
    /// Percentile convention matches
    /// [`Histogram::percentile`](baton_net::Histogram::percentile): the
    /// smallest sample such that at least `q · count` samples are ≤ it.
    pub fn from_samples(samples: &[SimTime]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let at = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        let total: u64 = sorted.iter().map(|t| t.as_micros()).sum();
        Some(Self {
            count: n,
            mean: SimTime::from_micros(total / n as u64),
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: sorted[n - 1],
        })
    }
}

/// Configuration of the virtual-time metrics sampler: how often
/// [`run_phased_with_metrics`] snapshots the run into a
/// [`MetricsSample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Virtual time between samples (clamped to at least 1µs).
    pub interval: SimTime,
}

impl MetricsConfig {
    /// A sampler ticking every `interval` of virtual time.
    pub fn new(interval: SimTime) -> Self {
        Self {
            interval: interval.max(SimTime::from_micros(1)),
        }
    }
}

impl Default for MetricsConfig {
    /// One sample per virtual second.
    fn default() -> Self {
        Self::new(SimTime::from_secs(1))
    }
}

/// One snapshot of a running open-loop scenario, taken on the sampler's
/// virtual-time tick.  A sequence of these is the *time series* behind the
/// dip-and-recover plots: throughput and tail latency collapse when a fault
/// wave lands, the repair backlog spikes, then both mend.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSample {
    /// Virtual instant of the tick.
    pub at: SimTime,
    /// Operations completed inside this tick's window
    /// `(at − interval, at]`.
    pub executed: u64,
    /// Completed operations per virtual second over the window.
    pub ops_per_sec: f64,
    /// Window latency percentiles per class (classes idle in the window
    /// are omitted).
    pub classes: BTreeMap<&'static str, LatencySummary>,
    /// Overlay membership at the tick (dead-but-unrepaired peers under
    /// deferred repair still count as members).
    pub node_count: usize,
    /// Operations begun but not yet retired into class aggregates.
    pub in_flight: usize,
    /// Cumulative availability misses since the run began.
    pub unavailable: u64,
    /// Deferred repairs still queued at the tick.
    pub repair_backlog: usize,
    /// The overlay's estimated routing/replica state footprint, in bytes.
    pub state_bytes: u64,
}

/// The sampler state threaded through [`run_phased_with_metrics`]: marks
/// into the outcome's per-class latency vectors delimit each window, so the
/// samples borrow the latencies the run records anyway instead of keeping a
/// second copy.
struct Sampler {
    interval: SimTime,
    next: SimTime,
    marks: BTreeMap<&'static str, usize>,
    last_total: u64,
}

impl Sampler {
    fn new(config: &MetricsConfig) -> Self {
        Self {
            interval: config.interval.max(SimTime::from_micros(1)),
            next: config.interval.max(SimTime::from_micros(1)),
            marks: BTreeMap::new(),
            last_total: 0,
        }
    }

    /// Emits every tick due at or before `until`, snapshotting the overlay
    /// and outcome as they stand (ticks never touch the rng or the clock,
    /// so sampling cannot perturb the run).
    fn flush(
        &mut self,
        until: SimTime,
        overlay: &dyn Overlay,
        repair_backlog: usize,
        outcome: &mut OpenLoopOutcome,
    ) {
        while self.next <= until {
            let at = self.next;
            let mut classes = BTreeMap::new();
            for (class, samples) in &outcome.latencies {
                let mark = self.marks.entry(class).or_insert(0);
                if let Some(summary) = LatencySummary::from_samples(&samples[*mark..]) {
                    classes.insert(*class, summary);
                }
                *mark = samples.len();
            }
            let total = outcome.total_executed();
            let executed = total - self.last_total;
            self.last_total = total;
            outcome.samples.push(MetricsSample {
                at,
                executed,
                ops_per_sec: executed as f64 / self.interval.as_secs_f64(),
                classes,
                node_count: overlay.node_count(),
                in_flight: overlay.stats().live_op_count(),
                unavailable: outcome.total_unavailable(),
                repair_backlog,
                state_bytes: overlay.estimated_state_bytes(),
            });
            self.next += self.interval;
        }
    }
}

/// Aggregate outcome of an open-loop run.
#[derive(Clone, Debug, Default)]
pub struct OpenLoopOutcome {
    /// Operations executed, per class.
    pub executed: BTreeMap<&'static str, u64>,
    /// Operations skipped, per class (node floor reached, or a class the
    /// overlay does not support, e.g. range queries on a DHT) — kept per
    /// [`OpClass`] so "Chord skipped ranges" stays distinguishable from
    /// "node-floor skipped leaves" in reports.
    pub skipped: BTreeMap<&'static str, u64>,
    /// Virtual instant the overlay had reached when the run ended — the
    /// denominator of [`throughput`](Self::throughput).
    pub makespan: SimTime,
    /// Completed-operation latency samples, per class, in completion order.
    pub latencies: BTreeMap<&'static str, Vec<SimTime>>,
    /// Total messages across all executed operations.
    pub messages: u64,
    /// Peers killed by the fault plan (counted under the `fail` class in
    /// `executed`, tallied here as well so reports can attribute correlated
    /// failures separately from the Poisson `fail` arrivals).
    pub fault_kills: u64,
    /// Operations that reached a dead, not-yet-repaired peer with no
    /// replica able to answer, per class, over the whole run.  Distinct
    /// from `skipped` (the operation was never attempted) — an unavailable
    /// operation was attempted and failed.
    pub unavailable: BTreeMap<&'static str, u64>,
    /// Operations dispatched inside a fault-assessment window
    /// (`[fault.at, fault.at + policy.slow]` per fault event), per class —
    /// the denominator of [`availability`](Self::availability).
    pub window_attempts: BTreeMap<&'static str, u64>,
    /// The in-window subset of [`unavailable`](Self::unavailable), per
    /// class — the numerator of [`availability`](Self::availability).
    /// (A straggling repair can fail an operation *after* its window
    /// closed; that failure counts in `unavailable` but not here.)
    pub window_unavailable: BTreeMap<&'static str, u64>,
    /// Time from each deferred kill to its completed repair, in completion
    /// order (including retry delays when the first repair attempt itself
    /// hit an availability window).
    pub repair_times: Vec<SimTime>,
    /// Deferred repairs abandoned after exhausting their retry budget.
    /// Zero in any healthy run; non-zero flags unrecoverable state.
    pub repairs_abandoned: u64,
    /// Wall-clock time spent executing deferred repairs (the
    /// `repair_peer` calls plus their queue management).  Wall-clock, so
    /// it never appears in a deterministic report; the perf harness's
    /// `avail_k*` rows cite it so the slow-path repair cost at k = 1 is
    /// not misread as query-throughput regression.
    pub repair_wall: std::time::Duration,
    /// Virtual-time metrics samples, in tick order — empty unless the run
    /// was started through [`run_phased_with_metrics`] with a
    /// [`MetricsConfig`].
    pub samples: Vec<MetricsSample>,
}

impl OpenLoopOutcome {
    /// Total operations executed across all classes.
    pub fn total_executed(&self) -> u64 {
        self.executed.values().sum()
    }

    /// Total operations skipped across all classes.
    pub fn total_skipped(&self) -> u64 {
        self.skipped.values().sum()
    }

    /// Operations of one class that were skipped.
    pub fn skipped_of(&self, class: OpClass) -> u64 {
        self.skipped.get(class.name()).copied().unwrap_or(0)
    }

    /// Completed operations per virtual second (0.0 for a zero makespan,
    /// i.e. under the count-only zero-latency model).
    pub fn throughput(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_executed() as f64 / self.makespan.as_secs_f64()
        }
    }

    /// Latency percentiles of one class; `None` if nothing completed.
    pub fn summary(&self, class: OpClass) -> Option<LatencySummary> {
        self.latencies
            .get(class.name())
            .and_then(|samples| LatencySummary::from_samples(samples))
    }

    /// Total operations that surfaced unavailability, across the run.
    pub fn total_unavailable(&self) -> u64 {
        self.unavailable.values().sum()
    }

    /// Operations of one class that surfaced unavailability.
    pub fn unavailable_of(&self, class: OpClass) -> u64 {
        self.unavailable.get(class.name()).copied().unwrap_or(0)
    }

    /// Fraction of fault-window dispatches that succeeded, in `[0, 1]`;
    /// `None` when no operation was dispatched during a window (nothing to
    /// measure — in particular every faultless legacy run).
    pub fn availability(&self) -> Option<f64> {
        let attempts: u64 = self.window_attempts.values().sum();
        if attempts == 0 {
            return None;
        }
        let failed = self.window_unavailable.values().sum::<u64>().min(attempts);
        Some((attempts - failed) as f64 / attempts as f64)
    }

    /// Latency percentiles of the time-to-repair samples; `None` if no
    /// deferred repair completed.
    pub fn repair_summary(&self) -> Option<LatencySummary> {
        LatencySummary::from_samples(&self.repair_times)
    }

    /// Records a completed dispatch: the executed count, its messages, and
    /// the client-visible latency of its first begun operation.
    fn record(&mut self, overlay: &mut dyn Overlay, class: OpClass, first_op: OpId, messages: u64) {
        *self.executed.entry(class.name()).or_insert(0) += 1;
        self.messages += messages;
        // The first op begun by the dispatch is the client-visible one;
        // anything after it (e.g. a triggered load-balancing pass) is
        // background maintenance and not part of the client's latency.
        if let Some(latency) = overlay.stats().op(first_op).and_then(|s| s.latency()) {
            self.latencies
                .entry(class.name())
                .or_default()
                .push(latency);
        }
        // Everything the dispatch begun has finished: retire it into the
        // per-class aggregates so a long open-loop run holds O(in-flight)
        // operation state, not O(operations-ever).
        let _t = baton_net::profiler::scope("stats.retire");
        overlay.stats_mut().retire_finished();
    }
}

/// Kills one specific peer: abruptly when the overlay supports targeted
/// failures, degrading to a targeted graceful departure otherwise.
/// Returns the messages spent, or `None` if the overlay supports no
/// *targeted* departure at all — a fault kill that silently removed some
/// other random peer would misreport an uncorrelated failure pattern as a
/// correlated one, so untargetable overlays skip instead.
fn kill_peer(overlay: &mut dyn Overlay, victim: PeerId) -> OverlayResult<Option<u64>> {
    match overlay.fail_peer(victim) {
        Ok(cost) => Ok(Some(cost.total_messages())),
        Err(OverlayError::Unsupported(_)) => match overlay.leave_peer(victim) {
            Ok(cost) => Ok(Some(cost.total_messages())),
            Err(OverlayError::Unsupported(_)) => Ok(None),
            Err(other) => Err(other),
        },
        Err(other) => Err(other),
    }
}

/// A deferred repair awaiting its scheduled instant.
#[derive(Clone, Copy, Debug)]
struct PendingRepair {
    /// Instant the repair runs.
    at: SimTime,
    /// The dead peer to mend.
    victim: PeerId,
    /// Instant the peer was killed — `at − killed_at` is the time-to-repair
    /// sample once the repair completes.
    killed_at: SimTime,
    /// Retry count: a repair can itself hit an availability window (its
    /// replacement peer is also dead) and be re-queued.
    retries: u32,
}

/// Retry budget of one deferred repair.  Retries converge because repairs
/// run in time order — whatever dead peer blocked this repair has its own
/// pending repair — so the cap only guards against unrecoverable state.
const REPAIR_RETRY_LIMIT: u32 = 32;

/// Runs every pending repair due at or before `until` (all of them when
/// `None`), earliest first.  A repair that hits an availability window is
/// re-queued one retry delay later, up to [`REPAIR_RETRY_LIMIT`].  Each
/// completed repair re-stages any pending victim that regained a live
/// replica holder onto the fast path (see
/// [`Overlay::repair_fast_eligible`]), so correlated kills recover as a
/// fast-path cascade instead of serialising on the slow path.
fn drain_repairs(
    overlay: &mut dyn Overlay,
    pending: &mut Vec<PendingRepair>,
    retry_delay: SimTime,
    until: Option<SimTime>,
    outcome: &mut OpenLoopOutcome,
) -> OverlayResult<()> {
    let started = std::time::Instant::now();
    let result = drain_repairs_inner(overlay, pending, retry_delay, until, outcome);
    outcome.repair_wall += started.elapsed();
    result
}

/// [`drain_repairs`] minus the wall-clock accounting wrapper.
fn drain_repairs_inner(
    overlay: &mut dyn Overlay,
    pending: &mut Vec<PendingRepair>,
    retry_delay: SimTime,
    until: Option<SimTime>,
    outcome: &mut OpenLoopOutcome,
) -> OverlayResult<()> {
    loop {
        let due = pending
            .iter()
            .enumerate()
            .filter(|(_, r)| until.is_none_or(|t| r.at <= t))
            .min_by_key(|(_, r)| (r.at, r.victim))
            .map(|(i, _)| i);
        let Some(index) = due else {
            return Ok(());
        };
        let repair = pending.remove(index);
        overlay.advance_to(repair.at);
        match overlay.repair_peer(repair.victim) {
            Ok(cost) => {
                outcome.messages += cost.total_messages();
                outcome
                    .repair_times
                    .push(repair.at.saturating_sub(repair.killed_at));
                // A completed repair can bring back the replica holder of
                // another still-pending victim.  That victim's slice can
                // stream from the restored replica *now*, so its remaining
                // wait collapses from the slow detect-and-rebuild path to
                // the fast path — re-staged, never postponed.  (At k = 1
                // nothing is ever fast-eligible and the queue is untouched.)
                let fast_at = repair.at + retry_delay;
                for other in pending.iter_mut() {
                    if other.at > fast_at && overlay.repair_fast_eligible(other.victim) {
                        other.at = fast_at;
                    }
                }
            }
            Err(OverlayError::Unavailable(_)) if repair.retries < REPAIR_RETRY_LIMIT => {
                // A blocked repair is waiting on some other victim's repair
                // (its replacement walk landed on a dead leaf).  Blind
                // fixed-delay retries can exhaust the budget while the dead
                // cluster blocking us drains, so follow the queue instead:
                // the next pending repair is the earliest event that can
                // unblock this one — retry one fast delay after it (after
                // ourselves when nothing later is pending).
                let step = retry_delay.max(SimTime::from_millis(1));
                let next_change = pending
                    .iter()
                    .map(|other| other.at)
                    .filter(|at| *at > repair.at)
                    .min()
                    .unwrap_or(repair.at);
                pending.push(PendingRepair {
                    at: next_change + step,
                    retries: repair.retries + 1,
                    ..repair
                });
            }
            Err(OverlayError::Unavailable(_)) => outcome.repairs_abandoned += 1,
            Err(other) => return Err(other),
        }
    }
}

/// Fires one fault event: advances the clock to the fault's instant,
/// selects the victims from the live peer list, and kills each one
/// (respecting the node floor).  Kills are accounted under the `fail`
/// class, exactly like Poisson `fail` arrivals.
///
/// With a repair policy the kills are *deferred*: each victim is marked
/// dead and a repair is queued after the policy's delay — the availability
/// window the outcome measures.  Without one (every legacy plan) the kill
/// runs the immediate fail-and-recover protocol as before.
///
/// `fault_rng` is a stream dedicated to victim selection, separate from the
/// key-draw stream: the number of draws a selection consumes depends on the
/// overlay's live peer set (which diverges across overlays once churn
/// runs), and sharing one stream would desynchronise the data keys that
/// keep every overlay on the same workload.
fn apply_fault(
    overlay: &mut dyn Overlay,
    fault: &FaultEvent,
    fault_rng: &mut SimRng,
    min_nodes: usize,
    repair: Option<&RepairPolicy>,
    pending: &mut Vec<PendingRepair>,
    outcome: &mut OpenLoopOutcome,
) -> OverlayResult<()> {
    overlay.advance_to(fault.at);
    // Select from the *alive* peers only.  Under deferred repair the
    // victims of an earlier wave are still members; selecting over raw
    // membership would let a wave re-kill an already-dead peer — failing
    // the kill and under-delivering the wave's intended severity.
    let pool: Vec<PeerId> = overlay
        .peers()
        .iter()
        .copied()
        .filter(|p| overlay.peer_alive(*p))
        .collect();
    let victims = fault.select_victims(&pool, fault_rng);
    for victim in victims {
        if overlay.node_count() <= min_nodes {
            *outcome.skipped.entry(OpClass::Fail.name()).or_insert(0) += 1;
            continue;
        }
        // A victim can die or disappear between selection and execution (an
        // earlier kill's replacement protocol may have vacated it).
        if !overlay.peer_alive(victim) {
            *outcome.skipped.entry(OpClass::Fail.name()).or_insert(0) += 1;
            continue;
        }
        if let Some(policy) = repair {
            match overlay.fail_peer_deferred(victim, policy) {
                Ok(delay) => {
                    pending.push(PendingRepair {
                        at: fault.at + delay,
                        victim,
                        killed_at: fault.at,
                        retries: 0,
                    });
                    outcome.fault_kills += 1;
                    continue;
                }
                // No deferred-repair protocol: fall through to the
                // immediate kill below.
                Err(OverlayError::Unsupported(_)) => {}
                Err(other) => return Err(other),
            }
        }
        let first_op = OpId(overlay.stats().next_op_id());
        let Some(messages) = kill_peer(overlay, victim)? else {
            *outcome.skipped.entry(OpClass::Fail.name()).or_insert(0) += 1;
            continue;
        };
        outcome.fault_kills += 1;
        outcome.record(overlay, OpClass::Fail, first_op, messages);
    }
    Ok(())
}

/// Executes a phased open-loop schedule — with its fault plan — against an
/// overlay.
///
/// Each arrival advances the overlay's arrival clock to its scheduled time
/// and dispatches the operation; the operation's virtual latency (read back
/// from the overlay's per-op statistics) is recorded under its class.
/// Fault events fire between arrivals, in time order (a fault scheduled at
/// the same instant as an arrival fires first).  Leaves, failures and fault
/// kills are skipped while the overlay has `min_nodes` nodes or fewer;
/// failures degrade to graceful departures on overlays without failure
/// support; range queries are skipped on overlays without range support —
/// one schedule drives every system, as with the closed-loop runners.
///
/// When the fault plan carries a [`RepairPolicy`], its kills open
/// *availability windows*: victims stay dead until their queued repair
/// runs, operations dispatched inside a window are tallied per class under
/// `window_attempts`, and any that surface [`OverlayError::Unavailable`]
/// (the dead peer's slice had no answering replica) land in `unavailable`
/// instead of aborting the run.  Each fault event opens a *fixed-length*
/// assessment window `[fault.at, fault.at + policy.slow]` — the worst-case
/// outage span.  The length is deliberately independent of how fast the
/// repairs actually finish: a replicated overlay that mends in half a
/// second is scored over the same denominator as the k = 1 overlay that
/// stays dark for the full slow path, so faster repair shows up as higher
/// availability rather than as a shorter (and therefore noisier) window.
/// Repairs still pending after the last arrival are drained before the
/// outcome is returned, so the overlay ends the run fully mended.
pub fn run_phased(
    overlay: &mut dyn Overlay,
    events: &[ArrivalEvent],
    workload: &PhasedWorkload,
    faults: &FaultPlan,
    rng: &mut SimRng,
    min_nodes: usize,
) -> OverlayResult<OpenLoopOutcome> {
    run_phased_with_metrics(overlay, events, workload, faults, rng, min_nodes, None)
}

/// [`run_phased`] with an optional virtual-time metrics sampler.
///
/// With a [`MetricsConfig`], a tick fires every `interval` of virtual time
/// (interleaved with arrivals and faults in time order) and snapshots the
/// run into [`OpenLoopOutcome::samples`]: window throughput and per-class
/// percentiles, membership, in-flight operations, cumulative availability
/// misses, the deferred-repair backlog and the overlay's estimated state
/// footprint.  Ticks read state only — they never draw from the rng or
/// advance the clock — so a sampled run's statistics are byte-identical to
/// an unsampled one.  `None` is exactly [`run_phased`].
#[allow(clippy::too_many_arguments)]
pub fn run_phased_with_metrics(
    overlay: &mut dyn Overlay,
    events: &[ArrivalEvent],
    workload: &PhasedWorkload,
    faults: &FaultPlan,
    rng: &mut SimRng,
    min_nodes: usize,
    metrics: Option<&MetricsConfig>,
) -> OverlayResult<OpenLoopOutcome> {
    let keys = workload.resolve_keys();
    let range_width =
        (((DOMAIN_HIGH - DOMAIN_LOW) as f64 * workload.range_selectivity) as u64).max(1);
    let mut outcome = OpenLoopOutcome::default();
    // Victim selection gets its own derived stream (see `apply_fault`);
    // `derive` reads the parent's seed without advancing it, so a faultless
    // run consumes `rng` exactly as the pre-fault engine did.
    let mut fault_rng = rng.derive(0xFA17);
    let mut fault_queue = faults.events().iter().peekable();
    let repair = faults.repair();
    let retry_delay = repair.map(|p| p.fast).unwrap_or_default();
    // The fixed assessment windows (see above): one per fault event, from
    // the kill to its worst-case (slow-path) repair.
    let windows: Vec<(SimTime, SimTime)> = repair
        .map(|policy| {
            faults
                .events()
                .iter()
                .map(|fault| (fault.at, fault.at + policy.slow))
                .collect()
        })
        .unwrap_or_default();
    let in_window = |at: SimTime| windows.iter().any(|(from, to)| at >= *from && at <= *to);
    let mut pending: Vec<PendingRepair> = Vec::new();
    let mut sampler = metrics.map(Sampler::new);
    for event in events {
        while let Some(fault) = fault_queue.next_if(|f| f.at <= event.at) {
            drain_repairs(
                overlay,
                &mut pending,
                retry_delay,
                Some(fault.at),
                &mut outcome,
            )?;
            // Ticks due before the fault fires snapshot the pre-fault
            // state; the wave's damage lands in the following tick.
            if let Some(s) = sampler.as_mut() {
                s.flush(fault.at, overlay, pending.len(), &mut outcome);
            }
            apply_fault(
                overlay,
                fault,
                &mut fault_rng,
                min_nodes,
                repair,
                &mut pending,
                &mut outcome,
            )?;
        }
        drain_repairs(
            overlay,
            &mut pending,
            retry_delay,
            Some(event.at),
            &mut outcome,
        )?;
        if let Some(s) = sampler.as_mut() {
            s.flush(event.at, overlay, pending.len(), &mut outcome);
        }
        {
            let _t = baton_net::profiler::scope("openloop.advance");
            overlay.advance_to(event.at);
        }
        if in_window(event.at) {
            *outcome
                .window_attempts
                .entry(event.class.name())
                .or_insert(0) += 1;
        }
        let first_op = OpId(overlay.stats().next_op_id());
        let _t = baton_net::profiler::scope(match event.class {
            OpClass::Search => "openloop.search",
            OpClass::Range => "openloop.range",
            OpClass::Insert => "openloop.insert",
            OpClass::Join => "openloop.join",
            OpClass::Leave => "openloop.leave",
            OpClass::Fail => "openloop.fail",
        });
        let messages = match dispatch(
            overlay,
            event.class,
            event.at,
            &keys,
            range_width,
            rng,
            min_nodes,
        )? {
            Dispatch::Done(messages) => messages,
            Dispatch::Skipped => {
                *outcome.skipped.entry(event.class.name()).or_insert(0) += 1;
                continue;
            }
            Dispatch::Unavailable => {
                *outcome.unavailable.entry(event.class.name()).or_insert(0) += 1;
                if in_window(event.at) {
                    *outcome
                        .window_unavailable
                        .entry(event.class.name())
                        .or_insert(0) += 1;
                }
                continue;
            }
        };
        outcome.record(overlay, event.class, first_op, messages);
    }
    // Faults scheduled after the last arrival still fire.
    for fault in fault_queue {
        drain_repairs(
            overlay,
            &mut pending,
            retry_delay,
            Some(fault.at),
            &mut outcome,
        )?;
        if let Some(s) = sampler.as_mut() {
            s.flush(fault.at, overlay, pending.len(), &mut outcome);
        }
        apply_fault(
            overlay,
            fault,
            &mut fault_rng,
            min_nodes,
            repair,
            &mut pending,
            &mut outcome,
        )?;
    }
    // ... and so do repairs still queued past the last event.
    drain_repairs(overlay, &mut pending, retry_delay, None, &mut outcome)?;
    outcome.makespan = overlay.now();
    // Trailing ticks (the tail of the run after the last arrival) close
    // the series at the makespan, so the final sample shows the overlay
    // fully mended.
    if let Some(s) = sampler.as_mut() {
        s.flush(outcome.makespan, overlay, pending.len(), &mut outcome);
    }
    Ok(outcome)
}

/// Result of one arrival dispatch.
enum Dispatch {
    /// Executed, spending this many messages.
    Done(u64),
    /// Not attempted (unsupported class or node floor).
    Skipped,
    /// Attempted and lost to an availability window.
    Unavailable,
}

/// Dispatches one arrival, folding [`OverlayError::Unavailable`] into a
/// countable outcome instead of an abort.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    overlay: &mut dyn Overlay,
    class: OpClass,
    at: SimTime,
    keys: &crate::phases::ResolvedKeys,
    range_width: u64,
    rng: &mut SimRng,
    min_nodes: usize,
) -> OverlayResult<Dispatch> {
    let attempt = |result: OverlayResult<u64>| match result {
        Ok(messages) => Ok(Dispatch::Done(messages)),
        Err(OverlayError::Unavailable(_)) => Ok(Dispatch::Unavailable),
        Err(other) => Err(other),
    };
    match class {
        OpClass::Search => {
            let key = keys.draw(at, rng);
            attempt(overlay.search_exact(key).map(|c| c.messages))
        }
        OpClass::Range => {
            let low = keys.draw(at, rng);
            let high = (low + range_width).min(DOMAIN_HIGH);
            match overlay.search_range(low, high) {
                Ok(cost) => Ok(Dispatch::Done(cost.messages)),
                Err(OverlayError::Unsupported(_)) => Ok(Dispatch::Skipped),
                Err(OverlayError::Unavailable(_)) => Ok(Dispatch::Unavailable),
                Err(other) => Err(other),
            }
        }
        OpClass::Insert => {
            let key = keys.draw(at, rng);
            attempt(
                overlay
                    .insert(key, key)
                    .map(|c| c.messages + c.balance_messages),
            )
        }
        OpClass::Join => attempt(overlay.join_random().map(|c| c.total_messages())),
        OpClass::Leave | OpClass::Fail => {
            if overlay.node_count() <= min_nodes {
                Ok(Dispatch::Skipped)
            } else if class == OpClass::Fail {
                match overlay.fail_random() {
                    Ok(cost) => Ok(Dispatch::Done(cost.total_messages())),
                    // No failure protocol: degrade to a graceful leave.
                    Err(OverlayError::Unsupported(_)) => {
                        attempt(overlay.leave_random().map(|c| c.total_messages()))
                    }
                    Err(OverlayError::Unavailable(_)) => Ok(Dispatch::Unavailable),
                    Err(other) => Err(other),
                }
            } else {
                attempt(overlay.leave_random().map(|c| c.total_messages()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_are_ordered() {
        let samples: Vec<SimTime> = (1..=100).map(SimTime::from_millis).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, SimTime::from_millis(50));
        assert_eq!(s.p95, SimTime::from_millis(95));
        assert_eq!(s.p99, SimTime::from_millis(99));
        assert_eq!(s.max, SimTime::from_millis(100));
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(LatencySummary::from_samples(&[]).is_none());
        let one = LatencySummary::from_samples(&[SimTime::from_millis(7)]).unwrap();
        assert_eq!(one.p50, SimTime::from_millis(7));
        assert_eq!(one.p99, SimTime::from_millis(7));
    }

    #[test]
    fn empty_outcome_reports_zero_throughput() {
        let outcome = OpenLoopOutcome::default();
        assert_eq!(outcome.total_executed(), 0);
        assert_eq!(outcome.total_skipped(), 0);
        assert_eq!(outcome.skipped_of(OpClass::Range), 0);
        assert_eq!(outcome.throughput(), 0.0);
        assert_eq!(outcome.fault_kills, 0);
        assert!(outcome.summary(OpClass::Search).is_none());
    }
}
