//! Generic workload runners: apply churn, bulk loads and query batches to
//! **any** [`Overlay`] implementation.
//!
//! Before the `Overlay` trait existed, every harness (figure drivers,
//! examples, tests) carried its own copy of "loop over the events, call the
//! system, add up the messages" — once per system.  These runners are that
//! loop, written once, operating on `&mut dyn Overlay`, so BATON, Chord, the
//! multiway tree and any future baseline all execute the exact same
//! workload code.

use baton_net::{Overlay, OverlayError, OverlayResult};

use crate::churn::ChurnEvent;
use crate::queries::Query;

/// Aggregate outcome of a churn sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Joins executed.
    pub joins: u64,
    /// Graceful departures executed.
    pub leaves: u64,
    /// Failures executed.
    pub fails: u64,
    /// Events skipped to protect the overlay (too few nodes, or a failure
    /// on a system without failure support — see `min_nodes`).
    pub skipped: u64,
    /// Total locate messages across all executed events.
    pub locate_messages: u64,
    /// Total routing-table update messages across all executed events.
    pub update_messages: u64,
    /// Data items lost to failures.
    pub lost_items: usize,
}

impl ChurnOutcome {
    /// Number of executed events.
    pub fn executed(&self) -> u64 {
        self.joins + self.leaves + self.fails
    }

    /// Average messages (locate + update) per executed event.
    pub fn mean_messages(&self) -> f64 {
        let executed = self.executed();
        if executed == 0 {
            0.0
        } else {
            (self.locate_messages + self.update_messages) as f64 / executed as f64
        }
    }
}

/// Applies a churn event sequence to an overlay.
///
/// Leaves and failures are skipped while the overlay has `min_nodes` nodes
/// or fewer (every system refuses to lose its last node, and experiments
/// usually want to keep a floor).  Failures on overlays without failure
/// support fall back to graceful departures, so one event sequence drives
/// every system.
///
/// Like every runner here, finished operations are retired into the
/// per-class streaming aggregates after each event
/// ([`baton_net::MessageStats::retire_finished`]), so long workloads hold
/// O(in-flight) per-operation state instead of O(events-ever).
pub fn run_churn(
    overlay: &mut dyn Overlay,
    events: &[ChurnEvent],
    min_nodes: usize,
) -> OverlayResult<ChurnOutcome> {
    let mut outcome = ChurnOutcome::default();
    for event in events {
        match event {
            ChurnEvent::Join => {
                let cost = overlay.join_random()?;
                outcome.joins += 1;
                outcome.locate_messages += cost.locate_messages;
                outcome.update_messages += cost.update_messages;
            }
            ChurnEvent::Leave | ChurnEvent::Fail => {
                if overlay.node_count() <= min_nodes {
                    outcome.skipped += 1;
                    continue;
                }
                let (cost, failed) = if *event == ChurnEvent::Fail {
                    match overlay.fail_random() {
                        Ok(cost) => (cost, true),
                        // No failure protocol: degrade to a graceful leave.
                        Err(OverlayError::Unsupported(_)) => (overlay.leave_random()?, false),
                        Err(other) => return Err(other),
                    }
                } else {
                    (overlay.leave_random()?, false)
                };
                if failed {
                    outcome.fails += 1;
                } else {
                    outcome.leaves += 1;
                }
                outcome.locate_messages += cost.locate_messages;
                outcome.update_messages += cost.update_messages;
                outcome.lost_items += cost.lost_items;
            }
        }
        overlay.stats_mut().retire_finished();
    }
    Ok(outcome)
}

/// Aggregate outcome of a bulk load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Values inserted.
    pub inserted: u64,
    /// Total messages spent (routing, expansion — balancing excluded).
    pub messages: u64,
    /// Total load-balancing messages triggered by the inserts.
    pub balance_messages: u64,
}

impl LoadOutcome {
    /// Average messages per insert (balancing excluded).
    pub fn mean_messages(&self) -> f64 {
        if self.inserted == 0 {
            0.0
        } else {
            self.messages as f64 / self.inserted as f64
        }
    }

    /// Average load-balancing messages per insert (Figure 8(g)).
    pub fn mean_balance_messages(&self) -> f64 {
        if self.inserted == 0 {
            0.0
        } else {
            self.balance_messages as f64 / self.inserted as f64
        }
    }
}

/// Inserts a generated dataset into an overlay.
pub fn bulk_load(overlay: &mut dyn Overlay, data: &[(u64, u64)]) -> OverlayResult<LoadOutcome> {
    let mut outcome = LoadOutcome::default();
    for (key, value) in data {
        let cost = overlay.insert(*key, *value)?;
        outcome.inserted += 1;
        outcome.messages += cost.messages;
        outcome.balance_messages += cost.balance_messages;
        overlay.stats_mut().retire_finished();
    }
    Ok(outcome)
}

/// Aggregate outcome of a query batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Exact queries executed.
    pub exact_executed: u64,
    /// Range queries executed.
    pub range_executed: u64,
    /// Queries skipped because the overlay does not support them (range
    /// queries on a DHT).
    pub unsupported: u64,
    /// Total messages across executed exact queries.
    pub exact_messages: u64,
    /// Total messages across executed range queries.
    pub range_messages: u64,
    /// Total matches returned.
    pub matches: u64,
}

impl QueryOutcome {
    /// Average messages per executed exact query.
    pub fn mean_exact_messages(&self) -> f64 {
        if self.exact_executed == 0 {
            0.0
        } else {
            self.exact_messages as f64 / self.exact_executed as f64
        }
    }

    /// Average messages per executed range query.
    pub fn mean_range_messages(&self) -> f64 {
        if self.range_executed == 0 {
            0.0
        } else {
            self.range_messages as f64 / self.range_executed as f64
        }
    }
}

/// Runs a query batch against an overlay.
///
/// Unsupported queries (per the overlay's capabilities) are counted and
/// skipped rather than treated as errors, so one workload drives every
/// system and the caller can still see what was omitted.
pub fn run_queries(overlay: &mut dyn Overlay, queries: &[Query]) -> OverlayResult<QueryOutcome> {
    let mut outcome = QueryOutcome::default();
    for query in queries {
        match query {
            Query::Exact(key) => {
                let cost = overlay.search_exact(*key)?;
                outcome.exact_executed += 1;
                outcome.exact_messages += cost.messages;
                outcome.matches += cost.matches as u64;
            }
            Query::Range { low, high } => match overlay.search_range(*low, *high) {
                Ok(cost) => {
                    outcome.range_executed += 1;
                    outcome.range_messages += cost.messages;
                    outcome.matches += cost.matches as u64;
                }
                Err(OverlayError::Unsupported(_)) => outcome.unsupported += 1,
                Err(other) => return Err(other),
            },
        }
        overlay.stats_mut().retire_finished();
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_net::{ChurnCost, MessageStats, OpCost, OverlayCapabilities, OverlayResult as OR};

    /// Deterministic fake overlay: every operation costs one message;
    /// range queries and failures are unsupported.
    struct Fake {
        stats: MessageStats,
        nodes: usize,
        items: usize,
    }

    impl Overlay for Fake {
        fn name(&self) -> &'static str {
            "Fake"
        }
        fn capabilities(&self) -> OverlayCapabilities {
            OverlayCapabilities::DHT
        }
        fn node_count(&self) -> usize {
            self.nodes
        }
        fn total_items(&self) -> usize {
            self.items
        }
        fn stats(&self) -> &MessageStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut MessageStats {
            &mut self.stats
        }
        fn join_random(&mut self) -> OR<ChurnCost> {
            self.nodes += 1;
            Ok(ChurnCost {
                locate_messages: 1,
                update_messages: 2,
                lost_items: 0,
            })
        }
        fn leave_random(&mut self) -> OR<ChurnCost> {
            self.nodes -= 1;
            Ok(ChurnCost {
                locate_messages: 0,
                update_messages: 3,
                lost_items: 0,
            })
        }
        fn insert(&mut self, _key: u64, _value: u64) -> OR<OpCost> {
            self.items += 1;
            Ok(OpCost {
                messages: 1,
                balance_messages: 1,
                ..OpCost::default()
            })
        }
        fn delete(&mut self, _key: u64) -> OR<OpCost> {
            Ok(OpCost::default())
        }
        fn search_exact(&mut self, _key: u64) -> OR<OpCost> {
            Ok(OpCost {
                messages: 2,
                matches: 1,
                ..OpCost::default()
            })
        }
        fn search_range(&mut self, _low: u64, _high: u64) -> OR<OpCost> {
            Err(OverlayError::Unsupported("range"))
        }
        fn validate(&self) -> Result<(), String> {
            Ok(())
        }
    }

    fn fake() -> Fake {
        Fake {
            stats: MessageStats::new(),
            nodes: 4,
            items: 0,
        }
    }

    #[test]
    fn churn_runner_executes_and_respects_the_floor() {
        let mut overlay = fake();
        let events = [
            ChurnEvent::Join,
            ChurnEvent::Leave,
            ChurnEvent::Fail,  // unsupported -> degrades to a leave
            ChurnEvent::Leave, // at the floor of 3 nodes: skipped
            ChurnEvent::Leave, // skipped
        ];
        let outcome = run_churn(&mut overlay, &events, 3).unwrap();
        assert_eq!(outcome.joins, 1);
        assert_eq!(outcome.leaves, 2);
        assert_eq!(outcome.fails, 0);
        assert_eq!(outcome.skipped, 2);
        assert_eq!(outcome.executed(), 3);
        assert_eq!(outcome.locate_messages, 1);
        assert_eq!(outcome.update_messages, 2 + 3 * 2);
        assert!(outcome.mean_messages() > 0.0);
    }

    #[test]
    fn bulk_load_accumulates_messages_and_balance() {
        let mut overlay = fake();
        let data = [(1u64, 1u64), (2, 2), (3, 3)];
        let outcome = bulk_load(&mut overlay, &data).unwrap();
        assert_eq!(outcome.inserted, 3);
        assert_eq!(outcome.messages, 3);
        assert_eq!(outcome.balance_messages, 3);
        assert_eq!(overlay.total_items(), 3);
        assert_eq!(outcome.mean_messages(), 1.0);
        assert_eq!(outcome.mean_balance_messages(), 1.0);
    }

    #[test]
    fn query_runner_skips_unsupported_ranges() {
        let mut overlay = fake();
        let queries = [
            Query::Exact(1),
            Query::Range { low: 1, high: 10 },
            Query::Exact(2),
        ];
        let outcome = run_queries(&mut overlay, &queries).unwrap();
        assert_eq!(outcome.exact_executed, 2);
        assert_eq!(outcome.range_executed, 0);
        assert_eq!(outcome.unsupported, 1);
        assert_eq!(outcome.matches, 2);
        assert_eq!(outcome.mean_exact_messages(), 2.0);
        assert_eq!(outcome.mean_range_messages(), 0.0);
    }

    #[test]
    fn empty_outcomes_have_zero_means() {
        assert_eq!(ChurnOutcome::default().mean_messages(), 0.0);
        assert_eq!(LoadOutcome::default().mean_messages(), 0.0);
        assert_eq!(LoadOutcome::default().mean_balance_messages(), 0.0);
        assert_eq!(QueryOutcome::default().mean_exact_messages(), 0.0);
    }
}
