//! Batched query admission over routing snapshots: the workload half of the
//! concurrent serve front-end.
//!
//! Queries are admitted in fixed-size batches.  A batch is the unit of
//! everything amortised: snapshot acquisition (one
//! [`SnapshotReader::refresh`] — a single atomic load in steady state),
//! RNG setup, and stats flushing.  Batch `b`'s queries are derived purely
//! from `(seed, b)`, and batches are assigned to workers round-robin by
//! index, so the *work* — keys, routing start hints, per-query answers —
//! is bit-identical at any thread count; only wall-clock timing varies.
//! Worker counters are integers merged after the run
//! ([`ServeCounters::merge`] commutes), which pins deterministic totals
//! and an order-independent checksum across 1..T threads.
//!
//! A wall-clock sampler can ride along, producing the same
//! [`MetricsSample`] series the virtual-time scenarios emit — the live
//! metrics endpoint the ROADMAP promised for the serve front-end.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use baton_net::serve::{ServeCounters, SnapshotCell, SnapshotReader};
use baton_net::{SimRng, SimTime};
use rand::Rng;

use crate::keys::{KeyDistribution, KeyGenerator};
use crate::openloop::{LatencySummary, MetricsSample};

/// What one serve run executes.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Total queries to admit.
    pub queries: u64,
    /// Queries per batch (the amortisation unit; clamped to at least 1).
    pub batch: usize,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Key mix the query stream draws from.
    pub distribution: KeyDistribution,
    /// `None` = exact-match queries; `Some(span)` = range queries over
    /// `[key, key + span)`.
    pub range_span: Option<u64>,
    /// Stream seed: batch `b` derives its keys from `(seed, b)` alone.
    pub seed: u64,
    /// Wall-clock interval between [`MetricsSample`]s (`None` = no
    /// sampling).
    pub sample_every: Option<Duration>,
}

impl ServeConfig {
    /// An exact-query run with the defaults the serve bench uses: batches
    /// of 256, uniform keys, no sampling.
    pub fn exact(queries: u64, threads: usize, seed: u64) -> Self {
        Self {
            queries,
            batch: 256,
            threads,
            distribution: KeyDistribution::Uniform,
            range_span: None,
            seed,
            sample_every: None,
        }
    }

    /// The same run shape over range queries of the given span.
    pub fn range(queries: u64, threads: usize, seed: u64, span: u64) -> Self {
        Self {
            range_span: Some(span),
            ..Self::exact(queries, threads, seed)
        }
    }
}

/// Aggregate outcome of one serve run.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Counters merged across workers — identical at any thread count.
    pub counters: ServeCounters,
    /// Each worker's own counters, in worker order.
    pub per_worker: Vec<ServeCounters>,
    /// Batches executed.
    pub batches: u64,
    /// Snapshot refreshes that actually swapped a worker's cached `Arc`.
    pub refreshes: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Wall-clock [`MetricsSample`] series (empty unless sampling was
    /// configured).
    pub samples: Vec<MetricsSample>,
}

impl ServeOutcome {
    /// Queries per wall-clock second.
    pub fn per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.counters.queries as f64 / secs
        } else {
            0.0
        }
    }
}

/// SplitMix64 mix of the stream seed and a batch index: the *only* source
/// of per-batch randomness, so the stream is independent of thread count.
#[inline]
fn batch_seed(seed: u64, batch: u64) -> u64 {
    let mut z = seed ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a batched serve workload against the snapshots published through
/// `cell`, from `config.threads` OS threads.
pub fn run_serve(cell: &Arc<SnapshotCell>, config: &ServeConfig) -> ServeOutcome {
    let threads = config.threads.max(1);
    let batch = config.batch.max(1) as u64;
    let batches = config.queries.div_ceil(batch);
    let executed = AtomicU64::new(0);
    let refreshes = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    // Per-batch wall latencies land here for the sampler's percentile
    // windows; one short-lived lock per *batch*, not per query.
    let batch_latencies: Mutex<Vec<SimTime>> = Mutex::new(Vec::new());
    let mut per_worker: Vec<ServeCounters> = vec![ServeCounters::default(); threads];
    let mut samples = Vec::new();
    let started = Instant::now();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let cell = Arc::clone(cell);
            let executed = &executed;
            let refreshes = &refreshes;
            let batch_latencies = &batch_latencies;
            let sampling = config.sample_every.is_some();
            let config = *config;
            handles.push(scope.spawn(move || {
                let mut reader = SnapshotReader::new(cell);
                let generator = KeyGenerator::paper(config.distribution);
                let mut counters = ServeCounters::default();
                let mut index = worker as u64;
                while index < batches {
                    let batch_started = sampling.then(Instant::now);
                    reader.refresh();
                    let snapshot = reader.snapshot();
                    let first = index * batch;
                    let last = (first + batch).min(config.queries);
                    let mut rng = SimRng::seeded(batch_seed(config.seed, index));
                    for _ in first..last {
                        let key = generator.next_key(&mut rng);
                        let hint = rng.gen::<u64>();
                        match config.range_span {
                            None => {
                                snapshot.exact(key, hint, &mut counters);
                            }
                            Some(span) => {
                                snapshot.range(key, key.saturating_add(span), hint, &mut counters);
                            }
                        }
                    }
                    executed.fetch_add(last - first, Ordering::Relaxed);
                    if let Some(at) = batch_started {
                        let micros = at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        batch_latencies
                            .lock()
                            .expect("latency sink poisoned")
                            .push(SimTime::from_micros(micros));
                    }
                    index += threads as u64;
                }
                refreshes.fetch_add(reader.refreshes, Ordering::Relaxed);
                counters
            }));
        }

        if let Some(interval) = config.sample_every {
            let mut last_total = 0u64;
            let mut tick = 0u32;
            while executed.load(Ordering::Relaxed) < config.queries && !done.load(Ordering::Relaxed)
            {
                std::thread::sleep(interval);
                tick += 1;
                let total = executed.load(Ordering::Relaxed);
                let window: Vec<SimTime> =
                    std::mem::take(&mut *batch_latencies.lock().expect("latency sink poisoned"));
                let mut classes = std::collections::BTreeMap::new();
                if let Some(summary) = LatencySummary::from_samples(&window) {
                    classes.insert("batch", summary);
                }
                let snapshot = cell.load();
                samples.push(MetricsSample {
                    at: SimTime::from_micros(
                        (u64::from(tick)).saturating_mul(interval.as_micros() as u64),
                    ),
                    executed: total - last_total,
                    ops_per_sec: (total - last_total) as f64 / interval.as_secs_f64(),
                    classes,
                    node_count: snapshot.slots(),
                    in_flight: (config.queries - total) as usize,
                    unavailable: 0,
                    repair_backlog: 0,
                    state_bytes: snapshot.estimated_bytes(),
                });
                last_total = total;
            }
        }

        for (worker, handle) in handles.into_iter().enumerate() {
            per_worker[worker] = handle.join().expect("serve worker panicked");
        }
        done.store(true, Ordering::Relaxed);
    });

    let elapsed = started.elapsed();
    let mut counters = ServeCounters::default();
    for worker in &per_worker {
        counters.merge(worker);
    }
    ServeOutcome {
        counters,
        per_worker,
        batches,
        refreshes: refreshes.load(Ordering::Relaxed),
        elapsed,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_net::serve::{ExactPlacement, SnapshotBuilder};

    fn cell() -> Arc<SnapshotCell> {
        let mut b = SnapshotBuilder::new(
            "toy",
            ExactPlacement::DomainPartition,
            true,
            (crate::keys::DOMAIN_LOW, crate::keys::DOMAIN_HIGH),
        );
        let step = (crate::keys::DOMAIN_HIGH - crate::keys::DOMAIN_LOW) / 8;
        for i in 0..8u64 {
            let high = if i == 7 {
                crate::keys::DOMAIN_HIGH
            } else {
                crate::keys::DOMAIN_LOW + (i + 1) * step
            };
            b.push_slot(i as u32, high, true);
            b.push_item(crate::keys::DOMAIN_LOW + i * step + 1, i + 1);
            b.seal_slot();
        }
        for i in 0..8usize {
            if i > 0 {
                b.link(i, i - 1, baton_net::LinkKind::Adjacent);
            }
            if i < 7 {
                b.link(i, i + 1, baton_net::LinkKind::Adjacent);
            }
        }
        Arc::new(SnapshotCell::new(b.finish()))
    }

    #[test]
    fn thread_count_never_changes_the_work() {
        let cell = cell();
        let t1 = run_serve(&cell, &ServeConfig::exact(5_000, 1, 42));
        let t2 = run_serve(&cell, &ServeConfig::exact(5_000, 2, 42));
        let t4 = run_serve(&cell, &ServeConfig::exact(5_000, 4, 42));
        assert_eq!(t1.counters, t2.counters);
        assert_eq!(t1.counters, t4.counters);
        assert_eq!(t1.counters.queries, 5_000);
        assert_eq!(t1.batches, t2.batches);
    }

    #[test]
    fn range_runs_sweep_slots() {
        let cell = cell();
        let span = (crate::keys::DOMAIN_HIGH - crate::keys::DOMAIN_LOW) / 4;
        let outcome = run_serve(&cell, &ServeConfig::range(500, 2, 7, span));
        assert_eq!(outcome.counters.queries, 500);
        assert!(
            outcome.counters.slots_swept >= 500 * 2,
            "span covers 2+ slots"
        );
    }

    #[test]
    fn zipf_mix_and_sampling_produce_a_series() {
        let cell = cell();
        let config = ServeConfig {
            queries: 20_000,
            batch: 64,
            threads: 2,
            distribution: KeyDistribution::Zipf { theta: 1.0 },
            range_span: None,
            seed: 9,
            sample_every: Some(Duration::from_millis(1)),
        };
        let outcome = run_serve(&cell, &config);
        assert_eq!(outcome.counters.queries, 20_000);
        // The sampler is wall-clock; all we pin is shape, not counts.
        for sample in &outcome.samples {
            assert_eq!(sample.node_count, 8);
            assert!(sample.state_bytes > 0);
        }
    }
}
