//! Dataset plans: the bulk loads the paper applies before measuring.
//!
//! "For a network of size N, 1000 × N data values in the domain of
//! [1, 1000000000) are inserted in batches." (§V)  Running that volume for
//! every configuration is what the paper's testbed did; the harness scales
//! it down by a configurable factor for the fast profiles while keeping the
//! full-scale plan available.

use rand::Rng;

use crate::keys::{KeyDistribution, KeyGenerator};

/// A bulk-load plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetPlan {
    /// Number of values to insert per node of the network (the paper uses
    /// 1000).
    pub values_per_node: usize,
    /// Distribution of the inserted keys.
    pub distribution: KeyDistribution,
}

impl DatasetPlan {
    /// The paper's uniform bulk load: 1000 values per node.
    pub fn paper_uniform() -> Self {
        Self {
            values_per_node: 1000,
            distribution: KeyDistribution::Uniform,
        }
    }

    /// The paper's skewed bulk load: Zipfian with parameter 1.0.
    pub fn paper_zipf() -> Self {
        Self {
            values_per_node: 1000,
            distribution: KeyDistribution::Zipf { theta: 1.0 },
        }
    }

    /// Scales the per-node volume by `factor`, keeping at least one value.
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            values_per_node: ((self.values_per_node as f64 * factor) as usize).max(1),
            ..self
        }
    }

    /// Total number of values for a network of `nodes` nodes.
    pub fn total_values(&self, nodes: usize) -> usize {
        self.values_per_node * nodes
    }

    /// Generates the `(key, value)` pairs for a network of `nodes` nodes.
    /// Values are sequence numbers, which makes losses easy to spot in
    /// tests.
    pub fn generate<R: Rng>(&self, rng: &mut R, nodes: usize) -> Vec<(u64, u64)> {
        let generator = KeyGenerator::paper(self.distribution);
        (0..self.total_values(nodes))
            .map(|i| (generator.next_key(rng), i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_net::SimRng;

    #[test]
    fn paper_plans_have_the_published_volume() {
        assert_eq!(DatasetPlan::paper_uniform().total_values(1000), 1_000_000);
        assert_eq!(DatasetPlan::paper_zipf().values_per_node, 1000);
    }

    #[test]
    fn scaling_reduces_volume_but_never_to_zero() {
        let plan = DatasetPlan::paper_uniform().scaled(0.01);
        assert_eq!(plan.values_per_node, 10);
        let tiny = DatasetPlan::paper_uniform().scaled(0.000001);
        assert_eq!(tiny.values_per_node, 1);
    }

    #[test]
    fn generate_produces_the_right_count_with_unique_values() {
        let plan = DatasetPlan::paper_uniform().scaled(0.01);
        let mut rng = SimRng::seeded(1);
        let data = plan.generate(&mut rng, 5);
        assert_eq!(data.len(), 50);
        let mut values: Vec<u64> = data.iter().map(|(_, v)| *v).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 50);
    }
}
