//! Per-peer state of the multiway-tree baseline (Liau et al. 2004, the
//! overlay the BATON paper compares against as "[10]").

use baton_net::PeerId;

use crate::range::MRange;

/// A link to another multiway-tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MLink {
    /// The target peer.
    pub peer: PeerId,
    /// The key range the target manages directly.
    pub range: MRange,
    /// The key range covered by the target's whole subtree.
    pub coverage: MRange,
}

/// State of one multiway-tree peer.
///
/// Unlike BATON, a node keeps links only to its parent, its children
/// (unbounded fan-out), and its in-order neighbours — there are no sideways
/// routing tables, no balance guarantee, and no power-of-two shortcuts.
#[derive(Clone, Debug)]
pub struct MNode {
    /// This peer's address.
    pub peer: PeerId,
    /// The range managed directly by this node.
    pub range: MRange,
    /// The range covered by this node's entire subtree (its range when it
    /// joined, before any of it was delegated to children).
    pub coverage: MRange,
    /// Parent link (`None` for the root).
    pub parent: Option<MLink>,
    /// Children, in key order of their coverage.
    pub children: Vec<MLink>,
    /// In-order predecessor by key range.
    pub left_neighbor: Option<MLink>,
    /// In-order successor by key range.
    pub right_neighbor: Option<MLink>,
    /// Stored keys, sorted.  The figures only need counts, but the
    /// cross-overlay range oracle asserts exact results, so the baseline
    /// tracks the actual multiset (values are never materialised).
    pub keys: Vec<u64>,
    /// Depth of this node (root = 0).
    pub depth: u32,
}

impl MNode {
    /// Creates a root-less node managing (and covering) `range`.
    pub fn new(peer: PeerId, range: MRange) -> Self {
        Self {
            peer,
            range,
            coverage: range,
            parent: None,
            children: Vec::new(),
            left_neighbor: None,
            right_neighbor: None,
            keys: Vec::new(),
            depth: 0,
        }
    }

    /// Number of stored data items.
    pub fn items(&self) -> usize {
        self.keys.len()
    }

    /// Inserts one key, keeping the multiset sorted.
    pub fn insert_key(&mut self, key: u64) {
        let at = self.keys.partition_point(|k| *k <= key);
        self.keys.insert(at, key);
    }

    /// Removes one occurrence of `key`; `true` if one was present.
    pub fn remove_key(&mut self, key: u64) -> bool {
        let at = self.keys.partition_point(|k| *k < key);
        if self.keys.get(at) == Some(&key) {
            self.keys.remove(at);
            true
        } else {
            false
        }
    }

    /// Number of stored occurrences of `key`.
    pub fn count_key(&self, key: u64) -> usize {
        self.keys.partition_point(|k| *k <= key) - self.keys.partition_point(|k| *k < key)
    }

    /// Number of stored keys in `[low, high)`.
    pub fn count_in(&self, low: u64, high: u64) -> usize {
        self.keys.partition_point(|k| *k < high) - self.keys.partition_point(|k| *k < low)
    }

    /// Splits off and returns every stored key `>= at`.
    pub fn split_keys_at(&mut self, at: u64) -> Vec<u64> {
        let idx = self.keys.partition_point(|k| *k < at);
        self.keys.split_off(idx)
    }

    /// Merges another sorted key multiset into this node's, preserving
    /// order.  The common cases — the heir is the in-order neighbour of a
    /// departed node, so one run entirely precedes the other — are a plain
    /// append/prepend; anything else falls back to a linear merge.
    pub fn merge_keys(&mut self, mut other: Vec<u64>) {
        debug_assert!(other.windows(2).all(|w| w[0] <= w[1]));
        if other.is_empty() {
            return;
        }
        if self.keys.last() <= other.first() {
            self.keys.append(&mut other);
        } else if other.last() <= self.keys.first() {
            other.extend_from_slice(&self.keys);
            self.keys = other;
        } else {
            let mine = std::mem::take(&mut self.keys);
            self.keys = Vec::with_capacity(mine.len() + other.len());
            let (mut a, mut b) = (mine.into_iter().peekable(), other.into_iter().peekable());
            while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
                if x <= y {
                    self.keys.push(a.next().expect("peeked"));
                } else {
                    self.keys.push(b.next().expect("peeked"));
                }
            }
            self.keys.extend(a);
            self.keys.extend(b);
        }
    }

    /// This node's link as others should record it.
    pub fn link(&self) -> MLink {
        MLink {
            peer: self.peer,
            range: self.range,
            coverage: self.coverage,
        }
    }

    /// `true` if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The child whose coverage contains `key`, if any.
    pub fn child_covering(&self, key: u64) -> Option<&MLink> {
        self.children.iter().find(|c| c.coverage.contains(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_covers_its_range() {
        let node = MNode::new(PeerId(1), MRange::new(0, 100));
        assert!(node.is_leaf());
        assert_eq!(node.depth, 0);
        assert_eq!(node.link().coverage, MRange::new(0, 100));
        assert!(node.child_covering(50).is_none());
    }

    #[test]
    fn child_covering_finds_the_right_child() {
        let mut node = MNode::new(PeerId(1), MRange::new(0, 100));
        node.children.push(MLink {
            peer: PeerId(2),
            range: MRange::new(0, 25),
            coverage: MRange::new(0, 50),
        });
        node.children.push(MLink {
            peer: PeerId(3),
            range: MRange::new(50, 75),
            coverage: MRange::new(50, 80),
        });
        assert_eq!(node.child_covering(10).unwrap().peer, PeerId(2));
        assert_eq!(node.child_covering(60).unwrap().peer, PeerId(3));
        assert!(node.child_covering(90).is_none());
        assert!(!node.is_leaf());
    }
}
