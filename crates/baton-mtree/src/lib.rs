//! # baton-mtree — multiway-tree overlay baseline
//!
//! A reconstruction of the multiway-tree P2P overlay of Liau, Ng, Shu, Tan
//! and Bressan (*"Efficient range queries and fast lookup services for
//! scalable p2p networks"*, DBISP2P 2004) — the tree-structured baseline the
//! BATON paper compares against (its reference "[10]").
//!
//! Each peer owns a tree node linked to its parent, its children (with no
//! fan-out constraint), and its in-order neighbours.  There are no sideways
//! routing tables and no balancing, so:
//!
//! * joins are cheap (the responsible node accepts the newcomer directly),
//! * departures are expensive (all children must be queried to pick a
//!   replacement),
//! * searches hop link-by-link with no logarithmic shortcuts and degrade as
//!   the tree grows unbalanced,
//!
//! which is exactly the qualitative behaviour Figure 8 of the BATON paper
//! reports for this baseline.
//!
//! ```
//! use baton_mtree::MTreeSystem;
//!
//! let mut tree = MTreeSystem::build(42, 30).unwrap();
//! tree.insert(123_456).unwrap();
//! assert_eq!(tree.search_exact(123_456).unwrap().matches, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod node;
pub mod overlay;
pub mod range;
pub mod system;

pub use baton_net::Overlay;
pub use node::{MLink, MNode};
pub use range::MRange;
pub use system::{MTreeChurnReport, MTreeError, MTreeMessage, MTreeOpReport, MTreeSystem};
