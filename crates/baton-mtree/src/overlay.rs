//! [`Overlay`] implementation for [`MTreeSystem`].
//!
//! The multiway tree preserves key order, so range queries are supported;
//! it has no load balancing and no failure-recovery protocol, which its
//! capabilities report accordingly.

use std::collections::HashMap;

use baton_net::{
    ChurnCost, LatencyModel, MessageStats, OpCost, Overlay, OverlayCapabilities, OverlayError,
    OverlayResult, PeerId, SimTime, TraceBuffer, TraceConfig,
};

use crate::system::{MTreeError, MTreeSystem};

fn op_err(error: MTreeError) -> OverlayError {
    OverlayError::Op(error.to_string())
}

impl Overlay for MTreeSystem {
    fn name(&self) -> &'static str {
        "Multiway tree"
    }

    fn capabilities(&self) -> OverlayCapabilities {
        OverlayCapabilities::PLAIN_TREE
    }

    fn node_count(&self) -> usize {
        MTreeSystem::node_count(self)
    }

    fn total_items(&self) -> usize {
        MTreeSystem::total_items(self)
    }

    fn stats(&self) -> &MessageStats {
        MTreeSystem::stats(self)
    }

    fn stats_mut(&mut self) -> &mut MessageStats {
        MTreeSystem::stats_mut(self)
    }

    fn now(&self) -> SimTime {
        MTreeSystem::now(self)
    }

    fn advance_to(&mut self, at: SimTime) {
        MTreeSystem::advance_to(self, at);
    }

    fn set_latency_model(&mut self, model: LatencyModel) {
        MTreeSystem::set_latency_model(self, model);
    }

    fn estimated_state_bytes(&self) -> u64 {
        MTreeSystem::estimated_state_bytes(self)
    }

    fn set_trace(&mut self, config: TraceConfig) {
        MTreeSystem::set_trace(self, config);
    }

    fn take_trace(&mut self) -> Option<TraceBuffer> {
        MTreeSystem::take_trace(self)
    }

    fn routing_snapshot(&self) -> Option<baton_net::serve::RoutingSnapshot> {
        Some(self.build_routing_snapshot())
    }

    fn join_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = MTreeSystem::join_random(self).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn peers(&self) -> &[PeerId] {
        MTreeSystem::peers(self)
    }

    fn leave_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = MTreeSystem::leave_random(self).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn leave_peer(&mut self, peer: PeerId) -> OverlayResult<ChurnCost> {
        let report = MTreeSystem::leave(self, peer).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn insert(&mut self, key: u64, _value: u64) -> OverlayResult<OpCost> {
        // The baseline tracks key multisets; values are not materialised.
        let report = MTreeSystem::insert(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: 0,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn delete(&mut self, key: u64) -> OverlayResult<OpCost> {
        let report = MTreeSystem::delete(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn search_exact(&mut self, key: u64) -> OverlayResult<OpCost> {
        let report = MTreeSystem::search_exact(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn search_range(&mut self, low: u64, high: u64) -> OverlayResult<OpCost> {
        let report = MTreeSystem::search_range(self, low, high).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn access_load_by_level(&self) -> Vec<(u32, f64)> {
        let mut per_level: HashMap<u32, (u64, u64)> = HashMap::new();
        for (peer, node) in self.nodes() {
            let received = self.stats().received_count(peer);
            let entry = per_level.entry(node_depth(node)).or_insert((0, 0));
            entry.0 += received;
            entry.1 += 1;
        }
        let mut levels: Vec<(u32, f64)> = per_level
            .into_iter()
            .map(|(level, (msgs, count))| (level, msgs as f64 / count.max(1) as f64))
            .collect();
        levels.sort_unstable_by_key(|(l, _)| *l);
        levels
    }

    fn replication(&self) -> usize {
        MTreeSystem::replication(self)
    }

    fn set_replication(&mut self, k: usize) -> OverlayResult<()> {
        MTreeSystem::set_replication(self, k).map_err(op_err)
    }

    fn validate(&self) -> Result<(), String> {
        MTreeSystem::validate(self)
    }
}

fn node_depth(node: &crate::node::MNode) -> u32 {
    node.depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtree_through_the_trait_supports_ranges_but_not_failures() {
        let mut overlay: Box<dyn Overlay> = Box::new(MTreeSystem::build(1, 40).unwrap());
        assert_eq!(overlay.name(), "Multiway tree");
        let caps = overlay.capabilities();
        assert!(caps.range_queries);
        assert!(!caps.load_balancing);
        assert!(!caps.failures);

        overlay.insert(123_456, 99).unwrap();
        assert_eq!(overlay.search_exact(123_456).unwrap().matches, 1);
        let range = overlay.search_range(1, 1_000_000_000).unwrap();
        assert!(range.nodes_visited >= 1);
        assert!(overlay.fail_random().is_err());
        assert!(overlay.balance_shift_histogram().is_none());

        overlay.join_random().unwrap();
        overlay.leave_random().unwrap();
        assert_eq!(overlay.node_count(), 40);
        overlay.validate().unwrap();
    }

    #[test]
    fn mtree_reports_per_level_access_load() {
        let mut overlay: Box<dyn Overlay> = Box::new(MTreeSystem::build(2, 60).unwrap());
        for i in 0..100u64 {
            overlay.search_exact(1 + i * 9_999_991).unwrap();
        }
        let by_level = overlay.access_load_by_level();
        assert!(!by_level.is_empty());
        assert!(by_level.iter().any(|(_, load)| *load > 0.0));
    }
}
