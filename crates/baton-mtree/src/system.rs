//! The multiway-tree overlay simulation (the paper's baseline "[10]",
//! Liau et al. 2004).
//!
//! Structure, as summarised in §II of the BATON paper: each peer owns a tree
//! node linked to its parent, its children (with **no constraint on
//! fan-out**), its siblings and its neighbours; there are no sideways
//! routing tables and no balancing.  Consequences the paper's evaluation
//! highlights and that this implementation reproduces:
//!
//! * joins are cheap (the responsible node accepts the newcomer directly),
//! * departures are expensive (the departing node must gather information
//!   from *all* of its children to pick and install a replacement),
//! * searches hop link by link — down through children coverage, up through
//!   parents — with no logarithmic sideways shortcuts, so they cost more
//!   than BATON's and degrade further when the tree grows unbalanced under
//!   skewed splits,
//! * the tree is not height-balanced; with skewed join points it degenerates.

use std::collections::HashMap;

use baton_net::{LinkKind, NetMessage, OpScope, PeerId, SimNetwork, SimRng};

use crate::node::{MLink, MNode};
use crate::range::MRange;

/// Protocol messages of the multiway-tree baseline.
#[derive(Clone, Debug)]
pub enum MTreeMessage {
    /// Join request being routed to the responsible node.
    Join,
    /// Search / insert / delete request being routed.
    Search,
    /// Departure traffic (children queries, replacement installation).
    Leave,
    /// Link maintenance notifications.
    Maintenance,
}

impl NetMessage for MTreeMessage {
    fn kind(&self) -> &'static str {
        match self {
            MTreeMessage::Join => "mtree.join",
            MTreeMessage::Search => "mtree.search",
            MTreeMessage::Leave => "mtree.leave",
            MTreeMessage::Maintenance => "mtree.maintenance",
        }
    }
}

/// Errors of the multiway-tree baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MTreeError {
    /// The referenced peer does not exist.
    UnknownPeer(PeerId),
    /// The overlay is empty.
    Empty,
    /// The last node cannot leave.
    LastNode,
    /// The key is outside the indexed domain.
    KeyOutOfDomain(u64),
    /// The requested replication degree is outside the supported range.
    ReplicationUnsupported(usize),
}

impl std::fmt::Display for MTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MTreeError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            MTreeError::Empty => write!(f, "the overlay is empty"),
            MTreeError::LastNode => write!(f, "the last node cannot leave"),
            MTreeError::KeyOutOfDomain(k) => write!(f, "key {k} outside the domain"),
            MTreeError::ReplicationUnsupported(k) => write!(
                f,
                "replication degree {k} outside 1..={}",
                MTreeSystem::MAX_REPLICATION
            ),
        }
    }
}

impl std::error::Error for MTreeError {}

/// Result alias for multiway-tree operations.
pub type Result<T> = std::result::Result<T, MTreeError>;

/// Cost report of a join or departure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MTreeChurnReport {
    /// Messages to find the node that accepts the newcomer / to gather the
    /// information needed to pick a replacement.
    pub locate_messages: u64,
    /// Messages to update links afterwards.
    pub update_messages: u64,
}

/// Cost report of a routed operation (search, insert, delete).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MTreeOpReport {
    /// Messages used.
    pub messages: u64,
    /// Number of matches (exact and range queries).
    pub matches: usize,
    /// Nodes visited by a range query.
    pub nodes_visited: usize,
}

/// The multiway-tree overlay.
#[derive(Debug)]
pub struct MTreeSystem {
    net: SimNetwork<MTreeMessage>,
    nodes: HashMap<PeerId, MNode>,
    /// Every live peer, kept sorted by [`PeerId`] — the order the old
    /// collect-and-sort `random_peer` sampled from, so seeded experiments
    /// keep their exact message counts while sampling is O(1).
    peer_list: Vec<PeerId>,
    root: Option<PeerId>,
    domain: MRange,
    rng: SimRng,
    /// Replication degree k: each key lives at its routed owner plus its
    /// k−1 in-order neighbours.  1 = no replication (the default and the
    /// byte-identical legacy configuration).
    replication: usize,
}

impl MTreeSystem {
    /// Creates an empty overlay over the paper's `[1, 10^9)` domain.
    pub fn new(seed: u64) -> Self {
        Self::with_domain(seed, MRange::new(1, 1_000_000_000))
    }

    /// Creates an empty overlay over an explicit domain.
    pub fn with_domain(seed: u64, domain: MRange) -> Self {
        Self {
            net: SimNetwork::new(),
            nodes: HashMap::new(),
            peer_list: Vec::new(),
            root: None,
            domain,
            rng: SimRng::seeded(seed),
            replication: 1,
        }
    }

    /// Builds an overlay of `n` nodes.
    pub fn build(seed: u64, n: usize) -> Result<Self> {
        let mut system = Self::new(seed);
        for _ in 0..n {
            system.join_random()?;
        }
        Ok(system)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident bytes of per-peer protocol state: the node map
    /// (hash-table slots at the ~8/7 load-factor reciprocal), every node's
    /// child-link and key vectors, and the sampling list.  The shared
    /// network substrate is excluded.  The node-map component is modelled
    /// from `len()`, not `capacity()`: after churn the hash table's
    /// allocated capacity depends on the per-process `RandomState` seed,
    /// and this estimate is sampled into deterministic scenario time
    /// series.
    pub fn estimated_state_bytes(&self) -> u64 {
        let slot = std::mem::size_of::<(PeerId, MNode)>() as u64 + 1;
        let map = self.nodes.len() as u64 * slot * 8 / 7;
        let heap: u64 = self
            .nodes
            .values()
            .map(|node| {
                (node.children.capacity() * std::mem::size_of::<MLink>()
                    + node.keys.capacity() * std::mem::size_of::<u64>()) as u64
            })
            .sum();
        let peers = (self.peer_list.capacity() * std::mem::size_of::<PeerId>()) as u64;
        map + heap + peers
    }

    /// All peers, sorted by id — a borrowed view of the sampling list.
    pub fn peers(&self) -> &[PeerId] {
        &self.peer_list
    }

    /// Iterates over `(peer, node)` pairs in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = (PeerId, &MNode)> + '_ {
        self.nodes.iter().map(|(p, n)| (*p, n))
    }

    /// Height of the tree (max depth + 1); 0 when empty.
    pub fn height(&self) -> u32 {
        self.nodes.values().map(|n| n.depth + 1).max().unwrap_or(0)
    }

    /// Network statistics.
    pub fn stats(&self) -> &baton_net::MessageStats {
        self.net.stats()
    }

    /// Mutable network statistics (harnesses reset per-peer counters
    /// between experiment phases).
    pub fn stats_mut(&mut self) -> &mut baton_net::MessageStats {
        self.net.stats_mut()
    }

    /// Virtual time the overlay's network has reached.
    pub fn now(&self) -> baton_net::SimTime {
        self.net.now()
    }

    /// Advances the network's arrival clock (see
    /// [`baton_net::SimNetwork::advance_to`]).
    pub fn advance_to(&mut self, at: baton_net::SimTime) {
        self.net.advance_to(at);
    }

    /// Installs a route recorder on the underlying network (see
    /// [`SimNetwork::set_trace`](baton_net::SimNetwork::set_trace)).
    pub fn set_trace(&mut self, config: baton_net::TraceConfig) {
        self.net.set_trace(config);
    }

    /// Removes and returns the route recorder, disabling tracing.
    pub fn take_trace(&mut self) -> Option<baton_net::TraceBuffer> {
        self.net.take_trace()
    }

    /// Replaces the network's link-latency model.
    pub fn set_latency_model(&mut self, model: baton_net::LatencyModel) {
        self.net.set_latency_model(model);
    }

    /// Total stored items.
    pub fn total_items(&self) -> usize {
        self.nodes.values().map(|n| n.items()).sum()
    }

    fn node(&self, peer: PeerId) -> Result<&MNode> {
        self.nodes.get(&peer).ok_or(MTreeError::UnknownPeer(peer))
    }

    fn node_mut(&mut self, peer: PeerId) -> Result<&mut MNode> {
        self.nodes
            .get_mut(&peer)
            .ok_or(MTreeError::UnknownPeer(peer))
    }

    fn random_peer(&mut self) -> Option<PeerId> {
        if self.peer_list.is_empty() {
            return None;
        }
        let idx = self.rng.index(self.peer_list.len());
        Some(self.peer_list[idx])
    }

    /// Adds `peer` to the node map and the sorted sampling list.
    fn register_node(&mut self, peer: PeerId, node: MNode) {
        if let Err(idx) = self.peer_list.binary_search(&peer) {
            self.peer_list.insert(idx, peer);
        }
        self.nodes.insert(peer, node);
    }

    /// Removes `peer` from the node map and the sampling list.
    fn unregister_node(&mut self, peer: PeerId) -> Option<MNode> {
        if let Ok(idx) = self.peer_list.binary_search(&peer) {
            self.peer_list.remove(idx);
        }
        self.nodes.remove(&peer)
    }

    /// Routes from `issuer` to the node whose direct range contains `key`:
    /// up through parents until the coverage contains the key, then down
    /// through the covering children — one message per hop, no sideways
    /// shortcuts.
    fn route_to_owner(&mut self, op: OpScope, issuer: PeerId, key: u64) -> Result<(PeerId, u64)> {
        let mut current = issuer;
        let mut messages = 0u64;
        let limit = 4 * self.height() as u64 + self.node_count() as u64 + 8;
        loop {
            let node = self.node(current)?;
            if node.range.contains(key) {
                return Ok((current, messages));
            }
            let (next, kind) = if node.coverage.contains(key) {
                match node.child_covering(key) {
                    Some(child) => (child.peer, LinkKind::Child),
                    None => return Ok((current, messages)),
                }
            } else {
                match &node.parent {
                    Some(p) => (p.peer, LinkKind::Parent),
                    None => return Ok((current, messages)),
                }
            };
            self.net
                .send_with_kind(
                    op,
                    current,
                    next,
                    messages as u32 + 1,
                    kind,
                    MTreeMessage::Search,
                )
                .ok();
            let _ = self.net.deliver_next();
            messages += 1;
            current = next;
            if messages > limit {
                return Ok((current, messages));
            }
        }
    }

    /// A new node joins: the request is routed to the node owning a random
    /// point of the key space, which accepts the newcomer as a child
    /// directly (fan-out is unconstrained) and hands it half of its range.
    pub fn join_random(&mut self) -> Result<MTreeChurnReport> {
        let peer = self.net.add_peer();
        let op = self.net.begin_op("mtree.join");
        if self.nodes.is_empty() {
            let node = MNode::new(peer, self.domain);
            self.root = Some(peer);
            self.register_node(peer, node);
            self.net.finish_op(op);
            return Ok(MTreeChurnReport::default());
        }
        let contact = self.random_peer().expect("non-empty");
        let split_point = self.rng.uniform_u64(self.domain.low, self.domain.high);
        let (acceptor, locate_messages) = self.route_to_owner(op, contact, split_point)?;

        // The acceptor hands the upper half of its direct range to the new
        // child; the child's coverage is exactly that half.  Stored keys in
        // the handed-over half move with it (no extra messages: the paper's
        // model piggybacks the data on the accept message).
        let mut update_messages = 0u64;
        let (child_range, child_keys, acceptor_link, child_depth, sibling_count) = {
            let acceptor_node = self.node_mut(acceptor)?;
            let (keep, give) = acceptor_node.range.split_half();
            if give.width() == 0 {
                // Cannot split further; attach with an empty range.
                let link = acceptor_node.link();
                (
                    give,
                    Vec::new(),
                    link,
                    acceptor_node.depth + 1,
                    acceptor_node.children.len(),
                )
            } else {
                acceptor_node.range = keep;
                let moved = acceptor_node.split_keys_at(give.low);
                let link = acceptor_node.link();
                (
                    give,
                    moved,
                    link,
                    acceptor_node.depth + 1,
                    acceptor_node.children.len(),
                )
            }
        };
        let mut child = MNode::new(peer, child_range);
        child.keys = child_keys;
        child.parent = Some(acceptor_link);
        child.depth = child_depth;
        // In-order neighbours: the child slots immediately after the
        // acceptor's (shrunken) direct range.
        let old_right = self.node(acceptor)?.right_neighbor;
        child.left_neighbor = Some(acceptor_link);
        child.right_neighbor = old_right;
        let child_link = child.link();
        self.register_node(peer, child);
        {
            let acceptor_node = self.node_mut(acceptor)?;
            acceptor_node.children.push(child_link);
            acceptor_node.right_neighbor = Some(child_link);
        }
        if let Some(old_right) = old_right {
            if let Some(n) = self.nodes.get_mut(&old_right.peer) {
                n.left_neighbor = Some(child_link);
            }
            self.net
                .count_message(op, "mtree.maintenance", peer, old_right.peer);
            update_messages += 1;
        }
        // Accept message + notify the existing siblings about the newcomer.
        self.net
            .count_message(op, "mtree.maintenance", acceptor, peer);
        update_messages += 1;
        let siblings: Vec<PeerId> = self
            .node(acceptor)?
            .children
            .iter()
            .map(|c| c.peer)
            .filter(|p| *p != peer)
            .collect();
        for sibling in siblings {
            self.net
                .count_message(op, "mtree.maintenance", acceptor, sibling);
            update_messages += 1;
        }
        debug_assert_eq!(sibling_count, self.node(acceptor)?.children.len() - 1);
        // The acceptor's direct range changed: tell its parent and neighbours.
        let to_refresh: Vec<PeerId> = {
            let a = self.node(acceptor)?;
            a.parent
                .iter()
                .map(|l| l.peer)
                .chain(a.left_neighbor.iter().map(|l| l.peer))
                .collect()
        };
        let acceptor_link_now = self.node(acceptor)?.link();
        for other in to_refresh {
            self.net
                .count_message(op, "mtree.maintenance", acceptor, other);
            update_messages += 1;
            if let Some(n) = self.nodes.get_mut(&other) {
                for c in &mut n.children {
                    if c.peer == acceptor {
                        *c = acceptor_link_now;
                    }
                }
                if n.right_neighbor.map(|l| l.peer) == Some(acceptor) {
                    n.right_neighbor = Some(acceptor_link_now);
                }
                if n.left_neighbor.map(|l| l.peer) == Some(acceptor) {
                    n.left_neighbor = Some(acceptor_link_now);
                }
            }
        }

        self.net.finish_op(op);
        Ok(MTreeChurnReport {
            locate_messages: locate_messages.max(1),
            update_messages,
        })
    }

    /// A node leaves: it must query **all** of its children to pick a
    /// replacement (this is what makes multiway-tree departures expensive),
    /// the replacement absorbs its range and items, and every link to the
    /// departed node is repointed.
    pub fn leave(&mut self, peer: PeerId) -> Result<MTreeChurnReport> {
        if self.nodes.len() <= 1 {
            return Err(MTreeError::LastNode);
        }
        let op = self.net.begin_op("mtree.leave");
        let departing = self
            .nodes
            .get(&peer)
            .cloned()
            .ok_or(MTreeError::UnknownPeer(peer))?;

        // Gather information from every child (one query + one response per
        // child) to select the replacement.
        let mut locate_messages = 0u64;
        for child in &departing.children {
            self.net.count_message(op, "mtree.leave", peer, child.peer);
            self.net.count_message(op, "mtree.leave", child.peer, peer);
            locate_messages += 2;
        }

        let mut update_messages = 0u64;
        self.unregister_node(peer);
        self.net.depart_peer(peer);

        if departing.children.is_empty() {
            // Leaf: its direct range and items return to its in-order
            // predecessor (or successor), which keeps the range partition
            // contiguous.
            let heir = departing
                .left_neighbor
                .map(|l| l.peer)
                .or_else(|| departing.right_neighbor.map(|l| l.peer))
                .expect("multi-node tree has a neighbour");
            {
                let h = self.node_mut(heir)?;
                h.merge_keys(departing.keys.clone());
                if h.range.high == departing.range.low {
                    h.range = MRange::new(h.range.low, departing.range.high);
                    if h.coverage.high == departing.range.low {
                        h.coverage = MRange::new(h.coverage.low, departing.range.high);
                    }
                } else if h.range.low == departing.range.high {
                    h.range = MRange::new(departing.range.low, h.range.high);
                    if h.coverage.low == departing.range.high {
                        h.coverage = MRange::new(departing.range.low, h.coverage.high);
                    }
                }
            }
            self.net.count_message(op, "mtree.leave", peer, heir);
            update_messages += 1;
            // Unlink from the parent's child list and from the neighbours.
            if let Some(parent) = departing.parent {
                if let Some(p) = self.nodes.get_mut(&parent.peer) {
                    p.children.retain(|c| c.peer != peer);
                }
                self.net
                    .count_message(op, "mtree.maintenance", peer, parent.peer);
                update_messages += 1;
            }
            update_messages += self.splice_neighbors(op, &departing)?;
        } else {
            // Internal node: promote the child that is the departing node's
            // in-order successor (the one whose coverage starts where the
            // departing node's direct range ends), so absorbing the
            // departing node's direct range keeps the partition contiguous.
            let replacement = departing
                .children
                .iter()
                .find(|c| c.coverage.low == departing.range.high)
                .or_else(|| departing.children.last())
                .expect("non-empty")
                .peer;
            let mut absorber: Option<PeerId> = None;
            {
                let r = self.node_mut(replacement)?;
                r.coverage = departing.coverage;
                if r.range.low == departing.range.high {
                    // The replacement is the departing node's in-order
                    // successor: absorb its direct range contiguously.
                    r.range = MRange::new(departing.range.low, r.range.high);
                    absorber = Some(replacement);
                }
                r.parent = departing.parent;
                r.depth = departing.depth;
            }
            if absorber.is_none() {
                // Hand the departing node's direct range to its in-order
                // predecessor (or successor) instead, keeping the partition
                // contiguous.
                if let Some(l) = departing.left_neighbor {
                    if let Some(ln) = self.nodes.get_mut(&l.peer) {
                        if ln.range.high == departing.range.low {
                            ln.range = MRange::new(ln.range.low, departing.range.high);
                            absorber = Some(l.peer);
                        }
                    }
                }
                if absorber.is_none() {
                    if let Some(r) = departing.right_neighbor {
                        if let Some(rn) = self.nodes.get_mut(&r.peer) {
                            if rn.range.low == departing.range.high {
                                rn.range = MRange::new(departing.range.low, rn.range.high);
                                absorber = Some(r.peer);
                            }
                        }
                    }
                }
            }
            // The stored keys follow the direct range to whichever node
            // absorbed it (the replacement, degenerately, if none did).
            let keys_heir = absorber.unwrap_or(replacement);
            self.node_mut(keys_heir)?.merge_keys(departing.keys.clone());
            self.net.count_message(op, "mtree.leave", peer, replacement);
            update_messages += 1;
            // The departing node's other children become the replacement's
            // children; each must be told about its new parent.
            let replacement_link = self.node(replacement)?.link();
            let others: Vec<MLink> = departing
                .children
                .iter()
                .copied()
                .filter(|c| c.peer != replacement)
                .collect();
            for child in &others {
                if let Some(c) = self.nodes.get_mut(&child.peer) {
                    c.parent = Some(replacement_link);
                }
                self.net
                    .count_message(op, "mtree.maintenance", replacement, child.peer);
                update_messages += 1;
            }
            {
                let r = self.node_mut(replacement)?;
                r.children.extend(others);
            }
            // The replacement's own children must also learn its new link.
            let grandchildren: Vec<PeerId> = self
                .node(replacement)?
                .children
                .iter()
                .map(|c| c.peer)
                .collect();
            for gc in grandchildren {
                if let Some(c) = self.nodes.get_mut(&gc) {
                    if let Some(p) = &mut c.parent {
                        if p.peer == replacement {
                            *p = replacement_link;
                        }
                    }
                }
                self.net
                    .count_message(op, "mtree.maintenance", replacement, gc);
                update_messages += 1;
            }
            // Repoint the departed node's parent and neighbours.
            if let Some(parent) = departing.parent {
                if let Some(p) = self.nodes.get_mut(&parent.peer) {
                    p.children.retain(|c| c.peer != peer);
                    p.children.push(replacement_link);
                }
                self.net
                    .count_message(op, "mtree.maintenance", replacement, parent.peer);
                update_messages += 1;
            } else {
                self.root = Some(replacement);
            }
            update_messages += self.splice_neighbors(op, &departing)?;
        }

        self.net.finish_op(op);
        Ok(MTreeChurnReport {
            locate_messages,
            update_messages,
        })
    }

    /// A random node leaves.
    pub fn leave_random(&mut self) -> Result<MTreeChurnReport> {
        let peer = self.random_peer().ok_or(MTreeError::Empty)?;
        self.leave(peer)
    }

    fn splice_neighbors(&mut self, op: OpScope, departing: &MNode) -> Result<u64> {
        let mut messages = 0u64;
        if let (Some(l), Some(r)) = (departing.left_neighbor, departing.right_neighbor) {
            if let Some(ln) = self.nodes.get_mut(&l.peer) {
                ln.right_neighbor = Some(r);
            }
            if let Some(rn) = self.nodes.get_mut(&r.peer) {
                rn.left_neighbor = Some(l);
            }
            self.net
                .count_message(op, "mtree.maintenance", departing.peer, l.peer);
            self.net
                .count_message(op, "mtree.maintenance", departing.peer, r.peer);
            messages += 2;
        } else if let Some(l) = departing.left_neighbor {
            if let Some(ln) = self.nodes.get_mut(&l.peer) {
                ln.right_neighbor = None;
            }
            self.net
                .count_message(op, "mtree.maintenance", departing.peer, l.peer);
            messages += 1;
        } else if let Some(r) = departing.right_neighbor {
            if let Some(rn) = self.nodes.get_mut(&r.peer) {
                rn.left_neighbor = None;
            }
            self.net
                .count_message(op, "mtree.maintenance", departing.peer, r.peer);
            messages += 1;
        }
        Ok(messages)
    }

    /// The replication degree k in effect (1 = no replication).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Highest replication degree the neighbour-link placement supports:
    /// the owner plus its two in-order neighbours.
    pub const MAX_REPLICATION: usize = 3;

    /// Sets the replication degree: each key's k−1 extra copies live on the
    /// owner's in-order neighbours.
    pub fn set_replication(&mut self, k: usize) -> Result<()> {
        if k == 0 || k > Self::MAX_REPLICATION {
            return Err(MTreeError::ReplicationUnsupported(k));
        }
        self.replication = k;
        Ok(())
    }

    /// The in-order neighbours holding the k−1 replica copies of `peer`'s
    /// keys: the right neighbour first, then the left.  Empty at k = 1.
    pub fn replica_targets(&self, peer: PeerId) -> Vec<PeerId> {
        if self.replication <= 1 {
            return Vec::new();
        }
        let Some(node) = self.nodes.get(&peer) else {
            return Vec::new();
        };
        let mut targets = Vec::new();
        for link in [node.right_neighbor, node.left_neighbor]
            .into_iter()
            .flatten()
        {
            if link.peer != peer && !targets.contains(&link.peer) {
                targets.push(link.peer);
            }
        }
        targets.truncate(self.replication - 1);
        targets
    }

    /// Charges the replica-copy messages a write at `owner` costs at k > 1.
    fn charge_replica_copies(&mut self, op: OpScope, owner: PeerId) -> u64 {
        let mut copies = 0u64;
        for target in self.replica_targets(owner) {
            self.net.count_message(op, "mtree.replica", owner, target);
            copies += 1;
        }
        copies
    }

    /// Inserts a value under `key`.
    pub fn insert(&mut self, key: u64) -> Result<MTreeOpReport> {
        if !self.domain.contains(key) {
            return Err(MTreeError::KeyOutOfDomain(key));
        }
        let issuer = self.random_peer().ok_or(MTreeError::Empty)?;
        let op = self.net.begin_op("mtree.insert");
        let (owner, mut messages) = self.route_to_owner(op, issuer, key)?;
        self.node_mut(owner)?.insert_key(key);
        messages += self.charge_replica_copies(op, owner);
        self.net.finish_op(op);
        Ok(MTreeOpReport {
            messages,
            matches: 0,
            nodes_visited: 1,
        })
    }

    /// Deletes one stored occurrence of `key`, if any.
    pub fn delete(&mut self, key: u64) -> Result<MTreeOpReport> {
        if !self.domain.contains(key) {
            return Err(MTreeError::KeyOutOfDomain(key));
        }
        let issuer = self.random_peer().ok_or(MTreeError::Empty)?;
        let op = self.net.begin_op("mtree.delete");
        let (owner, mut messages) = self.route_to_owner(op, issuer, key)?;
        let removed = usize::from(self.node_mut(owner)?.remove_key(key));
        if removed > 0 {
            messages += self.charge_replica_copies(op, owner);
        }
        self.net.finish_op(op);
        Ok(MTreeOpReport {
            messages,
            matches: removed,
            nodes_visited: 1,
        })
    }

    /// Exact-match query for `key`.
    pub fn search_exact(&mut self, key: u64) -> Result<MTreeOpReport> {
        if !self.domain.contains(key) {
            return Err(MTreeError::KeyOutOfDomain(key));
        }
        let issuer = self.random_peer().ok_or(MTreeError::Empty)?;
        let op = self.net.begin_op("mtree.search");
        let (owner, messages) = self.route_to_owner(op, issuer, key)?;
        let matches = self.node(owner)?.count_key(key);
        self.net.finish_op(op);
        Ok(MTreeOpReport {
            messages,
            matches,
            nodes_visited: 1,
        })
    }

    /// Range query: find the first intersecting node, then walk right
    /// neighbours one by one.
    pub fn search_range(&mut self, low: u64, high: u64) -> Result<MTreeOpReport> {
        let issuer = self.random_peer().ok_or(MTreeError::Empty)?;
        let op = self.net.begin_op("mtree.range");
        let start_key = low.max(self.domain.low).min(self.domain.high - 1);
        let (mut current, mut messages) = self.route_to_owner(op, issuer, start_key)?;
        let range = MRange::new(low.max(self.domain.low), high.min(self.domain.high));
        let mut nodes_visited = 0usize;
        let mut matches = 0usize;
        let limit = self.node_count() + 2;
        loop {
            let node = self.node(current)?;
            nodes_visited += 1;
            if node.range.intersects(range) {
                matches += node.count_in(range.low, range.high);
            }
            if node.range.high >= range.high {
                break;
            }
            let Some(next) = node.right_neighbor.map(|l| l.peer) else {
                break;
            };
            self.net
                .send_with_kind(
                    op,
                    current,
                    next,
                    nodes_visited as u32,
                    LinkKind::Neighbor,
                    MTreeMessage::Search,
                )
                .ok();
            let _ = self.net.deliver_next();
            messages += 1;
            current = next;
            if nodes_visited > limit {
                break;
            }
        }
        self.net.finish_op(op);
        Ok(MTreeOpReport {
            messages,
            matches,
            nodes_visited,
        })
    }

    /// Basic structural validation: children are reachable, parents point
    /// back, coverage nests, and every key of the domain is owned by exactly
    /// one node's direct range.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        for (peer, node) in &self.nodes {
            for child in &node.children {
                let c = self
                    .nodes
                    .get(&child.peer)
                    .ok_or_else(|| format!("{peer} lists missing child {}", child.peer))?;
                if c.parent.map(|l| l.peer) != Some(*peer) {
                    return Err(format!(
                        "child {} does not point back at {peer}",
                        child.peer
                    ));
                }
            }
            if let Some(parent) = &node.parent {
                let p = self
                    .nodes
                    .get(&parent.peer)
                    .ok_or_else(|| format!("{peer} has missing parent {}", parent.peer))?;
                if !p.children.iter().any(|c| c.peer == *peer) {
                    return Err(format!("parent {} does not list {peer}", parent.peer));
                }
            }
        }
        // Direct ranges partition the domain.
        let mut ranges: Vec<MRange> = self.nodes.values().map(|n| n.range).collect();
        ranges.sort_by_key(|r| r.low);
        if ranges.first().unwrap().low != self.domain.low
            || ranges.last().unwrap().high != self.domain.high
        {
            return Err("direct ranges do not span the domain".into());
        }
        for pair in ranges.windows(2) {
            if pair[0].high != pair[1].low {
                return Err(format!("gap between {} and {}", pair[0], pair[1]));
            }
        }
        Ok(())
    }

    /// Builds a [`baton_net::serve::RoutingSnapshot`] of the tree's current
    /// state for the concurrent serve front-end: slots are the nodes in key
    /// order (their direct ranges partition the domain), items are the
    /// sorted key multisets run-length-encoded, links carry the
    /// parent/child tree edges and the in-order neighbour chain range
    /// sweeps walk, and replicas are the in-order replica targets of the
    /// k-replica capability.  Extraction is read-only.
    pub fn build_routing_snapshot(&self) -> baton_net::serve::RoutingSnapshot {
        use baton_net::serve::{ExactPlacement, SnapshotBuilder};

        let mut builder = SnapshotBuilder::new(
            "Multiway tree",
            ExactPlacement::DomainPartition,
            true,
            (self.domain.low, self.domain.high),
        );
        let mut order: Vec<&MNode> = self.nodes.values().collect();
        order.sort_by_key(|node| node.range.low);
        for node in &order {
            builder.push_slot(node.peer.0, node.range.high, true);
            let mut run: Option<(u64, u64)> = None;
            for &key in &node.keys {
                match &mut run {
                    Some((k, count)) if *k == key => *count += 1,
                    _ => {
                        if let Some((k, count)) = run.take() {
                            builder.push_item(k, count);
                        }
                        run = Some((key, 1));
                    }
                }
            }
            if let Some((k, count)) = run {
                builder.push_item(k, count);
            }
            builder.seal_slot();
        }
        for (slot, node) in order.iter().enumerate() {
            if let Some(parent) = &node.parent {
                if let Some(target) = builder.slot_of(parent.peer.0) {
                    builder.link(slot, target, LinkKind::Parent);
                }
            }
            for child in &node.children {
                if let Some(target) = builder.slot_of(child.peer.0) {
                    builder.link(slot, target, LinkKind::Child);
                }
            }
            for neighbor in [&node.left_neighbor, &node.right_neighbor]
                .into_iter()
                .flatten()
            {
                if let Some(target) = builder.slot_of(neighbor.peer.0) {
                    builder.link(slot, target, LinkKind::Neighbor);
                }
            }
            for target in self.replica_targets(node.peer) {
                if let Some(t) = builder.slot_of(target.0) {
                    builder.replica(slot, t);
                }
            }
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_a_consistent_tree() {
        for n in [1usize, 2, 10, 64, 200] {
            let system = MTreeSystem::build(5, n).unwrap();
            assert_eq!(system.node_count(), n);
            system
                .validate()
                .unwrap_or_else(|e| panic!("{n}-node tree invalid: {e}"));
        }
    }

    #[test]
    fn join_is_cheap_but_tree_may_be_unbalanced() {
        let mut system = MTreeSystem::build(7, 200).unwrap();
        let report = system.join_random().unwrap();
        assert!(report.locate_messages >= 1);
        // No balance guarantee: the height may exceed the balanced bound.
        assert!(system.height() >= (system.node_count() as f64).log2() as u32);
    }

    #[test]
    fn search_reaches_the_owner() {
        let mut system = MTreeSystem::build(9, 100).unwrap();
        system.insert(123_456).unwrap();
        let report = system.search_exact(123_456).unwrap();
        assert_eq!(report.matches, 1);
        assert!(report.messages > 0);
    }

    #[test]
    fn leave_cost_grows_with_children() {
        let mut system = MTreeSystem::build(11, 150).unwrap();
        // Find the node with the most children and make it leave.
        let busiest = system
            .peers()
            .iter()
            .copied()
            .max_by_key(|p| system.node(*p).unwrap().children.len())
            .unwrap();
        let child_count = system.node(busiest).unwrap().children.len() as u64;
        let report = system.leave(busiest).unwrap();
        assert!(report.locate_messages >= 2 * child_count);
        system.validate().unwrap();
    }

    #[test]
    fn churn_keeps_structure_valid() {
        let mut system = MTreeSystem::build(13, 60).unwrap();
        for round in 0..60 {
            if round % 3 == 0 && system.node_count() > 2 {
                system.leave_random().unwrap();
            } else {
                system.join_random().unwrap();
            }
            system
                .validate()
                .unwrap_or_else(|e| panic!("invalid after round {round}: {e}"));
        }
    }

    #[test]
    fn range_query_visits_consecutive_nodes() {
        let mut system = MTreeSystem::build(15, 50).unwrap();
        let report = system.search_range(1, 1_000_000_000).unwrap();
        assert!(report.nodes_visited >= system.node_count() / 2);
    }

    #[test]
    fn errors_for_bad_inputs() {
        let mut system = MTreeSystem::build(17, 3).unwrap();
        assert!(matches!(
            system.search_exact(0),
            Err(MTreeError::KeyOutOfDomain(0))
        ));
        let mut empty = MTreeSystem::new(1);
        assert!(matches!(empty.search_range(1, 2), Err(MTreeError::Empty)));
        let only = MTreeSystem::build(19, 1).unwrap().peers()[0];
        let mut single = MTreeSystem::build(19, 1).unwrap();
        assert_eq!(single.leave(only).unwrap_err(), MTreeError::LastNode);
    }
}
