//! Half-open key ranges for the multiway-tree baseline.
//!
//! Deliberately minimal — just what the baseline needs — and independent of
//! `baton-core` so the two overlays stay decoupled.

/// A half-open interval of keys `[low, high)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MRange {
    /// Inclusive lower bound.
    pub low: u64,
    /// Exclusive upper bound.
    pub high: u64,
}

impl MRange {
    /// Creates the range `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low > high`.
    pub fn new(low: u64, high: u64) -> Self {
        assert!(low <= high, "invalid range [{low}, {high})");
        Self { low, high }
    }

    /// `true` if `key` lies in `[low, high)`.
    pub fn contains(self, key: u64) -> bool {
        key >= self.low && key < self.high
    }

    /// `true` if the two ranges share a key.
    pub fn intersects(self, other: MRange) -> bool {
        self.low < other.high && other.low < self.high
    }

    /// Number of keys in the range.
    pub fn width(self) -> u64 {
        self.high - self.low
    }

    /// Splits the range in half, returning `(lower, upper)`.
    pub fn split_half(self) -> (MRange, MRange) {
        let mid = self.low + self.width() / 2;
        (MRange::new(self.low, mid), MRange::new(mid, self.high))
    }
}

impl std::fmt::Display for MRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_intersects() {
        let r = MRange::new(10, 20);
        assert!(r.contains(10));
        assert!(!r.contains(20));
        assert!(r.intersects(MRange::new(15, 30)));
        assert!(!r.intersects(MRange::new(20, 30)));
        assert_eq!(r.width(), 10);
    }

    #[test]
    fn split_half_partitions() {
        let (a, b) = MRange::new(0, 11).split_half();
        assert_eq!(a, MRange::new(0, 5));
        assert_eq!(b, MRange::new(5, 11));
        assert_eq!(a.width() + b.width(), 11);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn reversed_range_panics() {
        MRange::new(5, 1);
    }
}
