//! Error types for BATON operations.

use baton_net::PeerId;

use crate::position::Position;
use crate::range::Key;

/// Errors returned by [`crate::BatonSystem`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatonError {
    /// The referenced peer is not part of the overlay (never joined, or
    /// already departed/failed).
    UnknownPeer(PeerId),
    /// The referenced peer is not alive.
    PeerNotAlive(PeerId),
    /// The overlay has no nodes at all.
    EmptyNetwork,
    /// The last remaining node cannot leave the network.
    LastNode,
    /// A forwarding walk exceeded its safety bound — indicates corrupted
    /// routing state (should never happen on a consistent tree).
    RoutingLoop {
        /// What the walk was doing (e.g. `"search_exact"`).
        operation: &'static str,
        /// Number of hops taken before aborting.
        hops: u32,
    },
    /// A key outside the overlay's configured domain was used.
    KeyOutOfDomain(Key),
    /// The key was not found by a delete or exact search that required it.
    KeyNotFound(Key),
    /// No peer occupies the given logical position (internal inconsistency).
    PositionVacant(Position),
    /// A structural invariant was violated; produced by
    /// [`crate::validate`] checks.
    InvariantViolation(String),
}

impl std::fmt::Display for BatonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatonError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            BatonError::PeerNotAlive(p) => write!(f, "peer {p} is not alive"),
            BatonError::EmptyNetwork => write!(f, "the overlay has no nodes"),
            BatonError::LastNode => write!(f, "the last node cannot leave the network"),
            BatonError::RoutingLoop { operation, hops } => {
                write!(
                    f,
                    "{operation} exceeded {hops} hops: routing state corrupted"
                )
            }
            BatonError::KeyOutOfDomain(k) => write!(f, "key {k} is outside the indexed domain"),
            BatonError::KeyNotFound(k) => write!(f, "key {k} not found"),
            BatonError::PositionVacant(p) => write!(f, "no peer occupies position {p}"),
            BatonError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for BatonError {}

/// Convenience alias for results of BATON operations.
pub type Result<T> = std::result::Result<T, BatonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_details() {
        assert!(BatonError::UnknownPeer(PeerId(3))
            .to_string()
            .contains("peer#3"));
        assert!(BatonError::KeyOutOfDomain(42).to_string().contains("42"));
        assert!(BatonError::KeyNotFound(7).to_string().contains("7"));
        assert!(BatonError::RoutingLoop {
            operation: "search_exact",
            hops: 99
        }
        .to_string()
        .contains("search_exact"));
        assert!(BatonError::PositionVacant(Position::new(2, 3))
            .to_string()
            .contains("level 2"));
        assert!(BatonError::InvariantViolation("broken".into())
            .to_string()
            .contains("broken"));
        assert!(!BatonError::EmptyNetwork.to_string().is_empty());
        assert!(!BatonError::LastNode.to_string().is_empty());
        assert!(!BatonError::PeerNotAlive(PeerId(0)).to_string().is_empty());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(BatonError::EmptyNetwork, BatonError::EmptyNetwork);
        assert_ne!(
            BatonError::UnknownPeer(PeerId(1)),
            BatonError::UnknownPeer(PeerId(2))
        );
    }
}
