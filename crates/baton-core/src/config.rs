//! System configuration.

use crate::range::KeyRange;

/// Load-balancing policy (paper §IV-D).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadBalanceConfig {
    /// Whether load balancing runs at all.
    pub enabled: bool,
    /// A node is *overloaded* when it stores more than this many items.
    pub overload_threshold: usize,
    /// A node is *lightly loaded* (eligible to migrate next to an overloaded
    /// node) when it stores fewer than this many items.
    pub underload_threshold: usize,
}

impl Default for LoadBalanceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            overload_threshold: 4_000,
            underload_threshold: 1_000,
        }
    }
}

impl LoadBalanceConfig {
    /// Disables load balancing entirely.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Thresholds sized for a target average of `avg` items per node:
    /// overloaded above `4·avg`, lightly loaded below `avg / 2`.
    ///
    /// The factor of four keeps balancing quiet under uniform data (where
    /// the natural spread of range sizes already produces nodes at 2–3× the
    /// average) while still firing promptly on genuinely skewed data, which
    /// is the behaviour the paper evaluates in §V-D.
    pub fn for_average_load(avg: usize) -> Self {
        Self {
            enabled: true,
            overload_threshold: (4 * avg).max(8),
            underload_threshold: (avg / 2).max(1),
        }
    }
}

/// Configuration of a [`crate::BatonSystem`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatonConfig {
    /// The key domain the overlay indexes.  The first node manages the whole
    /// domain; subsequent joins split it.
    pub domain: KeyRange,
    /// Load-balancing policy.
    pub load_balance: LoadBalanceConfig,
    /// Safety bound on forwarding walks, as a multiple of the tree height.
    /// Protocol walks that exceed it abort with
    /// [`crate::error::BatonError::RoutingLoop`]; this never triggers on a
    /// consistent tree and exists to turn protocol bugs into loud errors
    /// instead of infinite loops.
    pub walk_limit_factor: u32,
}

impl Default for BatonConfig {
    fn default() -> Self {
        Self {
            domain: KeyRange::paper_domain(),
            load_balance: LoadBalanceConfig::default(),
            walk_limit_factor: 8,
        }
    }
}

impl BatonConfig {
    /// Configuration over the paper's `[1, 10^9)` domain with defaults.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sets the key domain.
    pub fn with_domain(mut self, domain: KeyRange) -> Self {
        self.domain = domain;
        self
    }

    /// Sets the load-balancing policy.
    pub fn with_load_balance(mut self, lb: LoadBalanceConfig) -> Self {
        self.load_balance = lb;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_paper_domain() {
        let c = BatonConfig::default();
        assert_eq!(c.domain, KeyRange::paper_domain());
        assert!(c.load_balance.enabled);
        assert!(c.walk_limit_factor >= 2);
        assert_eq!(BatonConfig::paper(), c);
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = BatonConfig::default()
            .with_domain(KeyRange::new(0, 1000))
            .with_load_balance(LoadBalanceConfig::disabled());
        assert_eq!(c.domain, KeyRange::new(0, 1000));
        assert!(!c.load_balance.enabled);
    }

    #[test]
    fn load_balance_for_average_load() {
        let lb = LoadBalanceConfig::for_average_load(100);
        assert_eq!(lb.overload_threshold, 400);
        assert_eq!(lb.underload_threshold, 50);
        assert!(lb.enabled);
        // Tiny averages keep sane minimums.
        let tiny = LoadBalanceConfig::for_average_load(0);
        assert!(tiny.overload_threshold >= 8);
        assert!(tiny.underload_threshold >= 1);
    }
}
