//! Per-operation cost reports.
//!
//! Every public operation of [`crate::BatonSystem`] returns a report with
//! the message counts the paper's evaluation plots: messages to *locate*
//! (find the join node, the replacement node, or the key owner) and messages
//! to *update routing tables*, plus operation-specific detail such as the
//! number of nodes shifted by a restructuring (Figure 8(h)).

use baton_net::PeerId;

use crate::position::Position;
use crate::range::{Key, KeyRange};
use crate::store::Value;

/// Cost of a network-restructuring pass (paper §III-E).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestructureReport {
    /// Number of nodes whose position changed.
    pub nodes_shifted: usize,
    /// Messages spent updating links and routing tables of shifted nodes.
    pub messages: u64,
}

/// Report of a node join (paper §III-A).
#[derive(Clone, Debug, PartialEq)]
pub struct JoinReport {
    /// The peer that joined.
    pub new_peer: PeerId,
    /// The peer that accepted it as a child.
    pub parent: PeerId,
    /// Position assigned to the new node.
    pub position: Position,
    /// Range assigned to the new node.
    pub range: KeyRange,
    /// Messages to find the join node (Figure 8(a)).
    pub locate_messages: u64,
    /// Messages to update routing tables and links (Figure 8(b)).
    pub update_messages: u64,
    /// Restructuring triggered by a *forced* join, if any.
    pub restructure: Option<RestructureReport>,
}

impl JoinReport {
    /// Total messages of the join.
    pub fn total_messages(&self) -> u64 {
        self.locate_messages + self.update_messages + self.restructure.map_or(0, |r| r.messages)
    }
}

/// Report of a graceful node departure (paper §III-B).
#[derive(Clone, Debug, PartialEq)]
pub struct LeaveReport {
    /// The peer that departed.
    pub departed: PeerId,
    /// The leaf that moved into the departed node's position, if a
    /// replacement was needed.
    pub replacement: Option<PeerId>,
    /// Messages to find the replacement node (Figure 8(a)); zero when the
    /// leaf could depart directly.
    pub locate_messages: u64,
    /// Messages to update routing tables and links (Figure 8(b)).
    pub update_messages: u64,
    /// Restructuring triggered by a *forced* departure, if any.
    pub restructure: Option<RestructureReport>,
}

impl LeaveReport {
    /// Total messages of the departure.
    pub fn total_messages(&self) -> u64 {
        self.locate_messages + self.update_messages + self.restructure.map_or(0, |r| r.messages)
    }
}

/// Report of the recovery from a node failure (paper §III-C).
#[derive(Clone, Debug, PartialEq)]
pub struct FailureReport {
    /// The peer that failed.
    pub failed: PeerId,
    /// The peer that coordinated recovery (normally the failed node's
    /// parent).
    pub coordinator: Option<PeerId>,
    /// The leaf that moved into the failed node's position, if any.
    pub replacement: Option<PeerId>,
    /// Messages spent regenerating the failed node's routing state.
    pub regeneration_messages: u64,
    /// Messages spent on the graceful-departure protocol run on the failed
    /// node's behalf (locate + update).
    pub departure_messages: u64,
    /// Number of data items lost with the failed node (BATON does not
    /// replicate data).
    pub lost_items: usize,
}

impl FailureReport {
    /// Total messages of the recovery.
    pub fn total_messages(&self) -> u64 {
        self.regeneration_messages + self.departure_messages
    }
}

/// Report of an exact-match query (paper §IV-A).
#[derive(Clone, Debug, PartialEq)]
pub struct SearchReport {
    /// Key searched for.
    pub key: Key,
    /// Peer that owns the key's range.
    pub owner: PeerId,
    /// Matching values found at the owner.
    pub matches: Vec<Value>,
    /// Messages used to route the query (Figure 8(d)).
    pub messages: u64,
    /// Overlay hops from issuer to owner.
    pub hops: u32,
}

/// Report of a range query (paper §IV-B).
#[derive(Clone, Debug, PartialEq)]
pub struct RangeSearchReport {
    /// Range searched.
    pub range: KeyRange,
    /// Matching `(key, value)` pairs, in key order.
    pub matches: Vec<(Key, Value)>,
    /// Messages used (Figure 8(e)): `O(log N)` to find the first
    /// intersection plus one per additional node covered.
    pub messages: u64,
    /// Number of nodes whose range intersected the query.
    pub nodes_visited: usize,
}

/// What kind of load-balancing action was taken (paper §IV-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceKind {
    /// Data migrated to an adjacent node.
    AdjacentMigration,
    /// A lightly loaded leaf left its position and re-joined as a child of
    /// the overloaded node (possibly forcing a restructuring).
    LeafRejoin,
}

/// Report of one load-balancing action.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadBalanceReport {
    /// Which scheme was used.
    pub kind: BalanceKind,
    /// The node that was overloaded (or underloaded).
    pub trigger: PeerId,
    /// Messages spent balancing (Figure 8(g)).
    pub messages: u64,
    /// Number of data items that moved between nodes.
    pub items_moved: usize,
    /// Number of nodes involved in the accompanying restructuring shift
    /// (Figure 8(h)); zero for adjacent migration.
    pub nodes_shifted: usize,
}

/// Report of a data insertion (paper §IV-C).
#[derive(Clone, Debug, PartialEq)]
pub struct InsertReport {
    /// Key inserted.
    pub key: Key,
    /// Peer that now stores the key.
    pub owner: PeerId,
    /// Messages used to locate the owner and insert (Figure 8(c)).
    pub messages: u64,
    /// Extra messages spent expanding the leftmost/rightmost range when the
    /// key fell outside the current domain.
    pub expansion_messages: u64,
    /// Load balancing triggered by this insertion, if any.
    pub balance: Option<LoadBalanceReport>,
}

impl InsertReport {
    /// Total messages including load balancing.
    pub fn total_messages(&self) -> u64 {
        self.messages + self.expansion_messages + self.balance.as_ref().map_or(0, |b| b.messages)
    }
}

/// Report of a data deletion (paper §IV-C).
#[derive(Clone, Debug, PartialEq)]
pub struct DeleteReport {
    /// Key deleted.
    pub key: Key,
    /// Peer that owned the key's range.
    pub owner: PeerId,
    /// Whether a value was actually removed.
    pub removed: bool,
    /// Messages used to locate the owner and delete (Figure 8(c)).
    pub messages: u64,
    /// Load balancing triggered by this deletion, if any.
    pub balance: Option<LoadBalanceReport>,
}

impl DeleteReport {
    /// Total messages including load balancing.
    pub fn total_messages(&self) -> u64 {
        self.messages + self.balance.as_ref().map_or(0, |b| b.messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_report_totals_include_restructuring() {
        let mut r = JoinReport {
            new_peer: PeerId(1),
            parent: PeerId(0),
            position: Position::new(1, 1),
            range: KeyRange::new(0, 10),
            locate_messages: 3,
            update_messages: 7,
            restructure: None,
        };
        assert_eq!(r.total_messages(), 10);
        r.restructure = Some(RestructureReport {
            nodes_shifted: 2,
            messages: 5,
        });
        assert_eq!(r.total_messages(), 15);
    }

    #[test]
    fn leave_and_failure_report_totals() {
        let l = LeaveReport {
            departed: PeerId(4),
            replacement: Some(PeerId(9)),
            locate_messages: 2,
            update_messages: 8,
            restructure: None,
        };
        assert_eq!(l.total_messages(), 10);
        let f = FailureReport {
            failed: PeerId(4),
            coordinator: Some(PeerId(2)),
            replacement: None,
            regeneration_messages: 6,
            departure_messages: 9,
            lost_items: 3,
        };
        assert_eq!(f.total_messages(), 15);
    }

    #[test]
    fn insert_and_delete_report_totals() {
        let i = InsertReport {
            key: 10,
            owner: PeerId(1),
            messages: 4,
            expansion_messages: 2,
            balance: Some(LoadBalanceReport {
                kind: BalanceKind::AdjacentMigration,
                trigger: PeerId(1),
                messages: 3,
                items_moved: 10,
                nodes_shifted: 0,
            }),
        };
        assert_eq!(i.total_messages(), 9);
        let d = DeleteReport {
            key: 10,
            owner: PeerId(1),
            removed: true,
            messages: 4,
            balance: None,
        };
        assert_eq!(d.total_messages(), 4);
    }
}
