//! Node join (paper §III-A, Algorithm 1).
//!
//! Joining happens in two phases:
//!
//! 1. **Locate** — the JOIN request is forwarded through the overlay until
//!    it reaches a node with full routing tables and a free child slot
//!    (Algorithm 1).  Each forward is one message; the paper's Figure 8(a)
//!    plots the average number of these messages.
//! 2. **Attach** — the accepting node splits its key range (and data) with
//!    the new child, fixes the adjacent links, informs its neighbours of its
//!    new child and shrunken range, and the new node's routing tables are
//!    filled through the neighbours' children (Theorem 2 guarantees they are
//!    reachable that way).  Figure 8(b) plots these update messages.

use baton_net::{OpScope, PeerId};

use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::node::BatonNode;
use crate::position::{Position, Side};
use crate::range::KeyRange;
use crate::reports::JoinReport;
use crate::routing::{NodeLink, RoutingEntry};
use crate::system::BatonSystem;

impl BatonSystem {
    /// A new peer joins the overlay, contacting a uniformly random existing
    /// node (how the paper builds its experimental networks).
    pub fn join_random(&mut self) -> Result<JoinReport> {
        let contact = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.join_via(contact)
    }

    /// A new peer joins the overlay by sending a JOIN request to `contact`.
    pub fn join_via(&mut self, contact: PeerId) -> Result<JoinReport> {
        self.check_alive(contact)?;
        let joiner = self.net.add_peer();
        let op = self.net.begin_op("join");
        let (acceptor, locate_messages) = self.locate_join_node(op, joiner, contact)?;
        let (position, range, update_messages) = self.attach_child(op, acceptor, joiner)?;
        // At k > 1 the range split moved replica boundaries: the new node
        // seeds its replica targets with its slice (k−1 handoff messages).
        let handoff_messages = self.charge_replica_handoffs(op, joiner);
        self.net.finish_op(op);
        Ok(JoinReport {
            new_peer: joiner,
            parent: acceptor,
            position,
            range,
            locate_messages,
            update_messages: update_messages + handoff_messages,
            restructure: None,
        })
    }

    /// Phase 1 of the join: forward the JOIN request per Algorithm 1 until a
    /// node that can accept a child is found.  Returns that node and the
    /// number of messages used.
    pub(crate) fn locate_join_node(
        &mut self,
        op: OpScope,
        joiner: PeerId,
        contact: PeerId,
    ) -> Result<(PeerId, u64)> {
        let _t = baton_net::profiler::scope("baton.join.locate");
        let limit = self.walk_limit();
        let mut messages = 0u64;
        let mut hop_no = 1u32;
        self.hop(
            op,
            joiner,
            contact,
            hop_no,
            BatonMessage::JoinRequest { joiner },
        )?;
        messages += 1;
        let mut current = contact;
        loop {
            let node = self.node_ref(current)?;
            // A dead (unrepaired) node must not accept: `attach_child`
            // splits the acceptor's store and range *before* its first hop,
            // so accepting at a dead node would corrupt both.  Legacy runs
            // never route past dead nodes, so the extra check is free.
            if node.can_accept_child() && self.net.is_alive(current) {
                return Ok((current, messages));
            }
            let next = if !node.tables_full() {
                // Algorithm 1: incomplete routing tables → forward to parent.
                match &node.parent {
                    Some(p) => p.peer,
                    None => {
                        // The root's tables are trivially full, so this
                        // branch indicates corrupted state.
                        return Err(BatonError::InvariantViolation(
                            "root reached with non-full routing tables".into(),
                        ));
                    }
                }
            } else {
                // Tables full but both children occupied: pick a neighbour
                // that is still missing a child, otherwise fall through to
                // an adjacent node.
                let candidate = node
                    .left_table
                    .first_without_both_children()
                    .or_else(|| node.right_table.first_without_both_children())
                    .map(|(_, e)| e.link.peer);
                match candidate {
                    Some(p) => p,
                    None => {
                        let deeper = match (&node.left_adjacent, &node.right_adjacent) {
                            (Some(l), Some(r)) => {
                                if r.position.level() >= l.position.level() {
                                    Some(r.peer)
                                } else {
                                    Some(l.peer)
                                }
                            }
                            (Some(l), None) => Some(l.peer),
                            (None, Some(r)) => Some(r.peer),
                            (None, None) => None,
                        };
                        deeper.ok_or_else(|| {
                            BatonError::InvariantViolation(
                                "saturated node with no adjacent links".into(),
                            )
                        })?
                    }
                }
            };
            hop_no += 1;
            if hop_no > limit {
                return Err(BatonError::RoutingLoop {
                    operation: "join",
                    hops: hop_no,
                });
            }
            self.hop(
                op,
                current,
                next,
                hop_no,
                BatonMessage::JoinRequest { joiner },
            )?;
            messages += 1;
            current = next;
        }
    }

    /// Phase 2 of the join: attach `joiner` as a child of `parent_peer`,
    /// splitting the parent's range and data, fixing adjacency, and building
    /// the new node's routing tables.  Returns the new node's position and
    /// range plus the number of update messages.
    ///
    /// The caller is responsible for having verified (Algorithm 1) that the
    /// parent can accept a child; this method also backs the *forced* joins
    /// of the load balancer (§IV-D), in which case the caller follows up
    /// with a restructuring pass.
    pub(crate) fn attach_child(
        &mut self,
        op: OpScope,
        parent_peer: PeerId,
        joiner: PeerId,
    ) -> Result<(Position, KeyRange, u64)> {
        let _t = baton_net::profiler::scope("baton.join.attach");
        let mut messages = 0u64;

        // Decide side, position and range split.
        let (parent_pos, side, child_pos, parent_new_range, child_range) = {
            let parent = self.node_ref(parent_peer)?;
            let side = parent.free_child_side().ok_or_else(|| {
                BatonError::InvariantViolation("attach_child called on a full parent".into())
            })?;
            let child_pos = parent.position.child(side);
            let (low_half, high_half) = parent.range.split_half();
            let (p_range, c_range) = match side {
                Side::Left => (high_half, low_half),
                Side::Right => (low_half, high_half),
            };
            (parent.position, side, child_pos, p_range, c_range)
        };

        // Create the child node and move the data that now belongs to it.
        let mut child = BatonNode::new(joiner, child_pos, child_range);
        {
            let parent = self.node_mut(parent_peer)?;
            child.store = parent.store.split_off_range(child_range);
            parent.range = parent_new_range;
        }
        child.parent = Some(NodeLink::new(parent_peer, parent_pos, parent_new_range));

        // One message: the parent accepts the joiner and hands over its half
        // of the range (the data handoff rides on this acceptance).
        self.hop(
            op,
            parent_peer,
            joiner,
            1,
            BatonMessage::JoinAccept {
                parent: NodeLink::new(parent_peer, parent_pos, parent_new_range),
                side,
                range: child_range,
            },
        )?;
        messages += 1;

        // Adjacent links: the parent's adjacent link on `side` is handed to
        // the child; the child slots in between that node and the parent.
        let outer_adjacent = {
            let parent = self.node_ref(parent_peer)?;
            parent.adjacent(side).copied()
        };
        let child_link = child.link();
        let parent_link = NodeLink::new(parent_peer, parent_pos, parent_new_range);
        match side {
            Side::Left => {
                child.left_adjacent = outer_adjacent;
                child.right_adjacent = Some(parent_link);
            }
            Side::Right => {
                child.right_adjacent = outer_adjacent;
                child.left_adjacent = Some(parent_link);
            }
        }
        {
            let parent = self.node_mut(parent_peer)?;
            parent.set_adjacent(side, Some(child_link));
            parent.set_child(side, Some(child_link));
        }

        // Register the new node before notifications so that helpers can
        // resolve its link.
        self.occupy(child_pos, joiner);
        self.register_node(joiner, child);

        // The new node notifies the node on the far side of its adjacency
        // (one message, per the paper's cost analysis).
        if let Some(outer) = outer_adjacent {
            self.notify(op, "table.adjacent_update", joiner, outer.peer);
            messages += 1;
            let child_link = self.link_of(joiner)?;
            if let Some(outer_node) = self.node_opt_mut(outer.peer) {
                outer_node.set_adjacent(side.opposite(), Some(child_link));
            }
        }

        // The parent's range shrank and it gained a child: one combined
        // notification per node holding a link to it (its routing-table
        // neighbours in turn let their children know about the new node,
        // which is how its tables fill) — the paper's `2·L1` term.
        messages += self.broadcast_parent_update(op, parent_peer)?;
        // Build the new node's routing tables through the parent's
        // neighbours' children (Theorem 2).
        messages += self.build_child_tables(op, parent_peer, joiner)?;

        Ok((child_pos, child_range, messages))
    }

    /// Fills the routing tables of a freshly attached child and installs the
    /// reverse entries at its neighbours.
    ///
    /// For every slot of the child's tables, the occupant of the target
    /// position is found through the parent's knowledge: the target's parent
    /// is either the child's own parent (sibling slot) or a routing-table
    /// neighbour of the parent (Theorem 2), whose recorded child links name
    /// the occupant.  Each filled slot costs two messages (query the
    /// occupant, occupant responds to / records the new node), matching the
    /// `2·L2 + 2·L2` term of the paper's cost analysis.
    pub(crate) fn build_child_tables(
        &mut self,
        op: OpScope,
        parent_peer: PeerId,
        child_peer: PeerId,
    ) -> Result<u64> {
        let _t = baton_net::profiler::scope("baton.join.tables");
        let mut messages = 0u64;
        let (child_pos, parent_pos) = {
            let child = self.node_ref(child_peer)?;
            let parent = self.node_ref(parent_peer)?;
            (child.position, parent.position)
        };
        for side in Side::BOTH {
            for index in 0..child_pos.routing_table_size() {
                let Some(target_pos) = child_pos.routing_neighbor(side, index) else {
                    continue;
                };
                let target_parent_pos = target_pos
                    .parent()
                    .expect("routing neighbours of a non-root node have parents");
                let occupant: Option<PeerId> = if target_parent_pos == parent_pos {
                    // The target is the new node's sibling.
                    let parent = self.node_ref(parent_peer)?;
                    parent
                        .child(target_pos.child_side().expect("non-root"))
                        .map(|l| l.peer)
                        .filter(|p| *p != child_peer)
                } else {
                    let parent = self.node_ref(parent_peer)?;
                    let entry = parent
                        .table(side)
                        .entry_for_position(target_parent_pos)
                        .or_else(|| {
                            parent
                                .table(side.opposite())
                                .entry_for_position(target_parent_pos)
                        });
                    entry.and_then(|(_, e)| match target_pos.child_side().expect("non-root") {
                        Side::Left => e.left_child,
                        Side::Right => e.right_child,
                    })
                };
                let Some(occupant) = occupant else { continue };
                // Query + response pair.
                self.notify(op, "table.fill", parent_peer, occupant);
                self.notify(op, "table.fill", occupant, child_peer);
                messages += 2;
                let occupant_link = self.link_of(occupant)?;
                let (occ_left, occ_right) = {
                    let occ = self.node_ref(occupant)?;
                    (
                        occ.left_child.map(|l| l.peer),
                        occ.right_child.map(|l| l.peer),
                    )
                };
                let child_link = self.link_of(child_peer)?;
                let (child_left, child_right) = {
                    let child = self.node_ref(child_peer)?;
                    (
                        child.left_child.map(|l| l.peer),
                        child.right_child.map(|l| l.peer),
                    )
                };
                {
                    let child = self.node_mut(child_peer)?;
                    child.table_mut(side).set(
                        index,
                        RoutingEntry::with_children(occupant_link, occ_left, occ_right),
                    );
                }
                {
                    let occ = self.node_mut(occupant)?;
                    occ.table_mut(side.opposite()).set(
                        index,
                        RoutingEntry::with_children(child_link, child_left, child_right),
                    );
                }
            }
        }
        Ok(messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;
    use crate::validate::validate;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn second_node_becomes_child_of_root() {
        let mut system = BatonSystem::with_seed(7);
        let root = system.bootstrap().unwrap();
        let report = system.join_via(root).unwrap();
        assert_eq!(report.parent, root);
        assert_eq!(report.position, Position::new(1, 1));
        assert_eq!(system.node_count(), 2);
        // Root kept the upper half of the domain, the child got the lower.
        let root_node = system.node(root).unwrap();
        let child_node = system.node(report.new_peer).unwrap();
        assert_eq!(child_node.range.high(), root_node.range.low());
        assert_eq!(child_node.parent.unwrap().peer, root);
        assert_eq!(root_node.left_child.unwrap().peer, report.new_peer);
        // Adjacency: child <-> root.
        assert_eq!(root_node.left_adjacent.unwrap().peer, report.new_peer);
        assert_eq!(child_node.right_adjacent.unwrap().peer, root);
        assert!(child_node.left_adjacent.is_none());
        validate(&system).unwrap();
    }

    #[test]
    fn locate_messages_are_positive_and_bounded() {
        let mut system = build(64, 3);
        for _ in 0..20 {
            let report = system.join_random().unwrap();
            assert!(report.locate_messages >= 1);
            // The paper bounds the locate walk by O(log N); allow slack for
            // the constant factors (adjacent hops, sideways hops).
            let bound = 6 * (system.node_count() as f64).log2().ceil() as u64 + 8;
            assert!(
                report.locate_messages <= bound,
                "locate took {} messages for {} nodes",
                report.locate_messages,
                system.node_count()
            );
        }
        validate(&system).unwrap();
    }

    #[test]
    fn update_messages_are_logarithmic() {
        let mut system = build(128, 5);
        let report = system.join_random().unwrap();
        let log_n = (system.node_count() as f64).log2();
        assert!(
            (report.update_messages as f64) <= 8.0 * log_n + 16.0,
            "update messages {} exceed 8 log N {}",
            report.update_messages,
            8.0 * log_n
        );
        validate(&system).unwrap();
    }

    #[test]
    fn joins_preserve_invariants_at_every_step() {
        let mut system = BatonSystem::with_seed(11);
        system.bootstrap().unwrap();
        for i in 0..80 {
            system.join_random().unwrap();
            validate(&system).unwrap_or_else(|e| panic!("invariant broken after join {i}: {e}"));
        }
        assert_eq!(system.node_count(), 81);
    }

    #[test]
    fn tree_height_stays_balanced() {
        let system = build(200, 13);
        let n = system.node_count() as f64;
        let height = system.height() as f64;
        // Balanced binary tree: height <= 1.44 log2 N (paper §III) + 1 slack.
        assert!(
            height <= 1.45 * n.log2() + 1.0,
            "height {height} too large for {n} nodes"
        );
        // And at least log2(N).
        assert!(height >= n.log2().floor());
        validate(&system).unwrap();
    }

    #[test]
    fn join_via_unknown_contact_fails() {
        let mut system = build(4, 1);
        let err = system.join_via(PeerId(999)).unwrap_err();
        assert_eq!(err, BatonError::UnknownPeer(PeerId(999)));
    }

    #[test]
    fn join_on_empty_network_fails() {
        let mut system = BatonSystem::with_seed(1);
        assert_eq!(system.join_random().unwrap_err(), BatonError::EmptyNetwork);
    }

    #[test]
    fn ranges_partition_domain_after_many_joins() {
        let system = build(100, 17);
        let mut ranges: Vec<KeyRange> = system
            .peers()
            .iter()
            .copied()
            .map(|p| system.node(p).unwrap().range)
            .collect();
        ranges.sort_by_key(|r| r.low());
        assert_eq!(ranges.first().unwrap().low(), system.domain().low());
        assert_eq!(ranges.last().unwrap().high(), system.domain().high());
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].high(), pair[1].low(), "ranges must be contiguous");
        }
    }

    #[test]
    fn every_join_acceptor_had_full_tables() {
        // Indirectly verified by Theorem 1 holding after each join; also
        // check explicitly that all internal nodes have full tables.
        let system = build(150, 19);
        for &peer in system.peers() {
            let node = system.node(peer).unwrap();
            if !node.is_leaf() {
                assert!(
                    node.tables_full(),
                    "internal node {peer} at {:?} lacks full tables",
                    node.position
                );
            }
        }
    }
}
