//! Load balancing (paper §IV-D).
//!
//! Two schemes, applied in order:
//!
//! 1. **Adjacent migration** — an overloaded node shifts part of its range
//!    (and the data in it) to the less-loaded of its two in-order adjacent
//!    nodes.  This is the only scheme non-leaf nodes use.
//! 2. **Leaf re-join** — if an overloaded *leaf*'s adjacent nodes are also
//!    heavily loaded, it locates a lightly loaded leaf through its routing
//!    tables; that leaf hands its own data to its parent, leaves its
//!    position (forcing a restructuring shift if its departure would break
//!    balance), and re-joins as a child of the overloaded node, taking half
//!    of its data — again forcing a restructuring shift if the overloaded
//!    node cannot accept a child under Theorem 1.
//!
//! The number of nodes involved in each re-join (2 + the restructuring shift
//! length) is recorded in the system's shift-size histogram, which is what
//! Figure 8(h) plots.
//!
//! Re-joins are *screened*: both restructuring chains are planned (purely)
//! up front, and a re-join whose shift would exceed the
//! [`balance_shift_budget`](BatonSystem::balance_shift_budget) of
//! `4·⌈log₂ N⌉` nodes is declined before anything moves.  Without the
//! screen, a freshly bulk-loaded network — whose leaf level is one long run
//! of non-vacatable positions — produces shift chains that grow linearly
//! with N, turning the §IV-D heuristic into an O(N)-messages-per-insert
//! cost at large scale.

use baton_net::{OpScope, PeerId};

use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::position::Side;
use crate::range::Key;
use crate::reports::{BalanceKind, LoadBalanceReport};
use crate::system::BatonSystem;

impl BatonSystem {
    /// Explicitly runs the load-balancing check on `peer` (normally it runs
    /// automatically after each insertion).
    pub fn rebalance(&mut self, peer: PeerId) -> Result<LoadBalanceReport> {
        self.check_alive(peer)?;
        let op = self.net.begin_op("balance");
        let report = self.rebalance_overloaded(op, peer)?;
        self.net.finish_op(op);
        Ok(report)
    }

    /// Hook called after every insertion: triggers balancing when the owner
    /// exceeds the configured overload threshold.
    pub(crate) fn maybe_balance_after_insert(
        &mut self,
        op: OpScope,
        owner: PeerId,
    ) -> Result<Option<LoadBalanceReport>> {
        if !self.config.load_balance.enabled {
            return Ok(None);
        }
        // While failures await repair, the restructuring shift chains could
        // route through dead nodes and corrupt mid-plan; postpone balancing
        // until the overlay is whole again.  Legacy runs repair immediately,
        // so the gate never fires there.
        if !self.dead_peers.is_empty() {
            return Ok(None);
        }
        let threshold = self.config.load_balance.overload_threshold;
        let load = self.node_ref(owner)?.load();
        if load <= threshold {
            return Ok(None);
        }
        // Once a node is over the threshold, re-probing the neighbourhood on
        // every single insertion would dominate the cost when no lighter
        // peer exists; check periodically instead (every `threshold / 2`
        // insertions past the threshold — i.e. roughly once per re-fill
        // after a successful halving), which keeps the amortized balancing
        // overhead per insertion low, as in the paper (§IV-D).
        let check_interval = (threshold / 2).max(1);
        if (load - threshold) % check_interval != 1 % check_interval {
            return Ok(None);
        }
        self.rebalance_overloaded(op, owner).map(Some)
    }

    fn rebalance_overloaded(
        &mut self,
        op: OpScope,
        overloaded: PeerId,
    ) -> Result<LoadBalanceReport> {
        let noop = |messages| LoadBalanceReport {
            kind: BalanceKind::AdjacentMigration,
            trigger: overloaded,
            messages,
            items_moved: 0,
            nodes_shifted: 0,
        };
        // A node that is not actually overloaded has nothing to do.
        if self.node_ref(overloaded)?.load() <= self.config.load_balance.overload_threshold {
            return Ok(noop(0));
        }
        // Scheme 1: adjacent migration.
        if let Some(report) = self.try_adjacent_migration(op, overloaded)? {
            return Ok(report);
        }
        // Scheme 2: leaf re-join (leaves only).
        if self.node_ref(overloaded)?.is_leaf() {
            if let Some(report) = self.try_leaf_rejoin(op, overloaded)? {
                return Ok(report);
            }
        }
        // Nothing could be improved: report a zero-effect migration so the
        // caller still sees the probing cost.
        Ok(noop(2))
    }

    /// Attempts to shift part of the overloaded node's range to the
    /// less-loaded adjacent node.  Returns `None` if neither adjacent node
    /// is meaningfully lighter.
    fn try_adjacent_migration(
        &mut self,
        op: OpScope,
        overloaded: PeerId,
    ) -> Result<Option<LoadBalanceReport>> {
        let mut messages = 0u64;
        let (my_load, candidates) = {
            let node = self.node_ref(overloaded)?;
            let mut candidates = Vec::new();
            if let Some(l) = node.left_adjacent {
                candidates.push((l.peer, Side::Left));
            }
            if let Some(r) = node.right_adjacent {
                candidates.push((r.peer, Side::Right));
            }
            (node.load(), candidates)
        };
        // Probe the adjacent nodes' loads (one message each).
        let mut best: Option<(PeerId, Side, usize)> = None;
        for (peer, side) in candidates {
            self.notify(op, "balance.probe", overloaded, peer);
            messages += 1;
            let load = self.node_ref(peer)?.load();
            if best.is_none_or(|(_, _, b)| load < b) {
                best = Some((peer, side, load));
            }
        }
        let Some((adjacent, side, adjacent_load)) = best else {
            return Ok(None);
        };
        // Only migrate when it meaningfully evens things out and the
        // adjacent node is not itself overloaded.
        if adjacent_load + 2 > my_load
            || adjacent_load >= self.config.load_balance.overload_threshold
        {
            return Ok(None);
        }
        let move_count = (my_load - adjacent_load) / 2;
        if move_count == 0 {
            return Ok(None);
        }

        // Pick the range boundary so that roughly `move_count` items move.
        let boundary: Option<Key> = {
            let node = self.node_ref(overloaded)?;
            match side {
                // Move the smallest `move_count` items to the left adjacent:
                // everything strictly below the key at rank `move_count`.
                Side::Left => node.store.iter().nth(move_count).map(|(k, _)| k),
                // Move the largest `move_count` items to the right adjacent:
                // everything at or above the key at rank `len - move_count`.
                Side::Right => node.store.iter().nth(my_load - move_count).map(|(k, _)| k),
            }
        };
        let Some(boundary) = boundary else {
            return Ok(None);
        };
        let my_range = self.node_ref(overloaded)?.range;
        if !my_range.contains(boundary) || boundary == my_range.low() {
            // Duplicates concentrated on a single key: no useful split point.
            return Ok(None);
        }

        // Perform the migration.
        let (moved_range, kept_range) = match side {
            Side::Left => {
                let (moved, kept) = my_range.split_at(boundary);
                (moved, kept)
            }
            Side::Right => {
                let (kept, moved) = my_range.split_at(boundary);
                (moved, kept)
            }
        };
        let moved_items = {
            let node = self.node_mut(overloaded)?;
            let moved = node.store.split_off_range(moved_range);
            node.range = kept_range;
            moved
        };
        let items_moved = moved_items.len();
        self.hop(
            op,
            overloaded,
            adjacent,
            1,
            BatonMessage::BalanceMigrate {
                range: moved_range,
                items: items_moved,
            },
        )?;
        messages += 1;
        {
            let adj = self.node_mut(adjacent)?;
            adj.store.absorb(moved_items);
            adj.range = adj.range.merge(moved_range).ok_or_else(|| {
                BatonError::InvariantViolation(format!(
                    "migrated range {moved_range} not contiguous with adjacent range {}",
                    adj.range
                ))
            })?;
        }
        // Both nodes' ranges changed: refresh every link recording them.
        messages += self.broadcast_range_update(op, overloaded)?;
        messages += self.broadcast_range_update(op, adjacent)?;

        self.balance_shift_sizes.record(2);
        Ok(Some(LoadBalanceReport {
            kind: BalanceKind::AdjacentMigration,
            trigger: overloaded,
            messages,
            items_moved,
            nodes_shifted: 0,
        }))
    }

    /// Attempts the leaf re-join scheme: a lightly loaded leaf found through
    /// the routing tables leaves its position and re-joins as a child of the
    /// overloaded leaf.
    fn try_leaf_rejoin(
        &mut self,
        op: OpScope,
        overloaded: PeerId,
    ) -> Result<Option<LoadBalanceReport>> {
        let mut messages = 0u64;
        let (candidate, probe_messages) = self.find_lightly_loaded_leaf(op, overloaded)?;
        messages += probe_messages;
        let Some(light) = candidate else {
            return Ok(None);
        };

        // Pre-screen the restructuring cost of both halves of the re-join
        // before mutating anything: on a dense network the shift chains can
        // run the length of the leaf level, and a re-join whose chains
        // exceed the O(log N) budget is declined outright (the overloaded
        // node stays as it is until adjacent migration or a cheaper
        // candidate catches up).  Both planners are pure, so a re-join that
        // passes the screen proceeds exactly as it would have unscreened.
        let budget = self.balance_shift_budget();
        let departure_plan = if self.node_ref(light)?.can_leave_without_replacement() {
            None
        } else {
            let plan = match self.plan_restructure_remove(light, Side::Left)? {
                Some(p) => p,
                None => self
                    .plan_restructure_remove(light, Side::Right)?
                    .ok_or_else(|| {
                        BatonError::InvariantViolation(
                            "no direction admits a departure restructuring".into(),
                        )
                    })?,
            };
            if plan.shift_size() > budget {
                return Ok(None);
            }
            Some(plan)
        };
        {
            // Estimate the insert-side chain from the overloaded node
            // outwards, mirroring step 3's direction preference (the spliced
            // node's successor chain starts at the overloaded node itself).
            let left_start = self.node_ref(overloaded)?.left_adjacent.map(|l| l.peer);
            let estimate = match self.insert_chain_estimate(Some(overloaded), Side::Right)? {
                Some(e) => Some(e),
                None => self.insert_chain_estimate(left_start, Side::Left)?,
            };
            if estimate.is_some_and(|e| e > budget) {
                return Ok(None);
            }
        }

        // Ask the light leaf to move (one message).
        self.hop(
            op,
            overloaded,
            light,
            1,
            BatonMessage::BalanceRequestRejoin { overloaded },
        )?;
        messages += 1;

        // 1. The light leaf leaves its position, handing its data and range
        //    to its parent; if its departure would break balance, the
        //    overlay restructures around the hole.
        let mut nodes_shifted = 0usize;
        match departure_plan {
            None => messages += self.detach_leaf(op, light, light)?,
            Some(plan) => {
                messages += self.detach_leaf(op, light, light)?;
                let report = self.apply_restructure_plan(op, &plan)?;
                messages += report.messages;
                nodes_shifted += report.nodes_shifted;
            }
        }

        // 2. The light leaf re-joins next to the overloaded node, taking
        //    half of its range and data.  If the overloaded node can attach
        //    it as a child (it has a free slot), use the regular attach; a
        //    restructuring shift follows when Theorem 1 would be violated.
        //    If the restructuring that accompanied the light leaf's
        //    departure left the overloaded node with two children, the new
        //    neighbour is spliced in purely by restructuring.
        let needs_restructure = if self.node_ref(overloaded)?.free_child_side().is_some() {
            let (_, _, attach_messages) = self.attach_child(op, overloaded, light)?;
            messages += attach_messages;
            !self.node_ref(overloaded)?.tables_full()
        } else {
            messages += self.splice_in_as_predecessor(op, overloaded, light)?;
            true
        };
        let items_moved = self.node_ref(light)?.store.len();

        // 3. Find the spliced-in node a legitimate position by shifting the
        //    overlay (paper §III-E).
        if needs_restructure {
            let plan = match self.plan_restructure_insert(light, Side::Right)? {
                Some(p) => p,
                None => self
                    .plan_restructure_insert(light, Side::Left)?
                    .ok_or_else(|| {
                        BatonError::InvariantViolation(
                            "no direction admits a join restructuring".into(),
                        )
                    })?,
            };
            let report = self.apply_restructure_plan(op, &plan)?;
            messages += report.messages;
            nodes_shifted += report.nodes_shifted;
        }

        self.balance_shift_sizes.record(2 + nodes_shifted);
        Ok(Some(LoadBalanceReport {
            kind: BalanceKind::LeafRejoin,
            trigger: overloaded,
            messages,
            items_moved,
            nodes_shifted,
        }))
    }

    /// Splices `light` into the overlay as the in-order predecessor of
    /// `overloaded` — range split, data handoff and adjacency — *without*
    /// giving it a tree position yet.  Used when the overloaded node has no
    /// free child slot; the caller immediately follows up with a
    /// restructuring pass that assigns the position.
    fn splice_in_as_predecessor(
        &mut self,
        op: OpScope,
        overloaded: PeerId,
        light: PeerId,
    ) -> Result<u64> {
        let mut messages = 0u64;
        let (g_position, light_range) = {
            let g = self.node_ref(overloaded)?;
            let (low_half, _) = g.range.split_half();
            (g.position, low_half)
        };
        // Build the new neighbour's node state.  Its position field is a
        // placeholder (the overloaded node's own position) that is never
        // registered in the position map; the restructuring pass assigns the
        // real one.
        let mut light_node = crate::node::BatonNode::new(light, g_position, light_range);
        {
            let g = self.node_mut(overloaded)?;
            light_node.store = g.store.split_off_range(light_range);
            g.range = crate::range::KeyRange::new(light_range.high(), g.range.high());
        }
        // Adjacency: predecessor(g) <-> light <-> g.
        let outer = {
            let g = self.node_ref(overloaded)?;
            g.left_adjacent
        };
        let g_link = self.link_of(overloaded)?;
        light_node.left_adjacent = outer;
        light_node.right_adjacent = Some(g_link);
        self.register_node(light, light_node);
        let light_link = self.link_of(light)?;
        {
            let g = self.node_mut(overloaded)?;
            g.set_adjacent(Side::Left, Some(light_link));
        }
        self.hop(
            op,
            overloaded,
            light,
            1,
            BatonMessage::BalanceMigrate {
                range: light_range,
                items: self.node_ref(light)?.store.len(),
            },
        )?;
        messages += 1;
        if let Some(outer) = outer {
            self.notify(op, "table.adjacent_update", light, outer.peer);
            messages += 1;
            if let Some(outer_node) = self.node_opt_mut(outer.peer) {
                outer_node.set_adjacent(Side::Right, Some(light_link));
            }
        }
        // The overloaded node's range shrank.
        messages += self.broadcast_range_update(op, overloaded)?;
        Ok(messages)
    }

    /// Probes the overloaded node's routing-table neighbours (and their
    /// recorded children) for a lightly loaded leaf.  Returns the best
    /// candidate and the number of probe messages.
    fn find_lightly_loaded_leaf(
        &mut self,
        op: OpScope,
        overloaded: PeerId,
    ) -> Result<(Option<PeerId>, u64)> {
        let mut messages = 0u64;
        let (my_load, exclude, probe_targets) = {
            let node = self.node_ref(overloaded)?;
            let mut exclude = vec![overloaded];
            if let Some(l) = node.left_adjacent {
                exclude.push(l.peer);
            }
            if let Some(r) = node.right_adjacent {
                exclude.push(r.peer);
            }
            let mut targets = Vec::new();
            for side in Side::BOTH {
                for (_, e) in node.table(side).iter() {
                    targets.push(e.link.peer);
                    if let Some(c) = e.left_child {
                        targets.push(c);
                    }
                    if let Some(c) = e.right_child {
                        targets.push(c);
                    }
                }
            }
            (node.load(), exclude, targets)
        };
        let mut best: Option<(PeerId, usize)> = None;
        for target in probe_targets {
            if exclude.contains(&target) || !self.net.is_alive(target) {
                continue;
            }
            self.notify(op, "balance.probe", overloaded, target);
            messages += 1;
            let Some(node) = self.node(target) else {
                continue;
            };
            if !node.is_leaf() {
                continue;
            }
            let load = node.load();
            if best.is_none_or(|(_, b)| load < b) {
                best = Some((target, load));
            }
        }
        let candidate = best.and_then(|(peer, load)| {
            // The re-join halves the overloaded node's data, so it is only
            // worthwhile if the candidate carries well under half its load.
            let light_enough = load.saturating_mul(2) < my_load
                && (load <= self.config.load_balance.underload_threshold
                    || load.saturating_mul(4) < my_load);
            light_enough.then_some(peer)
        });
        Ok((candidate, messages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatonConfig, LoadBalanceConfig};
    use crate::validate::validate;

    fn skew_config(overload: usize) -> BatonConfig {
        BatonConfig::default().with_load_balance(LoadBalanceConfig {
            enabled: true,
            overload_threshold: overload,
            underload_threshold: overload / 4,
        })
    }

    #[test]
    fn no_balancing_below_threshold() {
        let mut system = BatonSystem::build(skew_config(1000), 1, 20).unwrap();
        for i in 0..100u64 {
            let report = system.insert(1 + i, i).unwrap();
            assert!(report.balance.is_none());
        }
        validate(&system).unwrap();
    }

    #[test]
    fn disabled_load_balancing_never_triggers() {
        let config = BatonConfig::default().with_load_balance(LoadBalanceConfig::disabled());
        let mut system = BatonSystem::build(config, 2, 10).unwrap();
        for i in 0..500u64 {
            let report = system.insert(1 + (i % 7), i).unwrap();
            assert!(report.balance.is_none());
        }
        validate(&system).unwrap();
    }

    #[test]
    fn skewed_inserts_trigger_balancing_and_keep_invariants() {
        let mut system = BatonSystem::build(skew_config(50), 3, 30).unwrap();
        let mut balanced = 0;
        // All keys fall in a narrow band, overloading one node repeatedly.
        for i in 0..2_000u64 {
            let key = 1 + (i % 1_000);
            let report = system.insert(key, i).unwrap();
            if report.balance.is_some() {
                balanced += 1;
            }
            if i % 250 == 0 {
                validate(&system)
                    .unwrap_or_else(|e| panic!("invariant broken after {i} skewed inserts: {e}"));
            }
        }
        assert!(balanced > 0, "skewed workload never triggered balancing");
        validate(&system).unwrap();
        assert_eq!(system.total_items(), 2_000);
    }

    #[test]
    fn balancing_reduces_maximum_load() {
        let overload = 40;
        let mut with_lb = BatonSystem::build(skew_config(overload), 5, 40).unwrap();
        let config_no_lb = BatonConfig::default().with_load_balance(LoadBalanceConfig::disabled());
        let mut without_lb = BatonSystem::build(config_no_lb, 5, 40).unwrap();
        for i in 0..3_000u64 {
            // Zipf-ish: concentrate most keys at the low end of the domain.
            let key = 1 + (i * i) % 10_000;
            with_lb.insert(key, i).unwrap();
            without_lb.insert(key, i).unwrap();
        }
        let max_with = with_lb
            .peers()
            .iter()
            .map(|&p| with_lb.node(p).unwrap().load())
            .max()
            .unwrap();
        let max_without = without_lb
            .peers()
            .iter()
            .map(|&p| without_lb.node(p).unwrap().load())
            .max()
            .unwrap();
        assert!(
            max_with < max_without,
            "load balancing did not reduce the maximum load ({max_with} vs {max_without})"
        );
        validate(&with_lb).unwrap();
    }

    #[test]
    fn explicit_rebalance_on_underloaded_node_is_a_noop() {
        let mut system = BatonSystem::build(skew_config(100), 7, 10).unwrap();
        let peer = system.peers()[0];
        let report = system.rebalance(peer).unwrap();
        assert_eq!(report.items_moved, 0);
        validate(&system).unwrap();
    }

    #[test]
    fn shift_histogram_records_balancing_events() {
        let mut system = BatonSystem::build(skew_config(30), 9, 25).unwrap();
        for i in 0..1_500u64 {
            let key = 1 + (i % 500);
            system.insert(key, i).unwrap();
        }
        let hist = system.balance_shift_histogram();
        assert!(hist.total() > 0, "no balancing events were recorded");
        // Events involve at least two nodes.
        assert_eq!(hist.count(0), 0);
        assert_eq!(hist.count(1), 0);
        validate(&system).unwrap();
    }

    #[test]
    fn data_is_never_lost_by_balancing() {
        let mut system = BatonSystem::build(skew_config(25), 11, 20).unwrap();
        let mut expected = std::collections::HashMap::new();
        for i in 0..1_200u64 {
            let key = 1 + (i % 300);
            system.insert(key, i).unwrap();
            *expected.entry(key).or_insert(0usize) += 1;
        }
        assert_eq!(system.total_items(), 1_200);
        for (key, count) in expected {
            let found = system.search_exact(key).unwrap();
            assert_eq!(found.matches.len(), count, "key {key} lost values");
        }
        validate(&system).unwrap();
    }
}
