//! Node departure (paper §III-B, Algorithm 2).
//!
//! A leaf whose routing-table neighbours have no children may depart
//! directly: it transfers its content and range to its parent, tells its
//! neighbours to drop their links, and the parent refreshes its own
//! neighbours — at most `4 log N` messages.
//!
//! Any other node must find a *replacement*: a FINDREPLACEMENT request walks
//! down the tree (Algorithm 2) to a leaf whose own departure is safe; that
//! leaf detaches from its position and takes over the departing node's
//! position, links, range and content, and every node holding a link to the
//! departed node is repointed — at most `8 log N` messages.

use baton_net::{OpScope, PeerId};

use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::position::Side;
use crate::reports::LeaveReport;
use crate::routing::NodeLink;
use crate::system::BatonSystem;

impl BatonSystem {
    /// Gracefully removes `peer` from the overlay.
    ///
    /// Fails with [`BatonError::LastNode`] if it is the only node left.
    pub fn leave(&mut self, peer: PeerId) -> Result<LeaveReport> {
        self.check_alive(peer)?;
        if self.node_count() == 1 {
            return Err(BatonError::LastNode);
        }
        let op = self.net.begin_op("leave");
        let node = self.node_ref(peer)?;
        let report = if node.can_leave_without_replacement() {
            // At k > 1 the departing slice moves replica boundaries for the
            // neighbours holding its copies; charge the handoff while the
            // links still exist.
            let mut update_messages = self.charge_replica_handoffs(op, peer);
            update_messages += self.detach_leaf(op, peer, peer)?;
            LeaveReport {
                departed: peer,
                replacement: None,
                locate_messages: 0,
                update_messages,
                restructure: None,
            }
        } else {
            let (replacement, locate_messages) = self.find_replacement(op, peer)?;
            if !self.net.is_alive(replacement) {
                // Possible only while unrepaired failures linger: the
                // replacement walk landed on a dead leaf.  `detach_leaf`
                // takes the replacement's store before hopping *from* it,
                // so bail out cleanly before any mutation; the caller
                // retries once the dead leaf's repair has run.
                self.net.finish_op(op);
                return Err(BatonError::PeerNotAlive(replacement));
            }
            // The replacement leaf first departs from its own position …
            let mut update_messages = self.detach_leaf(op, replacement, replacement)?;
            // … and then takes over the departing node's position.
            update_messages += self.take_over_position(op, peer, replacement, peer)?;
            update_messages += self.charge_replica_handoffs(op, replacement);
            LeaveReport {
                departed: peer,
                replacement: Some(replacement),
                locate_messages,
                update_messages,
                restructure: None,
            }
        };
        self.net.depart_peer(peer);
        self.net.finish_op(op);
        Ok(report)
    }

    /// A uniformly random live node leaves the overlay.
    pub fn leave_random(&mut self) -> Result<LeaveReport> {
        let peer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.leave(peer)
    }

    /// Algorithm 2: walk down from the departing node to a leaf that can
    /// safely vacate its position.  Returns the replacement and the number
    /// of messages used.
    pub(crate) fn find_replacement(
        &mut self,
        op: OpScope,
        departing: PeerId,
    ) -> Result<(PeerId, u64)> {
        let _t = baton_net::profiler::scope("baton.leave.locate");
        let limit = self.walk_limit();
        let mut messages = 0u64;
        let mut hops = 1u32;
        let departing_pos = self.node_ref(departing)?.position;
        let start = {
            let node = self.node_ref(departing)?;
            if node.is_leaf() {
                // A leaf that cannot depart directly has a neighbour with a
                // child; start the walk at such a child.
                let entry = node
                    .left_table
                    .first_with_a_child()
                    .or_else(|| node.right_table.first_with_a_child())
                    .map(|(_, e)| *e);
                match entry {
                    Some(e) => e.left_child.or(e.right_child).ok_or_else(|| {
                        BatonError::InvariantViolation(
                            "routing entry claims children but records none".into(),
                        )
                    })?,
                    None => {
                        return Err(BatonError::InvariantViolation(
                            "find_replacement called on a directly removable leaf".into(),
                        ))
                    }
                }
            } else {
                // A non-leaf starts at its deeper adjacent node, which lies
                // in one of its subtrees.
                match (&node.left_adjacent, &node.right_adjacent) {
                    (Some(l), Some(r)) => {
                        if r.position.level() >= l.position.level() {
                            r.peer
                        } else {
                            l.peer
                        }
                    }
                    (Some(l), None) => l.peer,
                    (None, Some(r)) => r.peer,
                    (None, None) => {
                        return Err(BatonError::InvariantViolation(
                            "non-leaf node without adjacent links".into(),
                        ))
                    }
                }
            }
        };
        self.hop(
            op,
            departing,
            start,
            hops,
            BatonMessage::FindReplacement {
                departing,
                position: departing_pos,
            },
        )?;
        messages += 1;
        let mut current = start;
        loop {
            let next = {
                let node = self.node_ref(current)?;
                if let Some(lc) = &node.left_child {
                    Some(lc.peer)
                } else if let Some(rc) = &node.right_child {
                    Some(rc.peer)
                } else {
                    let entry = node
                        .left_table
                        .first_with_a_child()
                        .or_else(|| node.right_table.first_with_a_child())
                        .map(|(_, e)| *e);
                    match entry {
                        Some(e) => Some(e.left_child.or(e.right_child).ok_or_else(|| {
                            BatonError::InvariantViolation(
                                "routing entry claims children but records none".into(),
                            )
                        })?),
                        None => None,
                    }
                }
            };
            let Some(next) = next else {
                return Ok((current, messages));
            };
            hops += 1;
            if hops > limit {
                return Err(BatonError::RoutingLoop {
                    operation: "find_replacement",
                    hops,
                });
            }
            self.hop(
                op,
                current,
                next,
                hops,
                BatonMessage::FindReplacement {
                    departing,
                    position: departing_pos,
                },
            )?;
            messages += 1;
            current = next;
        }
    }

    /// Structurally removes a leaf that satisfies the direct-departure
    /// condition: its content and range are merged into its parent, the
    /// adjacency chain is spliced, its neighbours drop their table entries
    /// and the parent refreshes its own neighbourhood.
    ///
    /// `actor` is the peer doing the talking (the leaf itself for a
    /// voluntary departure, the recovery coordinator when cleaning up after
    /// a failure).  Returns the number of messages used.
    pub(crate) fn detach_leaf(&mut self, op: OpScope, leaf: PeerId, actor: PeerId) -> Result<u64> {
        let _t = baton_net::profiler::scope("baton.leave.detach");
        let mut messages = 0u64;
        if !self.node_ref(leaf)?.is_leaf() {
            return Err(BatonError::InvariantViolation(
                "detach_leaf called on a non-leaf node".into(),
            ));
        }
        let (position, range, parent_link, side, outer_adjacent, neighbor_peers, store) = {
            let node = self.node_mut(leaf)?;
            let parent_link = node.parent.ok_or_else(|| {
                BatonError::InvariantViolation("detach_leaf called on the root".into())
            })?;
            let side = node
                .position
                .child_side()
                .expect("a node with a parent is not the root");
            let mut neighbors = Vec::new();
            for s in Side::BOTH {
                for (_, e) in node.table(s).iter() {
                    neighbors.push(e.link.peer);
                }
            }
            let store = std::mem::take(&mut node.store);
            (
                node.position,
                node.range,
                parent_link,
                side,
                node.adjacent(side).copied(),
                neighbors,
                store,
            )
        };

        // 1. Tell routing-table neighbours to drop their entries.
        for neighbor in &neighbor_peers {
            self.notify(op, "leave.notify", actor, *neighbor);
            messages += 1;
            if let Some(n) = self.node_opt_mut(*neighbor) {
                n.left_table.remove_peer(leaf);
                n.right_table.remove_peer(leaf);
            }
        }

        // 2. Transfer content and range to the parent.
        let items = store.len();
        self.hop(
            op,
            actor,
            parent_link.peer,
            1,
            BatonMessage::LeaveTransfer { range, items },
        )?;
        messages += 1;
        {
            let parent = self.node_mut(parent_link.peer)?;
            parent.store.absorb(store);
            parent.range = parent.range.merge(range).ok_or_else(|| {
                BatonError::InvariantViolation(format!(
                    "leaf range {range} not contiguous with parent range {}",
                    parent.range
                ))
            })?;
            parent.set_child(side, None);
        }

        // 3. Splice the adjacency chain: the parent inherits the leaf's
        //    outward adjacent link, and that node points back at the parent.
        let parent_link_now = self.link_of(parent_link.peer)?;
        {
            let parent = self.node_mut(parent_link.peer)?;
            parent.set_adjacent(side, outer_adjacent);
        }
        if let Some(outer) = outer_adjacent {
            self.notify(op, "table.adjacent_update", actor, outer.peer);
            messages += 1;
            if let Some(outer_node) = self.node_opt_mut(outer.peer) {
                outer_node.set_adjacent(side.opposite(), Some(parent_link_now));
            }
        }

        // 4. Remove the leaf from the overlay.
        self.vacate(position, leaf);
        self.unregister_node(leaf);

        // 5. The parent's range (and child set) changed: refresh everyone
        //    holding a link to it with one combined notification each.
        messages += self.broadcast_parent_update(op, parent_link.peer)?;

        Ok(messages)
    }

    /// Makes `new_peer` (already detached from any previous position) take
    /// over `old_peer`'s position, links, range and content, and repoints
    /// every node that linked to `old_peer`.
    ///
    /// `via` is the peer that transfers the state (the departing node for a
    /// voluntary departure, the recovery coordinator after a failure).
    pub(crate) fn take_over_position(
        &mut self,
        op: OpScope,
        old_peer: PeerId,
        new_peer: PeerId,
        via: PeerId,
    ) -> Result<u64> {
        let _t = baton_net::profiler::scope("baton.leave.takeover");
        let mut messages = 0u64;
        let old_node = self
            .unregister_node(old_peer)
            .ok_or(BatonError::UnknownPeer(old_peer))?;
        self.vacate(old_node.position, old_peer);

        // One message: the state / content handoff to the replacement.
        self.hop(
            op,
            via,
            new_peer,
            1,
            BatonMessage::ReplacementAnnounce {
                old: old_peer,
                new_link: NodeLink::new(new_peer, old_node.position, old_node.range),
            },
        )?;
        messages += 1;

        let mut new_node = old_node;
        new_node.peer = new_peer;
        let position = new_node.position;
        self.occupy(position, new_peer);
        self.register_node(new_peer, new_node);

        // Repoint every node that held a link to the departed peer.
        let new_link = self.link_of(new_peer)?;
        let linked = self.node_ref(new_peer)?.linked_peers();
        for other in linked {
            if other == new_peer {
                continue;
            }
            self.notify(op, "leave.replacement_announce", new_peer, other);
            messages += 1;
            if let Some(other_node) = self.node_opt_mut(other) {
                other_node.rewrite_links(old_peer, new_link);
            }
        }
        // The parent's neighbours track the parent's children by address;
        // refresh that knowledge too (the paper's `2·L1` term).
        if let Some(parent_link) = self.node_ref(new_peer)?.parent {
            messages += self.broadcast_child_update(op, parent_link.peer)?;
        }
        Ok(messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;
    use crate::validate::validate;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn last_node_cannot_leave() {
        let mut system = BatonSystem::with_seed(1);
        let root = system.bootstrap().unwrap();
        assert_eq!(system.leave(root).unwrap_err(), BatonError::LastNode);
    }

    #[test]
    fn leaf_departure_returns_range_to_parent() {
        let mut system = BatonSystem::with_seed(2);
        let root = system.bootstrap().unwrap();
        let join = system.join_via(root).unwrap();
        system.insert(5, 55).unwrap();
        system.insert(999_000_000, 66).unwrap();
        let before_items = system.total_items();
        let report = system.leave(join.new_peer).unwrap();
        assert_eq!(report.departed, join.new_peer);
        assert!(report.replacement.is_none());
        assert_eq!(report.locate_messages, 0);
        assert_eq!(system.node_count(), 1);
        // The root manages the whole domain again and kept all the data.
        let root_node = system.node(root).unwrap();
        assert_eq!(root_node.range, system.domain());
        assert_eq!(system.total_items(), before_items);
        validate(&system).unwrap();
    }

    #[test]
    fn root_departure_promotes_a_replacement() {
        let mut system = build(20, 3);
        let root = system.root().unwrap();
        let report = system.leave(root).unwrap();
        assert_eq!(report.departed, root);
        let replacement = report.replacement.expect("non-leaf needs a replacement");
        assert_ne!(replacement, root);
        assert_eq!(system.root(), Some(replacement));
        assert_eq!(system.node_count(), 19);
        validate(&system).unwrap();
    }

    #[test]
    fn departures_preserve_invariants_and_data() {
        let mut system = build(60, 4);
        for i in 0..300u64 {
            system.insert(1 + i * 3_333_333, i).unwrap();
        }
        let total = system.total_items();
        for round in 0..40 {
            let peer = system.random_peer().unwrap();
            if system.node_count() == 1 {
                break;
            }
            system.leave(peer).unwrap();
            validate(&system)
                .unwrap_or_else(|e| panic!("invariant broken after departure {round}: {e}"));
            assert_eq!(system.total_items(), total, "data lost at round {round}");
        }
        assert_eq!(system.node_count(), 20);
        // Every key must still be findable.
        for i in 0..300u64 {
            let found = system.search_exact(1 + i * 3_333_333).unwrap();
            assert_eq!(found.matches, vec![i]);
        }
    }

    #[test]
    fn leave_costs_are_logarithmic() {
        let mut system = build(300, 5);
        let log_n = (system.node_count() as f64).log2();
        for _ in 0..30 {
            let report = system.leave_random().unwrap();
            assert!(
                (report.locate_messages as f64) <= 2.0 * log_n + 4.0,
                "locate cost {} too high",
                report.locate_messages
            );
            assert!(
                (report.update_messages as f64) <= 10.0 * log_n + 20.0,
                "update cost {} too high",
                report.update_messages
            );
        }
        validate(&system).unwrap();
    }

    #[test]
    fn interleaved_joins_and_leaves_keep_invariants() {
        let mut system = build(40, 6);
        for i in 0..120u64 {
            system.insert(1 + i * 8_000_000, i).unwrap();
        }
        for round in 0..60 {
            if round % 3 == 0 && system.node_count() > 2 {
                system.leave_random().unwrap();
            } else {
                system.join_random().unwrap();
            }
            validate(&system)
                .unwrap_or_else(|e| panic!("invariant broken after churn round {round}: {e}"));
        }
        assert_eq!(system.total_items(), 120);
    }

    #[test]
    fn leaving_twice_is_rejected() {
        let mut system = build(10, 7);
        let peer = system.peers()[0];
        if system.node_count() > 1 {
            system.leave(peer).unwrap();
            let err = system.leave(peer).unwrap_err();
            assert!(matches!(
                err,
                BatonError::UnknownPeer(_) | BatonError::PeerNotAlive(_)
            ));
        }
    }

    #[test]
    fn shrink_network_down_to_single_node() {
        let mut system = build(33, 8);
        while system.node_count() > 1 {
            system.leave_random().unwrap();
            validate(&system).unwrap();
        }
        let last = system.peers()[0];
        let node = system.node(last).unwrap();
        assert!(node.is_root());
        assert_eq!(node.range, system.domain());
    }
}
