//! Network restructuring (paper §III-E).
//!
//! Restructuring is invoked when a join or departure is *forced* to happen
//! at a specific place — as part of load balancing (§IV-D) — and redirecting
//! the node elsewhere is not permitted.  It is the overlay analogue of an
//! AVL rotation: peers shift along the in-order (adjacent-link) chain, each
//! taking over the *position* of its in-order neighbour, until a spot is
//! reached where a node can be added (or a position vacated) without
//! violating the balance condition of Theorem 1.
//!
//! Crucially, **ranges and data do not move**: each peer keeps the key range
//! it managed, and because every peer shifts by exactly one slot in the
//! in-order position ordering, the in-order ordering of ranges is preserved.
//! Only positions — and therefore parent / child / routing-table links —
//! change.
//!
//! ### Simulation note
//!
//! Computing the shift plan uses only adjacent links and per-node state, as
//! the distributed protocol does.  *Applying* the plan rebuilds the affected
//! links from the system's position map instead of simulating each
//! link-repair handshake peer by peer; the messages are charged per the
//! paper's cost model (`O(log N)` per shifted node — concretely
//! `2·level + 4` table-update messages each), which is the quantity the
//! evaluation reports.

use baton_net::{OpScope, PeerId};

use crate::error::{BatonError, Result};
use crate::position::{Position, Side};
use crate::reports::RestructureReport;
use crate::routing::{NodeLink, RoutingEntry, RoutingTable};
use crate::system::BatonSystem;

/// A planned restructuring: which peer moves to which position, plus the
/// parent under which the final chain member is attached as a new child
/// (insert direction) if any.
#[derive(Clone, Debug)]
pub(crate) struct RestructurePlan {
    /// `(peer, new_position)` assignments, in chain order.
    pub assignments: Vec<(PeerId, Position)>,
    /// For an insert-direction plan: the position vacated is none and the
    /// last assignment is a brand-new leaf position.  For a remove-direction
    /// plan: the position that ends up vacated.
    #[allow(dead_code)] // recorded for diagnostics and tests
    pub vacated: Option<Position>,
}

impl RestructurePlan {
    /// Number of peers that change position.
    pub fn shift_size(&self) -> usize {
        self.assignments.len()
    }
}

impl BatonSystem {
    /// Upper bound on the length of shift chains that *load balancing* is
    /// willing to trigger: `4·⌈log₂ N⌉`, floored at 128.
    ///
    /// Restructuring itself has no such bound (a forced join or departure
    /// must complete whatever the cost), but the leaf re-join of §IV-D is a
    /// best-effort heuristic — and on a bulk-loaded network whose leaf level
    /// is one long run of non-vacatable positions, an unscreened re-join
    /// shifts O(N) nodes at O(log N) messages each, which at million-peer
    /// scale turns the heuristic into the dominant cost of the entire run.
    /// The floor of 128 exceeds every network size whose simulation output
    /// is pinned byte-for-byte by the committed fixtures, so the budget can
    /// only ever bind — and only ever *decline* a re-join — at scales no
    /// fixture covers.
    pub(crate) fn balance_shift_budget(&self) -> usize {
        let n = self.node_count().max(2);
        let log2_ceil = (usize::BITS - (n - 1).leading_zeros()) as usize;
        (4 * log2_ceil).max(128)
    }

    /// Estimated shift size of an insert-direction restructuring whose
    /// chain starts at `first` — the pure pre-screen counterpart of
    /// [`plan_restructure_insert`](Self::plan_restructure_insert), used to
    /// veto expensive re-joins *before* the overlay is mutated.  Returns
    /// `None` when the chain reaches the end of the tree without an
    /// attachment point.
    pub(crate) fn insert_chain_estimate(
        &self,
        first: Option<PeerId>,
        side: Side,
    ) -> Result<Option<usize>> {
        // The incoming node itself is the first assignment of the real plan.
        let mut shifted = 1usize;
        let mut successor = first;
        let limit = self.node_count() + 2;
        loop {
            let Some(s) = successor else {
                return Ok(None);
            };
            let s_node = self.node_ref(s)?;
            if s_node.child(side.opposite()).is_none() && s_node.tables_full() {
                return Ok(Some(shifted));
            }
            shifted += 1;
            successor = s_node.adjacent(side).map(|l| l.peer);
            if shifted > limit {
                return Err(BatonError::InvariantViolation(
                    "restructuring chain longer than the overlay".into(),
                ));
            }
        }
    }

    /// Plans an *insert-direction* restructuring: `incoming` (currently
    /// detached from any position, but already spliced into the adjacency
    /// chain and owning its range) needs a position, and every occupant from
    /// its in-order neighbour onwards shifts one slot until one of them can
    /// be attached as a new child without violating Theorem 1.
    ///
    /// `side` selects the shift direction: [`Side::Right`] walks successor
    /// links and attaches the final node as a *left* child; [`Side::Left`]
    /// walks predecessor links and attaches as a *right* child.  Returns
    /// `None` if the chain reaches the end of the tree without finding an
    /// attachment point (the caller then tries the other direction).
    pub(crate) fn plan_restructure_insert(
        &self,
        incoming: PeerId,
        side: Side,
    ) -> Result<Option<RestructurePlan>> {
        let mut assignments = Vec::new();
        let mut displaced = incoming;
        let mut successor = self.node_ref(incoming)?.adjacent(side).map(|l| l.peer);
        let limit = self.node_count() + 2;
        loop {
            let Some(s) = successor else {
                return Ok(None);
            };
            let s_node = self.node_ref(s)?;
            let child_free = s_node.child(side.opposite()).is_none();
            if child_free && s_node.tables_full() {
                // `displaced` becomes a new child of `s` on the side facing
                // the shift origin, which is exactly its in-order slot.
                assignments.push((displaced, s_node.position.child(side.opposite())));
                return Ok(Some(RestructurePlan {
                    assignments,
                    vacated: None,
                }));
            }
            assignments.push((displaced, s_node.position));
            displaced = s;
            successor = s_node.adjacent(side).map(|l| l.peer);
            if assignments.len() > limit {
                return Err(BatonError::InvariantViolation(
                    "restructuring chain longer than the overlay".into(),
                ));
            }
        }
    }

    /// Plans a *remove-direction* restructuring: `leaving`'s position must
    /// be freed, but vacating it directly would violate Theorem 1, so
    /// occupants shift towards it from the `side` direction until a position
    /// that can be safely vacated is reached.
    pub(crate) fn plan_restructure_remove(
        &self,
        leaving: PeerId,
        side: Side,
    ) -> Result<Option<RestructurePlan>> {
        let mut assignments = Vec::new();
        let mut hole = self.node_ref(leaving)?.position;
        let mut candidate = self.node_ref(leaving)?.adjacent(side).map(|l| l.peer);
        let limit = self.node_count() + 2;
        loop {
            let Some(c) = candidate else {
                return Ok(None);
            };
            let c_node = self.node_ref(c)?;
            let c_pos = c_node.position;
            assignments.push((c, hole));
            if self.position_safely_vacatable(c_pos) {
                return Ok(Some(RestructurePlan {
                    assignments,
                    vacated: Some(c_pos),
                }));
            }
            hole = c_pos;
            candidate = c_node.adjacent(side).map(|l| l.peer);
            if assignments.len() > limit {
                return Err(BatonError::InvariantViolation(
                    "restructuring chain longer than the overlay".into(),
                ));
            }
        }
    }

    /// `true` if removing the occupant of `position` keeps Theorem 1 intact:
    /// the position has no occupied children and no occupied same-level
    /// neighbour (at any power-of-two distance) has occupied children.
    pub(crate) fn position_safely_vacatable(&self, position: Position) -> bool {
        let occupied = |p: Position| self.by_position.contains(p);
        if position.level() < Position::MAX_LEVEL
            && (occupied(position.left_child()) || occupied(position.right_child()))
        {
            return false;
        }
        for side in Side::BOTH {
            for index in 0..position.routing_table_size() {
                if let Some(neighbor) = position.routing_neighbor(side, index) {
                    if occupied(neighbor)
                        && neighbor.level() < Position::MAX_LEVEL
                        && (occupied(neighbor.left_child()) || occupied(neighbor.right_child()))
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Applies a restructuring plan: reassigns positions, rebuilds the
    /// structural links of the moved peers and of every node that links to
    /// an affected position, and charges `2·level + 4` messages per moved
    /// peer to `op`.
    pub(crate) fn apply_restructure_plan(
        &mut self,
        op: OpScope,
        plan: &RestructurePlan,
    ) -> Result<RestructureReport> {
        let mut messages = 0u64;

        // 1. Vacate the old positions of every moved peer (the incoming peer
        //    of an insert plan has no position yet, so skip it).
        let mut old_positions = Vec::new();
        for (peer, _) in &plan.assignments {
            if let Some(node) = self.node(*peer) {
                if self.by_position.get(node.position) == Some(*peer) {
                    old_positions.push(node.position);
                    self.vacate(node.position, *peer);
                }
            }
        }

        // 2. Assign the new positions.
        for (peer, new_pos) in &plan.assignments {
            {
                let node = self.node_mut(*peer)?;
                node.position = *new_pos;
            }
            self.occupy(*new_pos, *peer);
        }

        // 3. Rebuild the moved peers' own structural links and the links of
        //    every node pointing at an affected position.
        let affected: Vec<Position> = {
            let mut v: Vec<Position> = plan
                .assignments
                .iter()
                .map(|(_, p)| *p)
                .chain(old_positions.iter().copied())
                .collect();
            v.sort_by(|a, b| a.inorder_cmp(*b));
            v.dedup();
            v
        };
        for (peer, new_pos) in &plan.assignments {
            self.rebuild_structural_links(*peer)?;
            // One shift instruction plus `2·level + 2` link/table updates,
            // the paper's O(log N)-per-node cost.
            let charged = 2 * new_pos.level() as u64 + 4;
            let linked = self.node_ref(*peer)?.linked_peers();
            let mut sent = 0u64;
            for other in linked {
                if sent >= charged {
                    break;
                }
                self.notify(op, "restructure.shift", *peer, other);
                sent += 1;
            }
            // If the peer has fewer links than the cost model charges, count
            // the remainder as maintenance traffic to its parent.
            while sent < charged {
                let target = self
                    .node_ref(*peer)?
                    .parent
                    .map(|l| l.peer)
                    .unwrap_or(*peer);
                self.notify(op, "restructure.shift", *peer, target);
                sent += 1;
            }
            messages += sent;
        }
        for position in &affected {
            self.refresh_links_toward(*position)?;
        }

        // The occupants of the affected positions changed, so the *child
        // knowledge* that their parents' same-level neighbours keep about
        // those parents is stale; refresh it (this also covers the parent
        // that gained the new leaf child and the parent that lost the
        // vacated one).
        let mut parent_positions: Vec<Position> =
            affected.iter().filter_map(|p| p.parent()).collect();
        parent_positions.sort_by(|a, b| a.inorder_cmp(*b));
        parent_positions.dedup();
        for parent_pos in parent_positions {
            if let Some(parent_peer) = self.by_position.get(parent_pos) {
                messages += self.broadcast_child_update(op, parent_peer)?;
            }
        }

        Ok(RestructureReport {
            nodes_shifted: plan.shift_size(),
            messages,
        })
    }

    /// Recomputes a peer's parent link, child links and routing tables from
    /// the current position occupancy.  Adjacent links are left untouched —
    /// restructuring never changes the peer-level in-order chain.
    pub(crate) fn rebuild_structural_links(&mut self, peer: PeerId) -> Result<()> {
        let position = self.node_ref(peer)?.position;

        let parent = position
            .parent()
            .and_then(|pp| self.by_position.get(pp))
            .map(|p| self.link_of(p))
            .transpose()?;
        let left_child = self
            .occupant_link(position.left_child_checked())
            .transpose()?;
        let right_child = self
            .occupant_link(position.right_child_checked())
            .transpose()?;

        let mut left_table = RoutingTable::new(Side::Left, position);
        let mut right_table = RoutingTable::new(Side::Right, position);
        for side in Side::BOTH {
            for index in 0..position.routing_table_size() {
                let Some(target) = position.routing_neighbor(side, index) else {
                    continue;
                };
                let Some(occupant) = self.by_position.get(target) else {
                    continue;
                };
                let link = self.link_of(occupant)?;
                let (lc, rc) = {
                    let n = self.node_ref(occupant)?;
                    (n.left_child.map(|l| l.peer), n.right_child.map(|l| l.peer))
                };
                let entry = RoutingEntry::with_children(link, lc, rc);
                match side {
                    Side::Left => left_table.set(index, entry),
                    Side::Right => right_table.set(index, entry),
                }
            }
        }

        let node = self.node_mut(peer)?;
        node.parent = parent;
        node.left_child = left_child;
        node.right_child = right_child;
        node.left_table = left_table;
        node.right_table = right_table;
        Ok(())
    }

    /// Updates the links held by *other* nodes that point at `position`:
    /// the occupant of the parent position (child link), the occupants of
    /// the child positions (parent link), the same-level neighbours (table
    /// entry) and the in-order adjacent peers (recorded position in the
    /// adjacent link).
    pub(crate) fn refresh_links_toward(&mut self, position: Position) -> Result<()> {
        let Some(occupant) = self.by_position.get(position) else {
            // The position was vacated: clear the links other nodes held
            // towards it (the parent's child link and the same-level
            // neighbours' table entries).  Child positions cannot be
            // occupied — a vacated position never leaves orphans.
            if let Some(parent_pos) = position.parent() {
                if let Some(parent_peer) = self.by_position.get(parent_pos) {
                    let side = position.child_side().expect("non-root");
                    let parent = self.node_mut(parent_peer)?;
                    if parent.child(side).is_some_and(|l| l.position == position) {
                        parent.set_child(side, None);
                    }
                }
            }
            for side in Side::BOTH {
                for index in 0..position.routing_table_size() {
                    let Some(neighbor_pos) = position.routing_neighbor(side, index) else {
                        continue;
                    };
                    let Some(neighbor_peer) = self.by_position.get(neighbor_pos) else {
                        continue;
                    };
                    let neighbor = self.node_mut(neighbor_peer)?;
                    let table = neighbor.table_mut(side.opposite());
                    if table
                        .entry(index)
                        .is_some_and(|e| e.link.position == position)
                    {
                        table.clear(index);
                    }
                }
            }
            return Ok(());
        };
        let link = self.link_of(occupant)?;
        let (occ_left, occ_right, occ_left_adj, occ_right_adj) = {
            let n = self.node_ref(occupant)?;
            (
                n.left_child.map(|l| l.peer),
                n.right_child.map(|l| l.peer),
                n.left_adjacent.map(|l| l.peer),
                n.right_adjacent.map(|l| l.peer),
            )
        };

        // Parent's child link.
        if let Some(parent_pos) = position.parent() {
            if let Some(parent_peer) = self.by_position.get(parent_pos) {
                let side = position.child_side().expect("non-root");
                let parent = self.node_mut(parent_peer)?;
                parent.set_child(side, Some(link));
            }
        }
        // Children's parent links.
        for child_pos in [
            position.left_child_checked(),
            position.right_child_checked(),
        ]
        .into_iter()
        .flatten()
        {
            if let Some(child_peer) = self.by_position.get(child_pos) {
                let child = self.node_mut(child_peer)?;
                child.parent = Some(link);
            }
        }
        // Same-level neighbours' table entries.
        for side in Side::BOTH {
            for index in 0..position.routing_table_size() {
                let Some(neighbor_pos) = position.routing_neighbor(side, index) else {
                    continue;
                };
                let Some(neighbor_peer) = self.by_position.get(neighbor_pos) else {
                    continue;
                };
                let neighbor = self.node_mut(neighbor_peer)?;
                neighbor.table_mut(side.opposite()).set(
                    index,
                    RoutingEntry::with_children(link, occ_left, occ_right),
                );
            }
        }
        // Adjacent peers' recorded position/range for the occupant.
        for (adj, side) in [(occ_left_adj, Side::Right), (occ_right_adj, Side::Left)] {
            if let Some(adj_peer) = adj {
                if let Some(adj_node) = self.node_opt_mut(adj_peer) {
                    adj_node.set_adjacent(side, Some(link));
                }
            }
        }
        Ok(())
    }

    /// Resolves an optional position to its occupant's link.
    fn occupant_link(&self, position: Option<Position>) -> Option<Result<NodeLink>> {
        let position = position?;
        let occupant = self.by_position.get(position)?;
        Some(self.link_of(occupant))
    }
}

/// Checked child-position helpers used by the rebuild (avoid panicking at
/// [`Position::MAX_LEVEL`]).
trait CheckedChildren {
    fn left_child_checked(self) -> Option<Position>;
    fn right_child_checked(self) -> Option<Position>;
}

impl CheckedChildren for Position {
    fn left_child_checked(self) -> Option<Position> {
        Position::checked_new(self.level() + 1, 2 * self.number() - 1)
    }

    fn right_child_checked(self) -> Option<Position> {
        Position::checked_new(self.level() + 1, 2 * self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn position_safely_vacatable_matches_leaf_structure() {
        let system = build(20, 1);
        for &peer in system.peers() {
            let node = system.node(peer).unwrap();
            let expected = node.can_leave_without_replacement();
            assert_eq!(
                system.position_safely_vacatable(node.position),
                expected,
                "vacatable mismatch at {:?}",
                node.position
            );
        }
    }

    #[test]
    fn rebuild_structural_links_is_idempotent_on_consistent_state() {
        let mut system = build(40, 2);
        let peers = system.peers().to_vec();
        for peer in peers {
            let before = system.node(peer).unwrap().clone();
            system.rebuild_structural_links(peer).unwrap();
            let after = system.node(peer).unwrap();
            assert_eq!(before.parent.map(|l| l.peer), after.parent.map(|l| l.peer));
            assert_eq!(
                before.left_child.map(|l| l.peer),
                after.left_child.map(|l| l.peer)
            );
            assert_eq!(
                before.right_child.map(|l| l.peer),
                after.right_child.map(|l| l.peer)
            );
            assert_eq!(
                before.left_table.occupied_count(),
                after.left_table.occupied_count()
            );
            assert_eq!(
                before.right_table.occupied_count(),
                after.right_table.occupied_count()
            );
        }
    }

    #[test]
    fn plan_shift_size_reporting() {
        let plan = RestructurePlan {
            assignments: vec![
                (PeerId(1), Position::new(2, 1)),
                (PeerId(2), Position::new(2, 2)),
            ],
            vacated: None,
        };
        assert_eq!(plan.shift_size(), 2);
    }
}
