//! Data insertion and deletion (paper §IV-C).
//!
//! Both operations locate the owning node with the exact-match routing walk
//! and then act locally, so their cost is `O(log N)` messages.  Insertion of
//! a key outside the current domain is handled by the leftmost / rightmost
//! node expanding its range, which costs an extra `O(log N)` messages to
//! refresh the links that record that node's range.  Insertions may trigger
//! load balancing (§IV-D), reported separately.

use baton_net::PeerId;

use crate::error::{BatonError, Result};
use crate::range::Key;
use crate::reports::{DeleteReport, InsertReport};
use crate::store::Value;
use crate::system::BatonSystem;

impl BatonSystem {
    /// Inserts `value` under `key`, issuing the request at a uniformly
    /// random node.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<InsertReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.insert_from(issuer, key, value)
    }

    /// Inserts `value` under `key`, issuing the request at `issuer`.
    ///
    /// Keys outside the current domain are accepted: the leftmost (or
    /// rightmost) node expands its range to cover them, and the overlay's
    /// domain grows accordingly (paper §IV-C).
    pub fn insert_from(&mut self, issuer: PeerId, key: Key, value: Value) -> Result<InsertReport> {
        self.check_alive(issuer)?;
        let op = self.net.begin_op("insert");
        let walk = self.locate_owner(op, issuer, key, "insert")?;
        let mut expansion_messages = 0u64;
        // `walk.data` is the node whose slice takes the key: the owner
        // itself, or — at k > 1 while the owner is dead — the dead node
        // whose retained slice a replica holder serves.  Range-checking the
        // *data* node is what keeps a failover write from being mistaken
        // for an out-of-domain expansion.
        let target_range = self.node_ref(walk.data)?.range;
        if !target_range.contains(key) {
            // Leftmost / rightmost expansion.
            {
                let node = self.node_mut(walk.data)?;
                if key < node.range.low() {
                    node.range = node.range.extend_low(key);
                } else {
                    node.range = node.range.extend_high(key + 1);
                }
            }
            if key < self.domain.low() {
                self.domain = self.domain.extend_low(key);
            } else if key >= self.domain.high() {
                self.domain = self.domain.extend_high(key + 1);
            }
            expansion_messages = self.broadcast_range_update(op, walk.data)?;
        }
        self.node_mut(walk.data)?.store.insert(key, value);
        let replication_messages = self.charge_replica_copies(op, walk.owner, walk.data);
        let balance = if walk.data == walk.owner {
            self.maybe_balance_after_insert(op, walk.data)?
        } else {
            // Failover write into a dead node's slice: balancing waits for
            // the repair.
            None
        };
        self.net.finish_op(op);
        Ok(InsertReport {
            key,
            owner: walk.data,
            messages: walk.messages + replication_messages,
            expansion_messages,
            balance,
        })
    }

    /// Deletes one value stored under `key`, issuing the request at a
    /// uniformly random node.
    pub fn delete(&mut self, key: Key) -> Result<DeleteReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.delete_from(issuer, key)
    }

    /// Deletes one value stored under `key`, issuing the request at
    /// `issuer`.  Returns `removed == false` if no value was stored.
    pub fn delete_from(&mut self, issuer: PeerId, key: Key) -> Result<DeleteReport> {
        self.check_alive(issuer)?;
        self.check_key(key)?;
        let op = self.net.begin_op("delete");
        let walk = self.locate_owner(op, issuer, key, "delete")?;
        let removed = self.node_mut(walk.data)?.store.remove_one(key).is_some();
        let replication_messages = if removed {
            self.charge_replica_copies(op, walk.owner, walk.data)
        } else {
            0
        };
        self.net.finish_op(op);
        Ok(DeleteReport {
            key,
            owner: walk.data,
            removed,
            messages: walk.messages + replication_messages,
            balance: None,
        })
    }

    /// Inserts a batch of `(key, value)` pairs (the paper loads its networks
    /// with `1000 × N` values "in batches").  Returns the per-insert reports.
    pub fn insert_batch(&mut self, items: &[(Key, Value)]) -> Result<Vec<InsertReport>> {
        items
            .iter()
            .map(|(k, v)| self.insert(*k, *v))
            .collect::<Result<Vec<_>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatonConfig, LoadBalanceConfig};
    use crate::range::KeyRange;
    use crate::validate::validate;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn insert_places_key_at_owner() {
        let mut system = build(50, 1);
        let report = system.insert(123_456_789, 7).unwrap();
        let owner = system.node(report.owner).unwrap();
        assert!(owner.range.contains(123_456_789));
        assert_eq!(owner.store.get(123_456_789), &[7]);
        assert_eq!(report.expansion_messages, 0);
        validate(&system).unwrap();
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let mut system = build(30, 2);
        system.insert(42_000_000, 1).unwrap();
        let found = system.search_exact(42_000_000).unwrap();
        assert_eq!(found.matches, vec![1]);
        let deleted = system.delete(42_000_000).unwrap();
        assert!(deleted.removed);
        let gone = system.search_exact(42_000_000).unwrap();
        assert!(gone.matches.is_empty());
        let missing = system.delete(42_000_000).unwrap();
        assert!(!missing.removed);
    }

    #[test]
    fn insert_cost_is_logarithmic() {
        let mut system = build(400, 3);
        let log_n = (system.node_count() as f64).log2();
        let mut total = 0u64;
        for i in 0..100u64 {
            let key = 1 + (i * 9_876_543) % 999_999_998;
            let report = system.insert(key, i).unwrap();
            total += report.messages;
        }
        let avg = total as f64 / 100.0;
        assert!(
            avg <= 1.6 * log_n + 2.0,
            "average insert cost {avg} too high"
        );
    }

    #[test]
    fn out_of_domain_insert_expands_leftmost_node() {
        let config = BatonConfig::default()
            .with_domain(KeyRange::new(1000, 2000))
            .with_load_balance(LoadBalanceConfig::disabled());
        let mut system = BatonSystem::build(config, 4, 20).unwrap();
        let before = system.domain();
        assert_eq!(before, KeyRange::new(1000, 2000));
        let report = system.insert(5, 99).unwrap();
        assert!(report.expansion_messages > 0);
        assert_eq!(system.domain().low(), 5);
        let owner = system.node(report.owner).unwrap();
        assert!(owner.range.contains(5));
        assert_eq!(owner.store.get(5), &[99]);
        validate(&system).unwrap();
        // And the value is findable afterwards.
        let found = system.search_exact(5).unwrap();
        assert_eq!(found.matches, vec![99]);
    }

    #[test]
    fn out_of_domain_insert_expands_rightmost_node() {
        let config = BatonConfig::default()
            .with_domain(KeyRange::new(1000, 2000))
            .with_load_balance(LoadBalanceConfig::disabled());
        let mut system = BatonSystem::build(config, 4, 20).unwrap();
        let report = system.insert(5000, 1).unwrap();
        assert!(report.expansion_messages > 0);
        assert_eq!(system.domain().high(), 5001);
        validate(&system).unwrap();
        assert_eq!(system.search_exact(5000).unwrap().matches, vec![1]);
    }

    #[test]
    fn delete_out_of_domain_key_is_rejected() {
        let mut system = build(10, 5);
        assert_eq!(system.delete(0).unwrap_err(), BatonError::KeyOutOfDomain(0));
    }

    #[test]
    fn insert_batch_inserts_everything() {
        let mut system = build(20, 6);
        let items: Vec<(Key, Value)> = (0..50u64).map(|i| (1 + i * 19_999_999, i)).collect();
        let reports = system.insert_batch(&items).unwrap();
        assert_eq!(reports.len(), 50);
        assert_eq!(system.total_items(), 50);
        for (k, v) in items {
            let found = system.search_exact(k).unwrap();
            assert_eq!(found.matches, vec![v]);
        }
    }

    #[test]
    fn data_stays_with_owner_across_further_joins() {
        let mut system = build(10, 7);
        for i in 0..100u64 {
            system.insert(1 + i * 9_999_999, i).unwrap();
        }
        for _ in 0..40 {
            system.join_random().unwrap();
        }
        validate(&system).unwrap();
        assert_eq!(system.total_items(), 100);
        for i in 0..100u64 {
            let found = system.search_exact(1 + i * 9_999_999).unwrap();
            assert_eq!(found.matches, vec![i], "key {i} lost after joins");
        }
    }
}
