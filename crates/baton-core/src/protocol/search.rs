//! Exact-match and range queries (paper §IV-A and §IV-B).
//!
//! Both query kinds route the same way: a node that does not own the
//! searched value jumps as far as possible towards it using its sideways
//! routing tables, falling back to a child link and then to an adjacent
//! link.  Exact queries stop at the owner; range queries find the first
//! intersecting node the same way and then sweep along adjacent links until
//! the range is covered — `O(log N + X)` messages for a range spanning `X`
//! nodes.

use baton_net::{OpScope, PeerId};

use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::node::BatonNode;
use crate::range::{Key, KeyRange};
use crate::reports::{RangeSearchReport, SearchReport};
use crate::system::BatonSystem;

/// Outcome of routing a query to the node owning a key.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OwnerWalk {
    /// The node whose range contains the key (or the boundary node when the
    /// key lies outside the current domain).
    pub owner: PeerId,
    /// The node whose *store* answers for the key.  Equal to `owner` except
    /// at k > 1 when the true owner is dead: the walk then terminates at an
    /// alive replica holder (`owner`) serving the dead node's retained
    /// slice, and `data` names that dead node.
    pub data: PeerId,
    /// Messages used by the walk.
    pub messages: u64,
    /// Overlay hops taken.
    pub hops: u32,
}

/// Message cost of a count-only query (see
/// [`BatonSystem::search_exact_count`] /
/// [`BatonSystem::search_range_count`]): everything the harness plots,
/// without materialising the matched values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchCostReport {
    /// Matching values found.
    pub matches: usize,
    /// Messages used.
    pub messages: u64,
    /// Nodes whose range intersected the query (1 for exact queries).
    pub nodes_visited: usize,
}

/// One suspended step of the fault-tolerant DFS walk: the candidates of
/// `peer` occupy `arena[start..end]` of the shared candidate arena and the
/// walk has tried the first `next` of them.
#[derive(Clone, Copy, Debug)]
struct WalkFrame {
    peer: PeerId,
    start: usize,
    end: usize,
    next: usize,
    fallback_added: bool,
}

/// Reusable buffers of the `locate_owner` walk, carried on the
/// [`BatonSystem`] so a healthy walk performs no allocation at all:
///
/// * `visited` is an epoch-stamped slab over the dense peer-id space — the
///   DFS visited set without a hash set or a per-walk clear;
/// * `arena` holds every stack frame's candidate list contiguously (frames
///   are strictly stack-ordered, so the top frame always owns the arena
///   tail and fallback extension appends in place);
/// * `frames` is the DFS stack itself.
#[derive(Clone, Debug, Default)]
pub(crate) struct WalkScratch {
    visited: Vec<u32>,
    epoch: u32,
    arena: Vec<PeerId>,
    frames: Vec<WalkFrame>,
}

impl WalkScratch {
    /// Prepares the scratch for a fresh walk over `total_peers` peer ids.
    fn begin(&mut self, total_peers: usize) {
        self.arena.clear();
        self.frames.clear();
        if self.visited.len() < total_peers {
            self.visited.resize(total_peers, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: old stamps could alias the new epoch, so clear.
            self.visited.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn mark_visited(&mut self, peer: PeerId) {
        let index = peer.raw() as usize;
        if self.visited.len() <= index {
            self.visited.resize(index + 1, 0);
        }
        self.visited[index] = self.epoch;
    }

    #[inline]
    fn is_visited(&self, peer: PeerId) -> bool {
        self.visited.get(peer.raw() as usize) == Some(&self.epoch)
    }
}

/// Pushes `candidate` into the frame segment `arena[start..]` unless it is
/// the owner itself or already present.  Duplicates keep their first (most
/// useful) slot; the segment is small (O(log N)), so deduplication is a
/// linear scan, not a hash set.
#[inline]
fn push_candidate(arena: &mut Vec<PeerId>, start: usize, owner: PeerId, candidate: PeerId) {
    if candidate != owner && !arena[start..].contains(&candidate) {
        arena.push(candidate);
    }
}

impl BatonSystem {
    /// Exact-match query issued at a uniformly random node.
    pub fn search_exact(&mut self, key: Key) -> Result<SearchReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.search_exact_from(issuer, key)
    }

    /// Exact-match query issued at `issuer` (paper §IV-A).
    pub fn search_exact_from(&mut self, issuer: PeerId, key: Key) -> Result<SearchReport> {
        let walk = self.search_exact_walk(issuer, key)?;
        let matches = self.node_ref(walk.data)?.store.get(key).to_vec();
        Ok(SearchReport {
            key,
            owner: walk.owner,
            matches,
            messages: walk.messages,
            hops: walk.hops,
        })
    }

    /// Exact-match query from a uniformly random node, reporting costs and
    /// the match count only — the allocation-free variant the generic
    /// harness and the throughput benches drive.
    pub fn search_exact_count(&mut self, key: Key) -> Result<SearchCostReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        let walk = self.search_exact_walk(issuer, key)?;
        let matches = self.node_ref(walk.data)?.store.get(key).len();
        Ok(SearchCostReport {
            matches,
            messages: walk.messages,
            nodes_visited: 1,
        })
    }

    /// Routes an exact query to the owner inside a fresh accounting scope.
    ///
    /// The scope is finished even when routing fails (an unreachable key on
    /// an unrecovered network): an unfinished operation at the front of the
    /// live window would block [`baton_net::MessageStats::retire_finished`]
    /// for the rest of the run.
    fn search_exact_walk(&mut self, issuer: PeerId, key: Key) -> Result<OwnerWalk> {
        self.check_alive(issuer)?;
        self.check_key(key)?;
        let op = self.net.begin_op("search.exact");
        let walk = self.locate_owner(op, issuer, key, "search_exact");
        self.net.finish_op(op);
        walk
    }

    /// Range query issued at a uniformly random node.
    pub fn search_range(&mut self, range: KeyRange) -> Result<RangeSearchReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.search_range_from(issuer, range)
    }

    /// Range query issued at `issuer` (paper §IV-B).
    ///
    /// The query is clamped to the overlay's current domain; an empty
    /// intersection returns an empty result without any messages.
    pub fn search_range_from(
        &mut self,
        issuer: PeerId,
        range: KeyRange,
    ) -> Result<RangeSearchReport> {
        let mut matches = Vec::new();
        let (messages, nodes_visited) = self.range_walk(issuer, range, |node, clamped| {
            matches.extend(node.store.scan(clamped))
        })?;
        Ok(RangeSearchReport {
            range,
            matches,
            messages,
            nodes_visited,
        })
    }

    /// Range query from a uniformly random node, reporting costs and the
    /// match count only (no value materialisation — the sweep counts keys
    /// in place).
    pub fn search_range_count(&mut self, range: KeyRange) -> Result<SearchCostReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        let mut matches = 0usize;
        let (messages, nodes_visited) = self.range_walk(issuer, range, |node, clamped| {
            matches += node.store.count_in(clamped)
        })?;
        Ok(SearchCostReport {
            matches,
            messages,
            nodes_visited,
        })
    }

    /// The shared range-query engine: routes to the owner of the range's
    /// lower bound, then sweeps right along adjacent links until the range
    /// is covered, calling `visit(node, clamped_range)` on every
    /// intersecting node.  Returns `(messages, nodes_visited)`.
    fn range_walk<F>(
        &mut self,
        issuer: PeerId,
        range: KeyRange,
        mut visit: F,
    ) -> Result<(u64, usize)>
    where
        F: FnMut(&BatonNode, KeyRange),
    {
        self.check_alive(issuer)?;
        let clamped = range.intersection(self.domain);
        if clamped.is_empty() {
            return Ok((0, 0));
        }
        let op = self.net.begin_op("search.range");
        // The scope is finished even on a routing error, as in
        // `search_exact_walk`: an unfinished front op would block
        // retirement for the rest of the run.
        let result = self.range_walk_in_op(op, issuer, clamped, &mut visit);
        self.net.finish_op(op);
        result
    }

    /// The body of [`range_walk`](Self::range_walk), inside an open scope:
    /// route to the owner of the range's lower bound (exactly like a point
    /// query), then sweep right.
    fn range_walk_in_op(
        &mut self,
        op: OpScope,
        issuer: PeerId,
        clamped: KeyRange,
        visit: &mut dyn FnMut(&BatonNode, KeyRange),
    ) -> Result<(u64, usize)> {
        let walk = self.locate_owner(op, issuer, clamped.low(), "search_range")?;
        let mut messages = walk.messages;
        let mut nodes_visited = 0usize;
        // At k > 1 the walk may have terminated at a replica holder for a
        // dead owner; the sweep then starts inside the dead node's retained
        // slice, served on its behalf.  `from` tracks the last *alive* node
        // so every hop has a live sender.
        let mut current = walk.data;
        let mut from = walk.owner;
        let mut dead_run = usize::from(walk.data != walk.owner);
        let limit = self.walk_limit() as usize + self.node_count();
        loop {
            let (node_range, next) = {
                let node = self.node_ref(current)?;
                visit(node, clamped);
                (node.range, node.right_adjacent.map(|l| l.peer))
            };
            nodes_visited += 1;
            if node_range.high() >= clamped.high() {
                break;
            }
            let Some(next) = next else { break };
            let delivered = self.hop(
                op,
                from,
                next,
                walk.hops + nodes_visited as u32,
                BatonMessage::SearchRange {
                    range: clamped,
                    issuer,
                },
            )?;
            messages += 1;
            if delivered {
                dead_run = 0;
                from = next;
            } else if self.replication <= 1 {
                // The adjacent node is unreachable (an unrecovered failure)
                // and nothing replicates its slice: return the partial
                // answer gathered so far.
                break;
            } else {
                dead_run += 1;
                if dead_run >= self.replication {
                    // Every holder of this slice died inside one repair
                    // window: the range cannot be answered until repair.
                    return Err(BatonError::PeerNotAlive(next));
                }
                // A surviving neighbour replicates the dead node's slice:
                // sweep through the retained content on its behalf.
            }
            current = next;
            if nodes_visited > limit {
                return Err(BatonError::RoutingLoop {
                    operation: "search_range",
                    hops: nodes_visited as u32,
                });
            }
        }
        Ok((messages, nodes_visited))
    }

    /// `true` if `peer` terminates the walk towards `key`: it owns the key,
    /// or it is the boundary node that would expand its range to cover an
    /// out-of-domain key (§IV-C).
    fn walk_terminates_at(&self, peer: PeerId, key: Key) -> Result<bool> {
        let domain = self.domain;
        let node = self.node_ref(peer)?;
        Ok(node.range.contains(key)
            || (key >= node.range.high() && node.range.high() >= domain.high())
            || (key < node.range.low() && node.range.low() <= domain.low()))
    }

    /// Failover termination at k > 1: an alive node also terminates the
    /// walk when it holds the replica of a *dead* adjacent neighbour whose
    /// range contains `key` — the query is answered from the replica
    /// instead of bouncing off the dead owner until the budget runs out.
    /// Returns the dead node whose retained slice serves the answer.
    ///
    /// Free at k = 1 (and on any run without failures): the first guard
    /// short-circuits before touching any link.
    fn replica_terminates_at(&self, peer: PeerId, key: Key) -> Result<Option<PeerId>> {
        if self.replication <= 1 || self.dead_peers.is_empty() {
            return Ok(None);
        }
        let node = self.node_ref(peer)?;
        for link in [node.left_adjacent, node.right_adjacent]
            .into_iter()
            .flatten()
        {
            let candidate = link.peer;
            if self.net.is_alive(candidate) {
                continue;
            }
            let Some(candidate_node) = self.node(candidate) else {
                continue;
            };
            if candidate_node.range.contains(key) && self.replica_targets(candidate).contains(&peer)
            {
                return Ok(Some(candidate));
            }
        }
        Ok(None)
    }

    /// Appends the greedy candidate links of `peer` for forwarding a query
    /// towards `key` to `arena[start..]`, most useful first — exactly the
    /// §IV-A order: the sideways routing-table entries that do not overshoot
    /// the key (farthest first, each followed by its recorded children as
    /// the §III-D detour), then the key-side child, adjacent and parent
    /// links.  A healthy walk always follows the first candidate, so this
    /// order alone reproduces the paper's message counts.
    fn push_walk_candidates(
        &self,
        peer: PeerId,
        key: Key,
        arena: &mut Vec<PeerId>,
        start: usize,
    ) -> Result<()> {
        let node = self.node_ref(peer)?;
        let towards_right = key >= node.range.high();

        // 1. Matching key-side entries, farthest first (§IV-A greedy order).
        let near_table = if towards_right {
            &node.right_table
        } else {
            &node.left_table
        };
        for (_, entry) in near_table.iter().rev() {
            let matching = if towards_right {
                entry.link.range.low() <= key
            } else {
                entry.link.range.high() > key
            };
            if !matching {
                continue;
            }
            push_candidate(arena, start, peer, entry.link.peer);
            // §III-D detour: if the neighbour is unreachable, its children
            // (recorded in the entry) still lead towards the key.
            let (first, second) = if towards_right {
                (entry.right_child, entry.left_child)
            } else {
                (entry.left_child, entry.right_child)
            };
            for candidate in first.into_iter().chain(second) {
                push_candidate(arena, start, peer, candidate);
            }
        }

        // 2. Key-side child, adjacent and parent links.
        let (child, adjacent) = if towards_right {
            (node.right_child, node.right_adjacent)
        } else {
            (node.left_child, node.left_adjacent)
        };
        for link in [child, adjacent, node.parent].into_iter().flatten() {
            push_candidate(arena, start, peer, link.peer);
        }
        Ok(())
    }

    /// Appends the §III-D *fallback* candidates of `peer` to
    /// `arena[start..]`: every remaining link — overshooting key-side table
    /// entries (nearest first, with their recorded children), the away-side
    /// child/adjacent links and the away-side table — so that when failures
    /// block every greedy candidate the walk can still detour through any
    /// live neighbour rather than give up.
    ///
    /// Computed lazily, only when the greedy candidates of
    /// [`push_walk_candidates`](Self::push_walk_candidates) are exhausted
    /// (i.e. a failure was actually hit); `arena[start..]` already holds the
    /// greedy list, which the shared dedup naturally skips.
    fn push_fallback_candidates(
        &self,
        peer: PeerId,
        key: Key,
        arena: &mut Vec<PeerId>,
        start: usize,
    ) -> Result<()> {
        let node = self.node_ref(peer)?;
        let towards_right = key >= node.range.high();
        let push_entry = |arena: &mut Vec<PeerId>, entry: &crate::routing::RoutingEntry| {
            push_candidate(arena, start, peer, entry.link.peer);
            for candidate in entry.left_child.into_iter().chain(entry.right_child) {
                push_candidate(arena, start, peer, candidate);
            }
        };

        let (near_table, far_table) = if towards_right {
            (&node.right_table, &node.left_table)
        } else {
            (&node.left_table, &node.right_table)
        };

        // Overshooting key-side entries, nearest first — they land past the
        // key, from where the walk can come back.
        for (_, entry) in near_table.iter() {
            push_entry(arena, entry);
        }

        // The away side of the node, nearest first.
        let (child, adjacent) = if towards_right {
            (node.left_child, node.left_adjacent)
        } else {
            (node.right_child, node.right_adjacent)
        };
        for link in [child, adjacent].into_iter().flatten() {
            push_candidate(arena, start, peer, link.peer);
        }
        for (_, entry) in far_table.iter() {
            push_entry(arena, entry);
        }
        Ok(())
    }

    /// Routes from `issuer` towards the node owning `key`, following the
    /// `search_exact` algorithm of §IV-A.  Keys outside the current domain
    /// terminate at the leftmost / rightmost node (the node that would
    /// expand its range to cover them, §IV-C).
    ///
    /// The walk is fault tolerant (§III-D) and implemented as a depth-first
    /// exploration over [`walk_candidates`](Self::walk_candidates), extended
    /// lazily with
    /// [`walk_fallback_candidates`](Self::walk_fallback_candidates) when the
    /// greedy options run out: each node tries its candidates from most to
    /// least useful, paying one
    /// (counted, failed) message per dead candidate it bounces off; the
    /// request carries the set of nodes already visited so the walk never
    /// ping-pongs, and a node whose every candidate is dead or visited sends
    /// the request *back* to the node it came from (one more counted
    /// message), which resumes with its own next candidate.  On a healthy
    /// network the first candidate is always alive and unvisited, so the
    /// walk — and its message count — is exactly the greedy §IV-A descent.
    pub(crate) fn locate_owner(
        &mut self,
        op: OpScope,
        issuer: PeerId,
        key: Key,
        operation: &'static str,
    ) -> Result<OwnerWalk> {
        if self.walk_terminates_at(issuer, key)? {
            return Ok(OwnerWalk {
                owner: issuer,
                data: issuer,
                messages: 0,
                hops: 0,
            });
        }
        if let Some(dead) = self.replica_terminates_at(issuer, key)? {
            return Ok(OwnerWalk {
                owner: issuer,
                data: dead,
                messages: 0,
                hops: 0,
            });
        }
        // Borrow juggling: the scratch buffers live on the system but the
        // walk also sends messages through `self`, so take them out for the
        // duration of the walk and put them back whatever the outcome.
        let mut scratch = std::mem::take(&mut self.walk_scratch);
        let result = self.locate_owner_walk(op, issuer, key, operation, &mut scratch);
        self.walk_scratch = scratch;
        result
    }

    /// The DFS itself, running entirely inside `scratch` (see
    /// [`WalkScratch`]): no allocation on a healthy walk after the buffers
    /// have warmed up.
    fn locate_owner_walk(
        &mut self,
        op: OpScope,
        issuer: PeerId,
        key: Key,
        operation: &'static str,
        scratch: &mut WalkScratch,
    ) -> Result<OwnerWalk> {
        // A DFS visits every live node at most once and every link at most
        // twice (forward try + backtrack), so this budget is a safety net
        // against bookkeeping bugs, not a tuning knob.
        let message_budget = (self.walk_limit() as u64) * 4 + 4 * self.node_count() as u64;
        scratch.begin(self.net.peers().total());
        scratch.mark_visited(issuer);
        self.push_walk_candidates(issuer, key, &mut scratch.arena, 0)?;
        scratch.frames.push(WalkFrame {
            peer: issuer,
            start: 0,
            end: scratch.arena.len(),
            next: 0,
            fallback_added: false,
        });
        let mut messages = 0u64;
        let mut hops = 0u32;
        loop {
            let top = *scratch
                .frames
                .last()
                .expect("stack never drains in the loop");
            let current = top.peer;
            let next_index = top.start + top.next;
            let candidate = (next_index < top.end).then(|| scratch.arena[next_index]);
            let Some(candidate) = candidate else {
                if !top.fallback_added {
                    // The greedy candidates are exhausted (a failure was
                    // actually hit): extend with the full §III-D fallback
                    // link set, computed lazily so healthy hops never pay
                    // for it.  The top frame owns the arena tail, so the
                    // fallback candidates append in place.
                    debug_assert_eq!(top.end, scratch.arena.len());
                    self.push_fallback_candidates(current, key, &mut scratch.arena, top.start)?;
                    let frame = scratch.frames.last_mut().expect("unchanged");
                    frame.fallback_added = true;
                    frame.end = scratch.arena.len();
                    continue;
                }
                // Every candidate of `current` is dead or already explored:
                // hand the request back to the node it came from.
                let exhausted = scratch.frames.pop().expect("just peeked");
                scratch.arena.truncate(exhausted.start);
                let Some(previous) = scratch.frames.last() else {
                    // The issuer itself is out of options: the key is
                    // unreachable until the failures are repaired.
                    return Err(BatonError::PeerNotAlive(exhausted.peer));
                };
                let previous_peer = previous.peer;
                hops += 1;
                self.hop(
                    op,
                    exhausted.peer,
                    previous_peer,
                    hops,
                    BatonMessage::SearchExact { key, issuer },
                )?;
                messages += 1;
                if messages > message_budget {
                    return Err(BatonError::RoutingLoop { operation, hops });
                }
                continue;
            };
            scratch.frames.last_mut().expect("unchanged").next += 1;
            if scratch.is_visited(candidate) {
                continue;
            }
            let delivered = self.hop(
                op,
                current,
                candidate,
                hops + 1,
                BatonMessage::SearchExact { key, issuer },
            )?;
            messages += 1;
            if messages > message_budget {
                return Err(BatonError::RoutingLoop { operation, hops });
            }
            if !delivered {
                continue;
            }
            scratch.mark_visited(candidate);
            hops += 1;
            if self.walk_terminates_at(candidate, key)? {
                return Ok(OwnerWalk {
                    owner: candidate,
                    data: candidate,
                    messages,
                    hops,
                });
            }
            if let Some(dead) = self.replica_terminates_at(candidate, key)? {
                return Ok(OwnerWalk {
                    owner: candidate,
                    data: dead,
                    messages,
                    hops,
                });
            }
            let start = scratch.arena.len();
            self.push_walk_candidates(candidate, key, &mut scratch.arena, start)?;
            scratch.frames.push(WalkFrame {
                peer: candidate,
                start,
                end: scratch.arena.len(),
                next: 0,
                fallback_added: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;
    use crate::validate::validate;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn search_on_empty_network_fails() {
        let mut system = BatonSystem::with_seed(1);
        assert_eq!(
            system.search_exact(5).unwrap_err(),
            BatonError::EmptyNetwork
        );
    }

    #[test]
    fn search_out_of_domain_key_is_rejected() {
        let mut system = build(4, 2);
        let err = system.search_exact(0).unwrap_err();
        assert_eq!(err, BatonError::KeyOutOfDomain(0));
    }

    #[test]
    fn single_node_owns_every_key() {
        let mut system = BatonSystem::with_seed(3);
        let root = system.bootstrap().unwrap();
        let report = system.search_exact_from(root, 123_456).unwrap();
        assert_eq!(report.owner, root);
        assert_eq!(report.messages, 0);
        assert_eq!(report.hops, 0);
        assert!(report.matches.is_empty());
    }

    #[test]
    fn exact_search_finds_owner_from_every_node() {
        let mut system = build(60, 5);
        validate(&system).unwrap();
        // Pick a handful of keys; from every issuer the walk must terminate
        // at the node whose range contains the key.
        let keys = [1u64, 999_999_999 - 1, 500_000_000, 123_456_789, 42];
        for key in keys {
            for issuer in system.peers().to_vec() {
                let report = system.search_exact_from(issuer, key).unwrap();
                let owner_node = system.node(report.owner).unwrap();
                assert!(
                    owner_node.range.contains(key),
                    "owner {:?} does not contain {key}",
                    owner_node.range
                );
            }
        }
    }

    #[test]
    fn exact_search_is_logarithmic() {
        let mut system = build(500, 7);
        let log_n = (system.node_count() as f64).log2();
        let mut total = 0u64;
        let queries = 200;
        for i in 0..queries {
            let key = 1 + (i as u64 * 4_999_999) % 999_999_998;
            let report = system.search_exact(key).unwrap();
            total += report.messages;
            assert!(
                (report.messages as f64) <= 2.0 * log_n + 6.0,
                "a single search took {} messages (log N = {log_n:.1})",
                report.messages
            );
        }
        let avg = total as f64 / queries as f64;
        assert!(avg <= 1.6 * log_n + 2.0, "average {avg} too high");
    }

    #[test]
    fn exact_search_finds_inserted_values() {
        let mut system = build(30, 9);
        system.insert(777_777, 42).unwrap();
        system.insert(777_777, 43).unwrap();
        let report = system.search_exact(777_777).unwrap();
        assert_eq!(report.matches.len(), 2);
        assert!(report.matches.contains(&42));
        assert!(report.matches.contains(&43));
        let miss = system.search_exact(777_778).unwrap();
        assert!(miss.matches.is_empty());
    }

    #[test]
    fn range_search_returns_all_matches_in_order() {
        let mut system = build(40, 11);
        let keys: Vec<u64> = (1..=200u64).map(|i| i * 4_000_000).collect();
        for (i, k) in keys.iter().enumerate() {
            system.insert(*k, i as u64).unwrap();
        }
        let range = KeyRange::new(100_000_000, 500_000_001);
        let report = system.search_range(range).unwrap();
        let expected: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| range.contains(*k))
            .collect();
        let found_keys: Vec<u64> = report.matches.iter().map(|(k, _)| *k).collect();
        assert_eq!(found_keys, expected);
        assert!(report.nodes_visited >= 1);
        assert!(report.messages >= report.nodes_visited as u64 - 1);
    }

    #[test]
    fn range_search_cost_is_log_n_plus_nodes_covered() {
        let mut system = build(300, 13);
        let log_n = (system.node_count() as f64).log2();
        let report = system
            .search_range(KeyRange::new(200_000_000, 400_000_000))
            .unwrap();
        let bound = 2.0 * log_n + 6.0 + report.nodes_visited as f64;
        assert!(
            (report.messages as f64) <= bound,
            "range search took {} messages, visited {} nodes (bound {bound})",
            report.messages,
            report.nodes_visited
        );
    }

    #[test]
    fn empty_or_out_of_domain_range_returns_nothing() {
        let mut system = build(10, 15);
        let empty = system.search_range(KeyRange::new(5, 5)).unwrap();
        assert!(empty.matches.is_empty());
        assert_eq!(empty.messages, 0);
        assert_eq!(empty.nodes_visited, 0);
    }

    #[test]
    fn failed_search_still_finishes_its_op_so_retirement_drains() {
        // Kill every peer except one issuer: the walk cannot reach keys
        // owned by the dead peers and errors out.  The errored operation
        // must still be finished — an unfinished op at the front of the
        // live window would block `retire_finished` for the rest of the
        // run.
        let mut system = build(8, 21);
        let peers = system.peers().to_vec();
        let issuer = peers[0];
        for peer in &peers[1..] {
            system.net.fail_peer(*peer);
        }
        let victim_key = {
            let survivor = system.node(issuer).unwrap().range;
            // Any key outside the survivor's range is owned by a dead peer.
            if survivor.low() > system.domain().low() {
                system.domain().low()
            } else {
                survivor.high()
            }
        };
        assert!(system.search_exact_from(issuer, victim_key).is_err());
        assert!(system
            .search_range_from(issuer, KeyRange::new(victim_key, victim_key + 1))
            .is_err());
        system.stats_mut().retire_finished();
        assert_eq!(
            system.stats().live_op_count(),
            0,
            "errored searches left unfinished ops behind"
        );
    }

    #[test]
    fn whole_domain_range_visits_every_node() {
        let mut system = build(25, 17);
        let report = system.search_range(KeyRange::paper_domain()).unwrap();
        assert_eq!(report.nodes_visited, system.node_count());
    }

    #[test]
    fn search_from_dead_issuer_is_rejected() {
        let mut system = build(10, 19);
        let victim = system.peers()[0];
        system.net.fail_peer(victim);
        assert_eq!(
            system.search_exact_from(victim, 5).unwrap_err(),
            BatonError::PeerNotAlive(victim)
        );
    }
}
