//! Exact-match and range queries (paper §IV-A and §IV-B).
//!
//! Both query kinds route the same way: a node that does not own the
//! searched value jumps as far as possible towards it using its sideways
//! routing tables, falling back to a child link and then to an adjacent
//! link.  Exact queries stop at the owner; range queries find the first
//! intersecting node the same way and then sweep along adjacent links until
//! the range is covered — `O(log N + X)` messages for a range spanning `X`
//! nodes.

use baton_net::{OpScope, PeerId};

use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::range::{Key, KeyRange};
use crate::reports::{RangeSearchReport, SearchReport};
use crate::system::BatonSystem;

/// Outcome of routing a query to the node owning a key.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OwnerWalk {
    /// The node whose range contains the key (or the boundary node when the
    /// key lies outside the current domain).
    pub owner: PeerId,
    /// Messages used by the walk.
    pub messages: u64,
    /// Overlay hops taken.
    pub hops: u32,
}

impl BatonSystem {
    /// Exact-match query issued at a uniformly random node.
    pub fn search_exact(&mut self, key: Key) -> Result<SearchReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.search_exact_from(issuer, key)
    }

    /// Exact-match query issued at `issuer` (paper §IV-A).
    pub fn search_exact_from(&mut self, issuer: PeerId, key: Key) -> Result<SearchReport> {
        self.check_alive(issuer)?;
        self.check_key(key)?;
        let op = self.net.begin_op("search.exact");
        let walk = self.locate_owner(op, issuer, key, "search_exact")?;
        let matches = self.node_ref(walk.owner)?.store.get(key).to_vec();
        self.net.finish_op(op);
        Ok(SearchReport {
            key,
            owner: walk.owner,
            matches,
            messages: walk.messages,
            hops: walk.hops,
        })
    }

    /// Range query issued at a uniformly random node.
    pub fn search_range(&mut self, range: KeyRange) -> Result<RangeSearchReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.search_range_from(issuer, range)
    }

    /// Range query issued at `issuer` (paper §IV-B).
    ///
    /// The query is clamped to the overlay's current domain; an empty
    /// intersection returns an empty result without any messages.
    pub fn search_range_from(
        &mut self,
        issuer: PeerId,
        range: KeyRange,
    ) -> Result<RangeSearchReport> {
        self.check_alive(issuer)?;
        let clamped = range.intersection(self.domain);
        if clamped.is_empty() {
            return Ok(RangeSearchReport {
                range,
                matches: Vec::new(),
                messages: 0,
                nodes_visited: 0,
            });
        }
        let op = self.net.begin_op("search.range");
        // Find the first intersecting node: route to the owner of the range's
        // lower bound, exactly like a point query.
        let walk = self.locate_owner(op, issuer, clamped.low(), "search_range")?;
        let mut messages = walk.messages;
        let mut matches = Vec::new();
        let mut nodes_visited = 0usize;
        let mut current = walk.owner;
        let limit = self.walk_limit() as usize + self.node_count();
        loop {
            let (node_range, found, next) = {
                let node = self.node_ref(current)?;
                (
                    node.range,
                    node.store.scan(clamped),
                    node.right_adjacent.map(|l| l.peer),
                )
            };
            nodes_visited += 1;
            matches.extend(found);
            if node_range.high() >= clamped.high() {
                break;
            }
            let Some(next) = next else { break };
            let delivered = self.hop(
                op,
                current,
                next,
                walk.hops + nodes_visited as u32,
                BatonMessage::SearchRange {
                    range: clamped,
                    issuer,
                },
            )?;
            messages += 1;
            if !delivered {
                // The adjacent node is unreachable (an unrecovered failure):
                // return the partial answer gathered so far.
                break;
            }
            current = next;
            if nodes_visited > limit {
                return Err(BatonError::RoutingLoop {
                    operation: "search_range",
                    hops: nodes_visited as u32,
                });
            }
        }
        self.net.finish_op(op);
        Ok(RangeSearchReport {
            range,
            matches,
            messages,
            nodes_visited,
        })
    }

    /// `true` if `peer` terminates the walk towards `key`: it owns the key,
    /// or it is the boundary node that would expand its range to cover an
    /// out-of-domain key (§IV-C).
    fn walk_terminates_at(&self, peer: PeerId, key: Key) -> Result<bool> {
        let domain = self.domain;
        let node = self.node_ref(peer)?;
        Ok(node.range.contains(key)
            || (key >= node.range.high() && node.range.high() >= domain.high())
            || (key < node.range.low() && node.range.low() <= domain.low()))
    }

    /// The greedy candidate links of `peer` for forwarding a query towards
    /// `key`, most useful first — exactly the §IV-A order: the sideways
    /// routing-table entries that do not overshoot the key (farthest first,
    /// each followed by its recorded children as the §III-D detour), then
    /// the key-side child, adjacent and parent links.  A healthy walk always
    /// follows the first candidate, so this order alone reproduces the
    /// paper's message counts.
    ///
    /// Duplicates keep their first (most useful) slot; the list is small
    /// (O(log N)), so deduplication is a linear scan, not a hash set.
    fn walk_candidates(&self, peer: PeerId, key: Key) -> Result<Vec<PeerId>> {
        let node = self.node_ref(peer)?;
        let towards_right = key >= node.range.high();
        let mut candidates: Vec<PeerId> = Vec::new();
        let push = |candidates: &mut Vec<PeerId>, p: PeerId| {
            if p != peer && !candidates.contains(&p) {
                candidates.push(p);
            }
        };

        // 1. Matching key-side entries, farthest first (§IV-A greedy order).
        let near_table = if towards_right {
            &node.right_table
        } else {
            &node.left_table
        };
        let mut matching: Vec<&crate::routing::RoutingEntry> = near_table
            .iter()
            .filter(|(_, e)| {
                if towards_right {
                    e.link.range.low() <= key
                } else {
                    e.link.range.high() > key
                }
            })
            .map(|(_, e)| e)
            .collect();
        matching.reverse();
        for entry in matching {
            push(&mut candidates, entry.link.peer);
            // §III-D detour: if the neighbour is unreachable, its children
            // (recorded in the entry) still lead towards the key.
            let (first, second) = if towards_right {
                (entry.right_child, entry.left_child)
            } else {
                (entry.left_child, entry.right_child)
            };
            first.into_iter().for_each(|p| push(&mut candidates, p));
            second.into_iter().for_each(|p| push(&mut candidates, p));
        }

        // 2. Key-side child, adjacent and parent links.
        let (child, adjacent) = if towards_right {
            (node.right_child, node.right_adjacent)
        } else {
            (node.left_child, node.left_adjacent)
        };
        for link in [child, adjacent, node.parent].into_iter().flatten() {
            push(&mut candidates, link.peer);
        }
        Ok(candidates)
    }

    /// The §III-D *fallback* candidates of `peer`: every remaining link —
    /// overshooting key-side table entries (nearest first, with their
    /// recorded children), the away-side child/adjacent links and the
    /// away-side table — so that when failures block every greedy candidate
    /// the walk can still detour through any live neighbour rather than
    /// give up.
    ///
    /// Computed lazily, only when the greedy candidates of
    /// [`walk_candidates`](Self::walk_candidates) are exhausted (i.e. a
    /// failure was actually hit); `existing` is the greedy list, used to
    /// drop duplicates.
    fn walk_fallback_candidates(
        &self,
        peer: PeerId,
        key: Key,
        existing: &[PeerId],
    ) -> Result<Vec<PeerId>> {
        let node = self.node_ref(peer)?;
        let towards_right = key >= node.range.high();
        let mut seen: std::collections::HashSet<PeerId> = existing.iter().copied().collect();
        seen.insert(peer);
        let mut candidates: Vec<PeerId> = Vec::new();
        let mut push = |candidates: &mut Vec<PeerId>, p: PeerId| {
            if seen.insert(p) {
                candidates.push(p);
            }
        };
        let push_entry = |candidates: &mut Vec<PeerId>,
                          push: &mut dyn FnMut(&mut Vec<PeerId>, PeerId),
                          entry: &crate::routing::RoutingEntry| {
            push(candidates, entry.link.peer);
            entry
                .left_child
                .into_iter()
                .chain(entry.right_child)
                .for_each(|p| push(candidates, p));
        };

        let (near_table, far_table) = if towards_right {
            (&node.right_table, &node.left_table)
        } else {
            (&node.left_table, &node.right_table)
        };

        // Overshooting key-side entries, nearest first — they land past the
        // key, from where the walk can come back.
        for (_, entry) in near_table.iter() {
            push_entry(&mut candidates, &mut push, entry);
        }

        // The away side of the node, nearest first.
        let (child, adjacent) = if towards_right {
            (node.left_child, node.left_adjacent)
        } else {
            (node.right_child, node.right_adjacent)
        };
        for link in [child, adjacent].into_iter().flatten() {
            push(&mut candidates, link.peer);
        }
        for (_, entry) in far_table.iter() {
            push_entry(&mut candidates, &mut push, entry);
        }
        Ok(candidates)
    }

    /// Routes from `issuer` towards the node owning `key`, following the
    /// `search_exact` algorithm of §IV-A.  Keys outside the current domain
    /// terminate at the leftmost / rightmost node (the node that would
    /// expand its range to cover them, §IV-C).
    ///
    /// The walk is fault tolerant (§III-D) and implemented as a depth-first
    /// exploration over [`walk_candidates`](Self::walk_candidates), extended
    /// lazily with
    /// [`walk_fallback_candidates`](Self::walk_fallback_candidates) when the
    /// greedy options run out: each node tries its candidates from most to
    /// least useful, paying one
    /// (counted, failed) message per dead candidate it bounces off; the
    /// request carries the set of nodes already visited so the walk never
    /// ping-pongs, and a node whose every candidate is dead or visited sends
    /// the request *back* to the node it came from (one more counted
    /// message), which resumes with its own next candidate.  On a healthy
    /// network the first candidate is always alive and unvisited, so the
    /// walk — and its message count — is exactly the greedy §IV-A descent.
    pub(crate) fn locate_owner(
        &mut self,
        op: OpScope,
        issuer: PeerId,
        key: Key,
        operation: &'static str,
    ) -> Result<OwnerWalk> {
        // A DFS visits every live node at most once and every link at most
        // twice (forward try + backtrack), so this budget is a safety net
        // against bookkeeping bugs, not a tuning knob.
        let message_budget = (self.walk_limit() as u64) * 4 + 4 * self.node_count() as u64;
        if self.walk_terminates_at(issuer, key)? {
            return Ok(OwnerWalk {
                owner: issuer,
                messages: 0,
                hops: 0,
            });
        }
        struct Frame {
            peer: PeerId,
            candidates: Vec<PeerId>,
            next: usize,
            fallback_added: bool,
        }
        let new_frame = |peer: PeerId, candidates: Vec<PeerId>| Frame {
            peer,
            candidates,
            next: 0,
            fallback_added: false,
        };
        let mut visited = std::collections::HashSet::from([issuer]);
        let mut stack = vec![new_frame(issuer, self.walk_candidates(issuer, key)?)];
        let mut messages = 0u64;
        let mut hops = 0u32;
        loop {
            let top = stack.last_mut().expect("stack never drains in the loop");
            let current = top.peer;
            let Some(&candidate) = top.candidates.get(top.next) else {
                if !top.fallback_added {
                    // The greedy candidates are exhausted (a failure was
                    // actually hit): extend with the full §III-D fallback
                    // link set, computed lazily so healthy hops never pay
                    // for it.
                    top.fallback_added = true;
                    let greedy = std::mem::take(&mut top.candidates);
                    let mut all = greedy;
                    let fallback = self.walk_fallback_candidates(current, key, &all)?;
                    all.extend(fallback);
                    let top = stack.last_mut().expect("unchanged");
                    top.candidates = all;
                    continue;
                }
                // Every candidate of `current` is dead or already explored:
                // hand the request back to the node it came from.
                let exhausted = stack.pop().expect("just peeked");
                let Some(previous) = stack.last() else {
                    // The issuer itself is out of options: the key is
                    // unreachable until the failures are repaired.
                    return Err(BatonError::PeerNotAlive(exhausted.peer));
                };
                hops += 1;
                self.hop(
                    op,
                    exhausted.peer,
                    previous.peer,
                    hops,
                    BatonMessage::SearchExact { key, issuer },
                )?;
                messages += 1;
                if messages > message_budget {
                    return Err(BatonError::RoutingLoop { operation, hops });
                }
                continue;
            };
            top.next += 1;
            if visited.contains(&candidate) {
                continue;
            }
            let delivered = self.hop(
                op,
                current,
                candidate,
                hops + 1,
                BatonMessage::SearchExact { key, issuer },
            )?;
            messages += 1;
            if messages > message_budget {
                return Err(BatonError::RoutingLoop { operation, hops });
            }
            if !delivered {
                continue;
            }
            visited.insert(candidate);
            hops += 1;
            if self.walk_terminates_at(candidate, key)? {
                return Ok(OwnerWalk {
                    owner: candidate,
                    messages,
                    hops,
                });
            }
            let candidates = self.walk_candidates(candidate, key)?;
            stack.push(new_frame(candidate, candidates));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;
    use crate::validate::validate;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn search_on_empty_network_fails() {
        let mut system = BatonSystem::with_seed(1);
        assert_eq!(
            system.search_exact(5).unwrap_err(),
            BatonError::EmptyNetwork
        );
    }

    #[test]
    fn search_out_of_domain_key_is_rejected() {
        let mut system = build(4, 2);
        let err = system.search_exact(0).unwrap_err();
        assert_eq!(err, BatonError::KeyOutOfDomain(0));
    }

    #[test]
    fn single_node_owns_every_key() {
        let mut system = BatonSystem::with_seed(3);
        let root = system.bootstrap().unwrap();
        let report = system.search_exact_from(root, 123_456).unwrap();
        assert_eq!(report.owner, root);
        assert_eq!(report.messages, 0);
        assert_eq!(report.hops, 0);
        assert!(report.matches.is_empty());
    }

    #[test]
    fn exact_search_finds_owner_from_every_node() {
        let mut system = build(60, 5);
        validate(&system).unwrap();
        // Pick a handful of keys; from every issuer the walk must terminate
        // at the node whose range contains the key.
        let keys = [1u64, 999_999_999 - 1, 500_000_000, 123_456_789, 42];
        for key in keys {
            for issuer in system.peers() {
                let report = system.search_exact_from(issuer, key).unwrap();
                let owner_node = system.node(report.owner).unwrap();
                assert!(
                    owner_node.range.contains(key),
                    "owner {:?} does not contain {key}",
                    owner_node.range
                );
            }
        }
    }

    #[test]
    fn exact_search_is_logarithmic() {
        let mut system = build(500, 7);
        let log_n = (system.node_count() as f64).log2();
        let mut total = 0u64;
        let queries = 200;
        for i in 0..queries {
            let key = 1 + (i as u64 * 4_999_999) % 999_999_998;
            let report = system.search_exact(key).unwrap();
            total += report.messages;
            assert!(
                (report.messages as f64) <= 2.0 * log_n + 6.0,
                "a single search took {} messages (log N = {log_n:.1})",
                report.messages
            );
        }
        let avg = total as f64 / queries as f64;
        assert!(avg <= 1.6 * log_n + 2.0, "average {avg} too high");
    }

    #[test]
    fn exact_search_finds_inserted_values() {
        let mut system = build(30, 9);
        system.insert(777_777, 42).unwrap();
        system.insert(777_777, 43).unwrap();
        let report = system.search_exact(777_777).unwrap();
        assert_eq!(report.matches.len(), 2);
        assert!(report.matches.contains(&42));
        assert!(report.matches.contains(&43));
        let miss = system.search_exact(777_778).unwrap();
        assert!(miss.matches.is_empty());
    }

    #[test]
    fn range_search_returns_all_matches_in_order() {
        let mut system = build(40, 11);
        let keys: Vec<u64> = (1..=200u64).map(|i| i * 4_000_000).collect();
        for (i, k) in keys.iter().enumerate() {
            system.insert(*k, i as u64).unwrap();
        }
        let range = KeyRange::new(100_000_000, 500_000_001);
        let report = system.search_range(range).unwrap();
        let expected: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| range.contains(*k))
            .collect();
        let found_keys: Vec<u64> = report.matches.iter().map(|(k, _)| *k).collect();
        assert_eq!(found_keys, expected);
        assert!(report.nodes_visited >= 1);
        assert!(report.messages >= report.nodes_visited as u64 - 1);
    }

    #[test]
    fn range_search_cost_is_log_n_plus_nodes_covered() {
        let mut system = build(300, 13);
        let log_n = (system.node_count() as f64).log2();
        let report = system
            .search_range(KeyRange::new(200_000_000, 400_000_000))
            .unwrap();
        let bound = 2.0 * log_n + 6.0 + report.nodes_visited as f64;
        assert!(
            (report.messages as f64) <= bound,
            "range search took {} messages, visited {} nodes (bound {bound})",
            report.messages,
            report.nodes_visited
        );
    }

    #[test]
    fn empty_or_out_of_domain_range_returns_nothing() {
        let mut system = build(10, 15);
        let empty = system.search_range(KeyRange::new(5, 5)).unwrap();
        assert!(empty.matches.is_empty());
        assert_eq!(empty.messages, 0);
        assert_eq!(empty.nodes_visited, 0);
    }

    #[test]
    fn whole_domain_range_visits_every_node() {
        let mut system = build(25, 17);
        let report = system.search_range(KeyRange::paper_domain()).unwrap();
        assert_eq!(report.nodes_visited, system.node_count());
    }

    #[test]
    fn search_from_dead_issuer_is_rejected() {
        let mut system = build(10, 19);
        let victim = system.peers()[0];
        system.net.fail_peer(victim);
        assert_eq!(
            system.search_exact_from(victim, 5).unwrap_err(),
            BatonError::PeerNotAlive(victim)
        );
    }
}
