//! Exact-match and range queries (paper §IV-A and §IV-B).
//!
//! Both query kinds route the same way: a node that does not own the
//! searched value jumps as far as possible towards it using its sideways
//! routing tables, falling back to a child link and then to an adjacent
//! link.  Exact queries stop at the owner; range queries find the first
//! intersecting node the same way and then sweep along adjacent links until
//! the range is covered — `O(log N + X)` messages for a range spanning `X`
//! nodes.

use baton_net::{OpScope, PeerId};

use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::range::{Key, KeyRange};
use crate::reports::{RangeSearchReport, SearchReport};
use crate::system::BatonSystem;

/// Outcome of routing a query to the node owning a key.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OwnerWalk {
    /// The node whose range contains the key (or the boundary node when the
    /// key lies outside the current domain).
    pub owner: PeerId,
    /// Messages used by the walk.
    pub messages: u64,
    /// Overlay hops taken.
    pub hops: u32,
}

impl BatonSystem {
    /// Exact-match query issued at a uniformly random node.
    pub fn search_exact(&mut self, key: Key) -> Result<SearchReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.search_exact_from(issuer, key)
    }

    /// Exact-match query issued at `issuer` (paper §IV-A).
    pub fn search_exact_from(&mut self, issuer: PeerId, key: Key) -> Result<SearchReport> {
        self.check_alive(issuer)?;
        self.check_key(key)?;
        let op = self.net.begin_op("search.exact");
        let walk = self.locate_owner(op, issuer, key, "search_exact")?;
        let matches = self.node_ref(walk.owner)?.store.get(key).to_vec();
        self.net.finish_op(op);
        Ok(SearchReport {
            key,
            owner: walk.owner,
            matches,
            messages: walk.messages,
            hops: walk.hops,
        })
    }

    /// Range query issued at a uniformly random node.
    pub fn search_range(&mut self, range: KeyRange) -> Result<RangeSearchReport> {
        let issuer = self.random_peer().ok_or(BatonError::EmptyNetwork)?;
        self.search_range_from(issuer, range)
    }

    /// Range query issued at `issuer` (paper §IV-B).
    ///
    /// The query is clamped to the overlay's current domain; an empty
    /// intersection returns an empty result without any messages.
    pub fn search_range_from(
        &mut self,
        issuer: PeerId,
        range: KeyRange,
    ) -> Result<RangeSearchReport> {
        self.check_alive(issuer)?;
        let clamped = range.intersection(self.domain);
        if clamped.is_empty() {
            return Ok(RangeSearchReport {
                range,
                matches: Vec::new(),
                messages: 0,
                nodes_visited: 0,
            });
        }
        let op = self.net.begin_op("search.range");
        // Find the first intersecting node: route to the owner of the range's
        // lower bound, exactly like a point query.
        let walk = self.locate_owner(op, issuer, clamped.low(), "search_range")?;
        let mut messages = walk.messages;
        let mut matches = Vec::new();
        let mut nodes_visited = 0usize;
        let mut current = walk.owner;
        let limit = self.walk_limit() as usize + self.node_count();
        loop {
            let (node_range, found, next) = {
                let node = self.node_ref(current)?;
                (
                    node.range,
                    node.store.scan(clamped),
                    node.right_adjacent.map(|l| l.peer),
                )
            };
            nodes_visited += 1;
            matches.extend(found);
            if node_range.high() >= clamped.high() {
                break;
            }
            let Some(next) = next else { break };
            let delivered = self.hop(
                op,
                current,
                next,
                walk.hops + nodes_visited as u32,
                BatonMessage::SearchRange {
                    range: clamped,
                    issuer,
                },
            )?;
            messages += 1;
            if !delivered {
                // The adjacent node is unreachable (an unrecovered failure):
                // return the partial answer gathered so far.
                break;
            }
            current = next;
            if nodes_visited > limit {
                return Err(BatonError::RoutingLoop {
                    operation: "search_range",
                    hops: nodes_visited as u32,
                });
            }
        }
        self.net.finish_op(op);
        Ok(RangeSearchReport {
            range,
            matches,
            messages,
            nodes_visited,
        })
    }

    /// Routes from `issuer` towards the node owning `key`, following the
    /// `search_exact` algorithm of §IV-A.  Keys outside the current domain
    /// terminate at the leftmost / rightmost node (the node that would
    /// expand its range to cover them, §IV-C).
    ///
    /// The walk is fault tolerant (§III-D): at every step the forwarding
    /// node considers its candidate links from the most to the least useful
    /// — the sideways routing-table entries (farthest matching first), then
    /// the relevant child, adjacent and parent links — and skips candidates
    /// whose peer turns out to be unreachable, paying one (counted, failed)
    /// message per dead candidate it bounces off.
    pub(crate) fn locate_owner(
        &mut self,
        op: OpScope,
        issuer: PeerId,
        key: Key,
        operation: &'static str,
    ) -> Result<OwnerWalk> {
        let limit = self.walk_limit();
        let domain = self.domain;
        let mut current = issuer;
        let mut messages = 0u64;
        let mut hops = 0u32;
        loop {
            let candidates: Vec<PeerId> = {
                let node = self.node_ref(current)?;
                if node.range.contains(key) {
                    return Ok(OwnerWalk {
                        owner: current,
                        messages,
                        hops,
                    });
                }
                if key >= node.range.high() {
                    // The key lies to the right of this node's range.
                    if node.range.high() >= domain.high() {
                        // Rightmost node: the key is beyond the domain and
                        // this node would expand to cover it.
                        return Ok(OwnerWalk {
                            owner: current,
                            messages,
                            hops,
                        });
                    }
                    let mut matching: Vec<&crate::routing::RoutingEntry> = node
                        .right_table
                        .iter()
                        .filter(|(_, e)| e.link.range.low() <= key)
                        .map(|(_, e)| e)
                        .collect();
                    matching.reverse(); // farthest matching entry first
                    let mut candidates = Vec::new();
                    for entry in matching {
                        candidates.push(entry.link.peer);
                        // §III-D detour: if the neighbour is unreachable,
                        // its children (recorded in the entry) still lead
                        // towards the key.
                        candidates.extend(entry.right_child);
                        candidates.extend(entry.left_child);
                    }
                    candidates.extend(node.right_child.iter().map(|l| l.peer));
                    candidates.extend(node.right_adjacent.iter().map(|l| l.peer));
                    candidates.extend(node.parent.iter().map(|l| l.peer));
                    candidates
                } else {
                    // The key lies to the left of this node's range.
                    if node.range.low() <= domain.low() {
                        // Leftmost node: the key is below the domain.
                        return Ok(OwnerWalk {
                            owner: current,
                            messages,
                            hops,
                        });
                    }
                    let mut matching: Vec<&crate::routing::RoutingEntry> = node
                        .left_table
                        .iter()
                        .filter(|(_, e)| e.link.range.high() > key)
                        .map(|(_, e)| e)
                        .collect();
                    matching.reverse(); // farthest matching entry first
                    let mut candidates = Vec::new();
                    for entry in matching {
                        candidates.push(entry.link.peer);
                        // §III-D detour through the unreachable neighbour's
                        // children.
                        candidates.extend(entry.left_child);
                        candidates.extend(entry.right_child);
                    }
                    candidates.extend(node.left_child.iter().map(|l| l.peer));
                    candidates.extend(node.left_adjacent.iter().map(|l| l.peer));
                    candidates.extend(node.parent.iter().map(|l| l.peer));
                    candidates
                }
            };
            if candidates.is_empty() {
                return Err(BatonError::InvariantViolation(format!(
                    "no route from {current} towards key {key}"
                )));
            }
            // Try the candidates from most to least useful, routing around
            // unreachable peers (§III-D).  Each bounced attempt costs one
            // message but does not count as forward progress against the
            // routing-loop bound.
            let mut chosen: Option<PeerId> = None;
            for candidate in candidates {
                let delivered = self.hop(
                    op,
                    current,
                    candidate,
                    hops + 1,
                    BatonMessage::SearchExact { key, issuer },
                )?;
                messages += 1;
                if delivered {
                    chosen = Some(candidate);
                    break;
                }
                if messages > (limit as u64) * 4 {
                    return Err(BatonError::RoutingLoop { operation, hops });
                }
            }
            hops += 1;
            if hops > limit {
                return Err(BatonError::RoutingLoop { operation, hops });
            }
            match chosen {
                Some(next) => current = next,
                None => {
                    return Err(BatonError::PeerNotAlive(current));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;
    use crate::validate::validate;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn search_on_empty_network_fails() {
        let mut system = BatonSystem::with_seed(1);
        assert_eq!(
            system.search_exact(5).unwrap_err(),
            BatonError::EmptyNetwork
        );
    }

    #[test]
    fn search_out_of_domain_key_is_rejected() {
        let mut system = build(4, 2);
        let err = system.search_exact(0).unwrap_err();
        assert_eq!(err, BatonError::KeyOutOfDomain(0));
    }

    #[test]
    fn single_node_owns_every_key() {
        let mut system = BatonSystem::with_seed(3);
        let root = system.bootstrap().unwrap();
        let report = system.search_exact_from(root, 123_456).unwrap();
        assert_eq!(report.owner, root);
        assert_eq!(report.messages, 0);
        assert_eq!(report.hops, 0);
        assert!(report.matches.is_empty());
    }

    #[test]
    fn exact_search_finds_owner_from_every_node() {
        let mut system = build(60, 5);
        validate(&system).unwrap();
        // Pick a handful of keys; from every issuer the walk must terminate
        // at the node whose range contains the key.
        let keys = [1u64, 999_999_999 - 1, 500_000_000, 123_456_789, 42];
        for key in keys {
            for issuer in system.peers() {
                let report = system.search_exact_from(issuer, key).unwrap();
                let owner_node = system.node(report.owner).unwrap();
                assert!(
                    owner_node.range.contains(key),
                    "owner {:?} does not contain {key}",
                    owner_node.range
                );
            }
        }
    }

    #[test]
    fn exact_search_is_logarithmic() {
        let mut system = build(500, 7);
        let log_n = (system.node_count() as f64).log2();
        let mut total = 0u64;
        let queries = 200;
        for i in 0..queries {
            let key = 1 + (i as u64 * 4_999_999) % 999_999_998;
            let report = system.search_exact(key).unwrap();
            total += report.messages;
            assert!(
                (report.messages as f64) <= 2.0 * log_n + 6.0,
                "a single search took {} messages (log N = {log_n:.1})",
                report.messages
            );
        }
        let avg = total as f64 / queries as f64;
        assert!(avg <= 1.6 * log_n + 2.0, "average {avg} too high");
    }

    #[test]
    fn exact_search_finds_inserted_values() {
        let mut system = build(30, 9);
        system.insert(777_777, 42).unwrap();
        system.insert(777_777, 43).unwrap();
        let report = system.search_exact(777_777).unwrap();
        assert_eq!(report.matches.len(), 2);
        assert!(report.matches.contains(&42));
        assert!(report.matches.contains(&43));
        let miss = system.search_exact(777_778).unwrap();
        assert!(miss.matches.is_empty());
    }

    #[test]
    fn range_search_returns_all_matches_in_order() {
        let mut system = build(40, 11);
        let keys: Vec<u64> = (1..=200u64).map(|i| i * 4_000_000).collect();
        for (i, k) in keys.iter().enumerate() {
            system.insert(*k, i as u64).unwrap();
        }
        let range = KeyRange::new(100_000_000, 500_000_001);
        let report = system.search_range(range).unwrap();
        let expected: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| range.contains(*k))
            .collect();
        let found_keys: Vec<u64> = report.matches.iter().map(|(k, _)| *k).collect();
        assert_eq!(found_keys, expected);
        assert!(report.nodes_visited >= 1);
        assert!(report.messages >= report.nodes_visited as u64 - 1);
    }

    #[test]
    fn range_search_cost_is_log_n_plus_nodes_covered() {
        let mut system = build(300, 13);
        let log_n = (system.node_count() as f64).log2();
        let report = system
            .search_range(KeyRange::new(200_000_000, 400_000_000))
            .unwrap();
        let bound = 2.0 * log_n + 6.0 + report.nodes_visited as f64;
        assert!(
            (report.messages as f64) <= bound,
            "range search took {} messages, visited {} nodes (bound {bound})",
            report.messages,
            report.nodes_visited
        );
    }

    #[test]
    fn empty_or_out_of_domain_range_returns_nothing() {
        let mut system = build(10, 15);
        let empty = system.search_range(KeyRange::new(5, 5)).unwrap();
        assert!(empty.matches.is_empty());
        assert_eq!(empty.messages, 0);
        assert_eq!(empty.nodes_visited, 0);
    }

    #[test]
    fn whole_domain_range_visits_every_node() {
        let mut system = build(25, 17);
        let report = system.search_range(KeyRange::paper_domain()).unwrap();
        assert_eq!(report.nodes_visited, system.node_count());
    }

    #[test]
    fn search_from_dead_issuer_is_rejected() {
        let mut system = build(10, 19);
        let victim = system.peers()[0];
        system.net.fail_peer(victim);
        assert_eq!(
            system.search_exact_from(victim, 5).unwrap_err(),
            BatonError::PeerNotAlive(victim)
        );
    }
}
