//! Node failure and recovery (paper §III-C).
//!
//! When a node fails (or departs abruptly), the peers that discover the
//! unreachable address report it to the failed node's parent.  The parent
//! regenerates the failed node's routing knowledge from its own tables
//! (Theorem 2 makes the failed node's neighbours reachable as children of
//! the parent's neighbours) and then runs a *graceful departure* on the
//! failed node's behalf: either the direct leaf removal or the
//! FINDREPLACEMENT protocol, exactly as in §III-B.
//!
//! BATON does not replicate data, so the items stored at the failed node are
//! lost; its key range, however, is preserved — it is taken over by the
//! parent or by the replacement node so that the overlay keeps covering the
//! whole domain.

use baton_net::{PeerId, RepairPolicy, SimTime};

use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::position::Side;
use crate::reports::FailureReport;
use crate::system::BatonSystem;

impl BatonSystem {
    /// Marks `peer` as failed **without** running the recovery protocol.
    ///
    /// Until [`BatonSystem::recover_failed`] (or another operation's repair
    /// path) runs, the overlay must route *around* the dead node using the
    /// redundancy of its sideways routing tables and parent–neighbour–child
    /// detours — the fault-tolerance property of paper §III-D, exercised by
    /// the resilient-search tests.
    pub fn fail_silently(&mut self, peer: PeerId) -> Result<()> {
        self.check_alive(peer)?;
        self.net.fail_peer(peer);
        self.mark_dead(peer);
        Ok(())
    }

    /// Fails `peer` abruptly and returns the virtual delay after which its
    /// repair ([`BatonSystem::recover_failed`]) should run: the policy's
    /// fast path when a replica of the slice survives, the slow
    /// detect-and-rebuild path otherwise, plus a detection round-trip drawn
    /// from the network's latency model.  Until the repair runs, queries
    /// route around the dead node (§III-D) and, at k > 1, fail over to its
    /// replica holders.
    pub fn fail_deferred(&mut self, peer: PeerId, policy: &RepairPolicy) -> Result<SimTime> {
        self.check_alive(peer)?;
        let survives = self.replication > 1 && self.replica_survives(peer);
        // The failure is *detected* by a linked neighbour timing out, so the
        // repair start jitters by one round-trip on that link.
        let detector = self
            .node_ref(peer)?
            .linked_peers()
            .into_iter()
            .next()
            .unwrap_or(peer);
        let round_trip =
            self.net.sample_latency(detector, peer) + self.net.sample_latency(peer, detector);
        self.net.fail_peer(peer);
        self.mark_dead(peer);
        Ok(policy.delay(survives) + round_trip)
    }

    /// Runs the §III-C recovery protocol for a peer previously failed with
    /// [`BatonSystem::fail_silently`].
    pub fn recover_failed(&mut self, peer: PeerId) -> Result<FailureReport> {
        if self.node(peer).is_none() {
            return Err(BatonError::UnknownPeer(peer));
        }
        if self.net.is_alive(peer) {
            return Err(BatonError::InvariantViolation(format!(
                "recover_failed called for {peer}, which is still alive"
            )));
        }
        self.recover_inner(peer)
    }

    /// Simulates the abrupt failure of `peer` and runs the recovery
    /// protocol.
    pub fn fail(&mut self, peer: PeerId) -> Result<FailureReport> {
        self.check_alive(peer)?;
        self.net.fail_peer(peer);
        self.recover_inner(peer)
    }

    fn recover_inner(&mut self, peer: PeerId) -> Result<FailureReport> {
        let _t = baton_net::profiler::scope("baton.fail.recover");
        let op = self.net.begin_op("failure");

        // Special case: the overlay's only node fails — nothing to recover.
        if self.node_count() == 1 {
            let lost_items = self.node_ref(peer)?.store.len();
            self.net.fail_peer(peer);
            let node = self.unregister_node(peer).expect("checked above");
            self.vacate(node.position, peer);
            self.mark_repaired(peer);
            self.net.finish_op(op);
            return Ok(FailureReport {
                failed: peer,
                coordinator: None,
                replacement: None,
                regeneration_messages: 0,
                departure_messages: 0,
                lost_items,
            });
        }

        self.net.fail_peer(peer);

        // The coordinator is the failed node's parent; if the root failed,
        // one of its children (or, degenerately, an adjacent node) takes
        // over the recovery.
        let (coordinator, reporter, lost_items, is_removable_leaf) = {
            let node = self.node_ref(peer)?;
            // Prefer the first *alive* linked candidate: under deferred
            // repair a neighbour may itself be dead and cannot coordinate.
            // With no dead peers (every legacy run) the first candidate —
            // the parent — is alive, so the order is unchanged.
            let candidates = [
                node.parent.map(|l| l.peer),
                node.left_child.map(|l| l.peer),
                node.right_child.map(|l| l.peer),
                node.left_adjacent.map(|l| l.peer),
                node.right_adjacent.map(|l| l.peer),
            ];
            let coordinator = candidates
                .iter()
                .flatten()
                .copied()
                .find(|p| self.net.is_alive(*p))
                .or_else(|| candidates.iter().flatten().copied().next())
                .ok_or_else(|| {
                    BatonError::InvariantViolation(
                        "failed node has no links but the overlay has other nodes".into(),
                    )
                })?;
            // Any peer that held a link to the failed node may be the one
            // that noticed; pick one different from the coordinator when
            // possible.
            let reporter = node
                .linked_peers()
                .into_iter()
                .find(|p| *p != coordinator)
                .unwrap_or(coordinator);
            (
                coordinator,
                reporter,
                node.store.len(),
                node.can_leave_without_replacement(),
            )
        };

        // Failure report: one message from the discovering peer to the
        // coordinator.
        let mut regeneration_messages = 0u64;
        self.notify(op, "failure.report", reporter, coordinator);
        regeneration_messages += 1;

        // The coordinator regenerates the failed node's routing tables by
        // querying the children of the nodes in its own routing tables: one
        // query and one response per regenerated neighbour entry.
        let neighbors: Vec<PeerId> = {
            let node = self.node_ref(peer)?;
            Side::BOTH
                .iter()
                .flat_map(|s| node.table(*s).iter().map(|(_, e)| e.link.peer))
                .collect()
        };
        for neighbor in neighbors {
            self.notify(op, "failure.table_regen", coordinator, neighbor);
            self.notify(op, "failure.table_regen", neighbor, coordinator);
            regeneration_messages += 2;
        }

        // At k = 1 the failed node's data is lost (no replication); clear it
        // before the departure protocol merges the (now empty) content away.
        // At k > 1 with a surviving replica holder, the slice is streamed
        // back from the replica (one fetch + one copy message) and the
        // departure protocol hands the restored content over instead.
        let replica_source = self
            .replica_targets(peer)
            .into_iter()
            .find(|t| self.net.is_alive(*t))
            .filter(|_| self.replication > 1);
        let lost_items = match replica_source {
            Some(source) => {
                self.notify(op, "failure.replica_fetch", coordinator, source);
                self.notify(op, "failure.replica_copy", source, coordinator);
                regeneration_messages += 2;
                0
            }
            None => {
                self.node_mut(peer)?.store = Default::default();
                lost_items
            }
        };

        // Graceful departure on the failed node's behalf, driven by the
        // coordinator.
        let mut departure_messages = 0u64;
        let replacement = if is_removable_leaf {
            departure_messages += self.detach_leaf(op, peer, coordinator)?;
            None
        } else {
            let (replacement, locate) = self.find_replacement_via(op, peer, coordinator)?;
            if !self.net.is_alive(replacement) {
                // The walk landed on a leaf that is itself dead (possible
                // only while several failures overlap).  Nothing has been
                // mutated yet: report the collision so the caller can retry
                // the repair after the replacement's own repair has run.
                self.net.finish_op(op);
                return Err(BatonError::PeerNotAlive(replacement));
            }
            departure_messages += locate;
            departure_messages += self.detach_leaf(op, replacement, replacement)?;
            departure_messages += self.take_over_position(op, peer, replacement, coordinator)?;
            Some(replacement)
        };

        self.mark_repaired(peer);
        self.net.finish_op(op);
        Ok(FailureReport {
            failed: peer,
            coordinator: Some(coordinator),
            replacement,
            regeneration_messages,
            departure_messages,
            lost_items,
        })
    }

    /// [`BatonSystem::find_replacement`] driven by a coordinator instead of
    /// the (dead) departing node: the initial FINDREPLACEMENT request is
    /// sent by `coordinator`.
    pub(crate) fn find_replacement_via(
        &mut self,
        op: baton_net::OpScope,
        departing: PeerId,
        coordinator: PeerId,
    ) -> Result<(PeerId, u64)> {
        // The walk logic is identical; only the sender of the first message
        // differs.  Reuse the existing walk by temporarily charging the
        // initial hop to the coordinator.
        let departing_pos = self.node_ref(departing)?.position;
        // Every hop below prefers an *alive* candidate over the first one:
        // a dead node cannot forward the FINDREPLACEMENT request, and
        // descending into a dead subtree can only land on a dead
        // replacement — the §III-D detour rule, applied to the departure
        // walk.  Overlapping failures are the only runs with dead peers in
        // reach, so with every peer alive the first candidate wins and the
        // walk is exactly the legacy one.
        let prefer_alive = |system: &Self, candidates: &[PeerId]| -> Option<PeerId> {
            candidates
                .iter()
                .copied()
                .find(|p| system.net.is_alive(*p))
                .or_else(|| candidates.first().copied())
        };
        let start = {
            let node = self.node_ref(departing)?;
            if node.is_leaf() {
                let children: Vec<PeerId> = Side::BOTH
                    .iter()
                    .flat_map(|s| node.table(*s).iter())
                    .flat_map(|(_, e)| [e.left_child, e.right_child])
                    .flatten()
                    .collect();
                match prefer_alive(self, &children) {
                    Some(peer) => peer,
                    None => {
                        return Err(BatonError::InvariantViolation(
                            "find_replacement_via called on a directly removable leaf".into(),
                        ))
                    }
                }
            } else {
                let legacy = match (&node.left_adjacent, &node.right_adjacent) {
                    (Some(l), Some(r)) => {
                        if r.position.level() >= l.position.level() {
                            [Some(r.peer), Some(l.peer)]
                        } else {
                            [Some(l.peer), Some(r.peer)]
                        }
                    }
                    (Some(l), None) => [Some(l.peer), None],
                    (None, Some(r)) => [Some(r.peer), None],
                    (None, None) => {
                        return Err(BatonError::InvariantViolation(
                            "non-leaf node without adjacent links".into(),
                        ))
                    }
                };
                let candidates: Vec<PeerId> = legacy.into_iter().flatten().collect();
                prefer_alive(self, &candidates).expect("at least one adjacent link")
            }
        };
        let mut messages = 1u64;
        let mut hops = 1u32;
        self.hop(
            op,
            coordinator,
            start,
            hops,
            BatonMessage::FindReplacement {
                departing,
                position: departing_pos,
            },
        )?;
        let limit = self.walk_limit();
        let mut current = start;
        loop {
            let next = {
                let node = self.node_ref(current)?;
                let mut candidates: Vec<PeerId> = Vec::new();
                if let Some(lc) = &node.left_child {
                    candidates.push(lc.peer);
                }
                if let Some(rc) = &node.right_child {
                    candidates.push(rc.peer);
                }
                if candidates.is_empty() {
                    candidates.extend(
                        Side::BOTH
                            .iter()
                            .flat_map(|s| node.table(*s).iter())
                            .flat_map(|(_, e)| [e.left_child, e.right_child])
                            .flatten(),
                    );
                }
                prefer_alive(self, &candidates)
            };
            let Some(next) = next else {
                return Ok((current, messages));
            };
            hops += 1;
            if hops > limit {
                return Err(BatonError::RoutingLoop {
                    operation: "find_replacement",
                    hops,
                });
            }
            self.hop(
                op,
                current,
                next,
                hops,
                BatonMessage::FindReplacement {
                    departing,
                    position: departing_pos,
                },
            )?;
            messages += 1;
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;
    use crate::validate::validate;

    fn build(n: usize, seed: u64) -> BatonSystem {
        BatonSystem::build(BatonConfig::default(), seed, n).expect("build network")
    }

    #[test]
    fn failed_leaf_is_cleaned_up() {
        let mut system = build(30, 1);
        // Find a leaf.
        let leaf = system
            .peers()
            .iter()
            .copied()
            .find(|p| system.node(*p).unwrap().is_leaf())
            .unwrap();
        let report = system.fail(leaf).unwrap();
        assert_eq!(report.failed, leaf);
        assert!(report.coordinator.is_some());
        assert_eq!(system.node_count(), 29);
        assert!(system.node(leaf).is_none());
        validate(&system).unwrap();
    }

    #[test]
    fn failed_internal_node_gets_replacement() {
        let mut system = build(40, 2);
        let internal = system
            .peers()
            .iter()
            .copied()
            .find(|p| !system.node(*p).unwrap().is_leaf())
            .unwrap();
        let report = system.fail(internal).unwrap();
        assert!(report.replacement.is_some());
        assert_eq!(system.node_count(), 39);
        validate(&system).unwrap();
    }

    #[test]
    fn root_failure_is_recovered() {
        let mut system = build(25, 3);
        let root = system.root().unwrap();
        let report = system.fail(root).unwrap();
        assert!(report.replacement.is_some());
        assert_ne!(system.root(), Some(root));
        assert!(system.root().is_some());
        validate(&system).unwrap();
    }

    #[test]
    fn failed_node_data_is_lost_but_range_preserved() {
        let mut system = build(20, 4);
        // Insert data and find a node that stores some of it.
        for i in 0..200u64 {
            system.insert(1 + i * 4_999_999, i).unwrap();
        }
        let victim = system
            .peers()
            .iter()
            .copied()
            .find(|p| !system.node(*p).unwrap().store.is_empty())
            .unwrap();
        let victim_items = system.node(victim).unwrap().store.len();
        let before_total = system.total_items();
        let report = system.fail(victim).unwrap();
        assert_eq!(report.lost_items, victim_items);
        assert_eq!(system.total_items(), before_total - victim_items);
        // The domain is still fully covered.
        validate(&system).unwrap();
    }

    #[test]
    fn repeated_failures_keep_the_overlay_consistent() {
        let mut system = build(50, 5);
        for round in 0..30 {
            let peer = system.random_peer().unwrap();
            if system.node_count() == 1 {
                break;
            }
            system.fail(peer).unwrap();
            validate(&system)
                .unwrap_or_else(|e| panic!("invariant broken after failure {round}: {e}"));
        }
        assert_eq!(system.node_count(), 20);
    }

    #[test]
    fn failing_the_last_node_empties_the_overlay() {
        let mut system = BatonSystem::with_seed(6);
        let root = system.bootstrap().unwrap();
        system.insert(100, 1).unwrap();
        let report = system.fail(root).unwrap();
        assert_eq!(report.lost_items, 1);
        assert!(system.is_empty());
        assert_eq!(system.root(), None);
    }

    #[test]
    fn failing_an_unknown_or_dead_peer_is_rejected() {
        let mut system = build(5, 7);
        assert!(matches!(
            system.fail(PeerId(12345)),
            Err(BatonError::UnknownPeer(_))
        ));
        let victim = system.peers()[0];
        if system.node_count() > 1 {
            system.fail(victim).unwrap();
            assert!(matches!(
                system.fail(victim),
                Err(BatonError::UnknownPeer(_) | BatonError::PeerNotAlive(_))
            ));
        }
    }

    #[test]
    fn recovery_cost_is_logarithmic() {
        let mut system = build(200, 8);
        let log_n = (system.node_count() as f64).log2();
        for _ in 0..20 {
            let peer = system.random_peer().unwrap();
            let report = system.fail(peer).unwrap();
            assert!(
                (report.total_messages() as f64) <= 14.0 * log_n + 30.0,
                "recovery took {} messages",
                report.total_messages()
            );
        }
        validate(&system).unwrap();
    }

    #[test]
    fn searches_still_work_after_failures() {
        let mut system = build(60, 9);
        for i in 0..100u64 {
            system.insert(1 + i * 9_000_000, i).unwrap();
        }
        for _ in 0..15 {
            let peer = system.random_peer().unwrap();
            system.fail(peer).unwrap();
        }
        validate(&system).unwrap();
        // Every key still routes to a live owner (data at failed nodes is
        // lost, but routing must never break).
        for i in 0..100u64 {
            let report = system.search_exact(1 + i * 9_000_000).unwrap();
            assert!(system.node(report.owner).is_some());
        }
    }
}
