//! Protocol implementations, one module per mechanism of the paper.
//!
//! Each module extends [`crate::BatonSystem`] with an `impl` block:
//!
//! * [`join`] — node join, Algorithm 1 and the routing-table construction of
//!   §III-A.
//! * [`leave`] — node departure, Algorithm 2 (FINDREPLACEMENT) and the
//!   direct leaf departure of §III-B.
//! * [`failure`] — failure detection and recovery, §III-C.
//! * [`search`] — exact-match and range queries, §IV-A/B.
//! * [`data`] — insertion and deletion, including leftmost/rightmost range
//!   expansion, §IV-C.
//! * [`restructure`] — AVL-rotation-like position shifting, §III-E.
//! * [`balance`] — load balancing by adjacent migration and leaf re-join,
//!   §IV-D.
//!
//! All modules follow the same rules: the overlay is only navigated through
//! links a node actually holds, every hop and notification is charged to the
//! operation's accounting scope, and structural changes keep the invariants
//! checked by [`crate::validate`].

pub mod balance;
pub mod data;
pub mod failure;
pub mod join;
pub mod leave;
pub mod restructure;
pub mod search;
