//! Key ranges.
//!
//! Every BATON node — internal nodes included — directly manages a
//! contiguous range of index values (paper §IV).  Ranges are half-open
//! intervals `[low, high)` over `u64` keys; the union of all nodes' ranges
//! is always the full key domain and ranges never overlap.

use std::fmt;

/// An index key.  The paper's workload uses values in `[1, 10^9)`; the
/// library accepts the full `u64` domain.
pub type Key = u64;

/// A half-open interval of keys `[low, high)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyRange {
    low: Key,
    high: Key,
}

impl fmt::Debug for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.low, self.high)
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.low, self.high)
    }
}

impl KeyRange {
    /// Creates the range `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low > high` (an empty range `low == high` is allowed).
    pub fn new(low: Key, high: Key) -> Self {
        assert!(low <= high, "invalid range [{low}, {high})");
        Self { low, high }
    }

    /// The paper's evaluation domain: `[1, 10^9)`.
    pub fn paper_domain() -> Self {
        Self::new(1, 1_000_000_000)
    }

    /// The full `u64` domain `[0, u64::MAX)`.
    pub fn full_domain() -> Self {
        Self::new(0, Key::MAX)
    }

    /// Lower bound (inclusive).
    #[inline]
    pub fn low(self) -> Key {
        self.low
    }

    /// Upper bound (exclusive).
    #[inline]
    pub fn high(self) -> Key {
        self.high
    }

    /// Number of keys in the range.
    #[inline]
    pub fn width(self) -> u64 {
        self.high - self.low
    }

    /// `true` if the range contains no keys.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.low == self.high
    }

    /// `true` if `key` lies in `[low, high)`.
    #[inline]
    pub fn contains(self, key: Key) -> bool {
        key >= self.low && key < self.high
    }

    /// `true` if every key of `other` is contained in `self`.
    pub fn contains_range(self, other: KeyRange) -> bool {
        other.is_empty() || (other.low >= self.low && other.high <= self.high)
    }

    /// `true` if the two ranges share at least one key.
    pub fn intersects(self, other: KeyRange) -> bool {
        self.low < other.high && other.low < self.high
    }

    /// The intersection of the two ranges (possibly empty).
    pub fn intersection(self, other: KeyRange) -> KeyRange {
        let low = self.low.max(other.low);
        let high = self.high.min(other.high);
        if low >= high {
            KeyRange::new(low, low)
        } else {
            KeyRange::new(low, high)
        }
    }

    /// `true` if `other` starts exactly where `self` ends or vice versa.
    pub fn is_adjacent_to(self, other: KeyRange) -> bool {
        self.high == other.low || other.high == self.low
    }

    /// Merges two adjacent or overlapping ranges into one contiguous range.
    ///
    /// Returns `None` if the ranges are neither adjacent nor overlapping
    /// (merging them would create a gap).
    pub fn merge(self, other: KeyRange) -> Option<KeyRange> {
        if self.is_empty() {
            return Some(other);
        }
        if other.is_empty() {
            return Some(self);
        }
        if self.intersects(other) || self.is_adjacent_to(other) {
            Some(KeyRange::new(
                self.low.min(other.low),
                self.high.max(other.high),
            ))
        } else {
            None
        }
    }

    /// Splits the range at `pivot` into `([low, pivot), [pivot, high))`.
    ///
    /// # Panics
    /// Panics if `pivot` is outside `[low, high]`.
    pub fn split_at(self, pivot: Key) -> (KeyRange, KeyRange) {
        assert!(
            pivot >= self.low && pivot <= self.high,
            "pivot {pivot} outside {self}"
        );
        (
            KeyRange::new(self.low, pivot),
            KeyRange::new(pivot, self.high),
        )
    }

    /// Splits the range in half: `([low, mid), [mid, high))` with
    /// `mid = low + width/2`.
    pub fn split_half(self) -> (KeyRange, KeyRange) {
        let mid = self.low + self.width() / 2;
        self.split_at(mid)
    }

    /// Extends the lower bound down to `new_low` (used when the leftmost
    /// node expands its range to cover a newly inserted smaller value,
    /// paper §IV-C).
    ///
    /// # Panics
    /// Panics if `new_low > low`.
    pub fn extend_low(self, new_low: Key) -> KeyRange {
        assert!(new_low <= self.low, "extend_low must not shrink the range");
        KeyRange::new(new_low, self.high)
    }

    /// Extends the upper bound up to `new_high` (rightmost-node expansion,
    /// paper §IV-C).
    ///
    /// # Panics
    /// Panics if `new_high < high`.
    pub fn extend_high(self, new_high: Key) -> KeyRange {
        assert!(
            new_high >= self.high,
            "extend_high must not shrink the range"
        );
        KeyRange::new(self.low, new_high)
    }

    /// The midpoint key `low + width/2`.
    pub fn midpoint(self) -> Key {
        self.low + self.width() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = KeyRange::new(10, 20);
        assert_eq!(r.low(), 10);
        assert_eq!(r.high(), 20);
        assert_eq!(r.width(), 10);
        assert!(!r.is_empty());
        assert_eq!(r.midpoint(), 15);
        assert_eq!(format!("{r}"), "[10, 20)");
        assert_eq!(format!("{r:?}"), "[10, 20)");
    }

    #[test]
    fn paper_and_full_domain() {
        let paper = KeyRange::paper_domain();
        assert_eq!(paper.low(), 1);
        assert_eq!(paper.high(), 1_000_000_000);
        let full = KeyRange::full_domain();
        assert!(full.contains(0));
        assert!(full.contains(u64::MAX - 1));
        assert!(!full.contains(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn reversed_bounds_panic() {
        KeyRange::new(5, 4);
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = KeyRange::new(7, 7);
        assert!(r.is_empty());
        assert_eq!(r.width(), 0);
        assert!(!r.contains(7));
        assert!(!r.contains(6));
    }

    #[test]
    fn contains_is_half_open() {
        let r = KeyRange::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
    }

    #[test]
    fn contains_range_cases() {
        let outer = KeyRange::new(0, 100);
        assert!(outer.contains_range(KeyRange::new(0, 100)));
        assert!(outer.contains_range(KeyRange::new(10, 20)));
        assert!(outer.contains_range(KeyRange::new(50, 50))); // empty
        assert!(!outer.contains_range(KeyRange::new(90, 101)));
        assert!(!KeyRange::new(10, 20).contains_range(outer));
    }

    #[test]
    fn intersection_and_intersects() {
        let a = KeyRange::new(0, 10);
        let b = KeyRange::new(5, 15);
        let c = KeyRange::new(10, 20);
        assert!(a.intersects(b));
        assert!(!a.intersects(c)); // touching but half-open: no shared key
        assert_eq!(a.intersection(b), KeyRange::new(5, 10));
        assert!(a.intersection(c).is_empty());
        assert_eq!(b.intersection(a), a.intersection(b));
    }

    #[test]
    fn adjacency_and_merge() {
        let a = KeyRange::new(0, 10);
        let b = KeyRange::new(10, 20);
        let c = KeyRange::new(30, 40);
        assert!(a.is_adjacent_to(b));
        assert!(b.is_adjacent_to(a));
        assert!(!a.is_adjacent_to(c));
        assert_eq!(a.merge(b), Some(KeyRange::new(0, 20)));
        assert_eq!(b.merge(a), Some(KeyRange::new(0, 20)));
        assert_eq!(a.merge(c), None);
        // Overlapping ranges merge too.
        assert_eq!(
            KeyRange::new(0, 15).merge(KeyRange::new(10, 20)),
            Some(KeyRange::new(0, 20))
        );
        // Merging with an empty range returns the other side unchanged.
        assert_eq!(a.merge(KeyRange::new(50, 50)), Some(a));
        assert_eq!(KeyRange::new(50, 50).merge(a), Some(a));
    }

    #[test]
    fn split_at_and_split_half() {
        let r = KeyRange::new(0, 10);
        let (l, h) = r.split_at(4);
        assert_eq!(l, KeyRange::new(0, 4));
        assert_eq!(h, KeyRange::new(4, 10));
        let (l, h) = r.split_half();
        assert_eq!(l, KeyRange::new(0, 5));
        assert_eq!(h, KeyRange::new(5, 10));
        // Degenerate splits at the boundaries are allowed.
        let (l, h) = r.split_at(0);
        assert!(l.is_empty());
        assert_eq!(h, r);
        let (l, h) = r.split_at(10);
        assert_eq!(l, r);
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn split_outside_panics() {
        KeyRange::new(0, 10).split_at(11);
    }

    #[test]
    fn extend_low_and_high() {
        let r = KeyRange::new(100, 200);
        assert_eq!(r.extend_low(50), KeyRange::new(50, 200));
        assert_eq!(r.extend_low(100), r);
        assert_eq!(r.extend_high(300), KeyRange::new(100, 300));
        assert_eq!(r.extend_high(200), r);
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn extend_low_cannot_shrink() {
        KeyRange::new(100, 200).extend_low(150);
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn extend_high_cannot_shrink() {
        KeyRange::new(100, 200).extend_high(150);
    }

    // Seeded stand-ins for the old proptest properties: many random ranges,
    // deterministic per run.
    fn random_range(rng: &mut baton_net::SimRng) -> KeyRange {
        let a = rng.uniform_u64(0, 1_000_000);
        let b = rng.uniform_u64(0, 1_000_000);
        KeyRange::new(a.min(b), a.max(b))
    }

    #[test]
    fn prop_split_halves_partition_the_range() {
        let mut rng = baton_net::SimRng::seeded(0x5117);
        for _ in 0..500 {
            let r = random_range(&mut rng);
            let frac = rng.uniform_f64();
            let pivot = (r.low() + ((r.width() as f64) * frac) as u64).min(r.high());
            let (l, h) = r.split_at(pivot);
            assert_eq!(l.width() + h.width(), r.width());
            assert!(l.merge(h).unwrap() == r || r.is_empty());
            for k in [
                r.low(),
                pivot.saturating_sub(1),
                pivot,
                r.high().saturating_sub(1),
            ] {
                if r.contains(k) {
                    assert!(l.contains(k) ^ h.contains(k));
                }
            }
        }
    }

    #[test]
    fn prop_intersection_is_symmetric_and_contained() {
        let mut rng = baton_net::SimRng::seeded(0x1237);
        for _ in 0..500 {
            let a = random_range(&mut rng);
            let b = random_range(&mut rng);
            let i1 = a.intersection(b);
            let i2 = b.intersection(a);
            assert_eq!(i1.width(), i2.width());
            if !i1.is_empty() {
                assert!(a.contains_range(i1));
                assert!(b.contains_range(i1));
                assert!(a.intersects(b));
            } else {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn prop_merge_of_split_is_identity() {
        let mut rng = baton_net::SimRng::seeded(0x3E16);
        for _ in 0..500 {
            let r = random_range(&mut rng);
            let (l, h) = r.split_half();
            assert_eq!(l.merge(h), Some(r));
        }
    }

    #[test]
    fn prop_contains_consistent_with_bounds() {
        let mut rng = baton_net::SimRng::seeded(0xC0417);
        for _ in 0..500 {
            let r = random_range(&mut rng);
            let k = rng.uniform_u64(0, 1_000_000);
            assert_eq!(r.contains(k), k >= r.low() && k < r.high());
        }
    }
}
