//! The [`BatonSystem`]: the set of peers forming one BATON overlay plus the
//! simulated network they communicate over.
//!
//! The system owns a [`SimNetwork`] (message counting, failure injection)
//! and one [`BatonNode`] per participating peer.  All protocol logic —
//! joins, departures, failures, restructuring, search, data maintenance and
//! load balancing — is implemented in the [`crate::protocol`] modules as
//! further `impl BatonSystem` blocks; this module holds the state, the
//! public read API and the small helpers those protocols share.
//!
//! ### Simulation honesty
//!
//! Protocol code only navigates the overlay through links a real node would
//! hold (parent, children, adjacent nodes, routing tables), and every hop or
//! notification is charged to the operation through the network's
//! statistics.  The one exception is documented in
//! [`crate::protocol::restructure`]: after a restructuring shift the
//! affected links are rebuilt from the global position map, with messages
//! charged per the paper's cost model, because simulating the link-repair
//! handshakes peer by peer adds no fidelity to the message counts the paper
//! reports.

use baton_net::{Histogram, LatencyModel, LinkKind, OpScope, PeerId, SimNetwork, SimRng, SimTime};

use crate::config::BatonConfig;
use crate::error::{BatonError, Result};
use crate::messages::BatonMessage;
use crate::node::BatonNode;
use crate::position::{Position, Side};
use crate::range::{Key, KeyRange};
use crate::routing::NodeLink;

/// Dense position-to-peer index: one vector per tree level, indexed by the
/// position number within the level.
///
/// BATON keeps the tree balanced, so the occupied positions of an `N`-node
/// overlay span `O(N)` slots across `O(log N)` levels — dense rows cost the
/// same order of memory as a hash map while every occupancy probe (several
/// per restructuring step) is two array indexes.  Rows grow lazily to the
/// highest number occupied on their level.
#[derive(Clone, Debug, Default)]
pub(crate) struct PositionMap {
    levels: Vec<Vec<Option<PeerId>>>,
    /// Occupied positions per level, so the tree height — consulted by
    /// every search walk for its loop budget — is an O(levels) scan
    /// instead of an O(N) sweep over the nodes.
    occupied: Vec<usize>,
}

impl PositionMap {
    /// The peer occupying `position`, if any.
    #[inline]
    pub(crate) fn get(&self, position: Position) -> Option<PeerId> {
        *self
            .levels
            .get(position.level() as usize)?
            .get((position.number() - 1) as usize)?
    }

    /// `true` if `position` is occupied.
    #[inline]
    pub(crate) fn contains(&self, position: Position) -> bool {
        self.get(position).is_some()
    }

    /// Records that `peer` occupies `position`.
    pub(crate) fn insert(&mut self, position: Position, peer: PeerId) {
        let level = position.level() as usize;
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
            self.occupied.resize(level + 1, 0);
        }
        let row = &mut self.levels[level];
        let index = (position.number() - 1) as usize;
        if row.len() <= index {
            row.resize(index + 1, None);
        }
        if row[index].is_none() {
            self.occupied[level] += 1;
        }
        row[index] = Some(peer);
    }

    /// Clears the occupancy record of `position`.
    pub(crate) fn remove(&mut self, position: Position) {
        if let Some(row) = self.levels.get_mut(position.level() as usize) {
            if let Some(slot) = row.get_mut((position.number() - 1) as usize) {
                if slot.take().is_some() {
                    self.occupied[position.level() as usize] -= 1;
                }
            }
        }
    }

    /// `1 + deepest occupied level` (0 when nothing is occupied).
    pub(crate) fn height(&self) -> u32 {
        self.occupied
            .iter()
            .rposition(|&count| count > 0)
            .map(|level| level as u32 + 1)
            .unwrap_or(0)
    }
}

/// One BATON overlay: peers, their tree state, and the simulated network.
#[derive(Debug)]
pub struct BatonSystem {
    pub(crate) net: SimNetwork<BatonMessage>,
    /// Node state, slab-indexed by the dense peer id ([`PeerId::raw`]).
    /// Departed/failed peers leave `None` slots behind; ids are never
    /// reused (see [`baton_net::PeerRegistry`]).
    pub(crate) nodes: Vec<Option<BatonNode>>,
    /// Every live peer, kept sorted by [`PeerId`], so uniform sampling is an
    /// O(1) index instead of a collect-and-sort over the node map.  The
    /// sorted order matters: it is the order the pre-event-engine
    /// `random_peer` sampled from, so seeded experiments keep producing the
    /// exact message counts of the seed figures.
    pub(crate) peer_list: Vec<PeerId>,
    pub(crate) by_position: PositionMap,
    pub(crate) root: Option<PeerId>,
    pub(crate) config: BatonConfig,
    pub(crate) domain: KeyRange,
    pub(crate) rng: SimRng,
    pub(crate) balance_shift_sizes: Histogram,
    /// Replication degree k: every key lives at its routed owner plus k−1
    /// adjacent-link replica peers.  1 (the default) means no replication
    /// and leaves every legacy code path untouched.
    pub(crate) replication: usize,
    /// Peers currently dead but still registered — failures awaiting their
    /// deferred repair ([`fail_silently`](Self::fail_silently) /
    /// `fail_peer_deferred`).  Empty in every legacy run, which is what
    /// keeps the extra liveness checks byte-invisible.
    pub(crate) dead_peers: Vec<PeerId>,
    /// Reusable buffers for the fault-tolerant search walk (see
    /// [`crate::protocol::search`]); carried here so a walk allocates
    /// nothing in steady state.
    pub(crate) walk_scratch: crate::protocol::search::WalkScratch,
}

impl BatonSystem {
    /// Creates an empty overlay with the given configuration and RNG seed.
    pub fn new(config: BatonConfig, seed: u64) -> Self {
        Self {
            net: SimNetwork::new(),
            nodes: Vec::new(),
            peer_list: Vec::new(),
            by_position: PositionMap::default(),
            root: None,
            domain: config.domain,
            config,
            rng: SimRng::seeded(seed),
            balance_shift_sizes: Histogram::new(),
            replication: 1,
            dead_peers: Vec::new(),
            walk_scratch: Default::default(),
        }
    }

    /// Creates an empty overlay with default (paper) configuration.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(BatonConfig::default(), seed)
    }

    /// Creates the first node of the overlay, managing the whole key domain.
    ///
    /// Returns an error if the overlay already has nodes.
    pub fn bootstrap(&mut self) -> Result<PeerId> {
        if !self.is_empty() {
            return Err(BatonError::InvariantViolation(
                "bootstrap called on a non-empty overlay".into(),
            ));
        }
        let peer = self.net.add_peer();
        let node = BatonNode::new(peer, Position::ROOT, self.domain);
        self.by_position.insert(Position::ROOT, peer);
        self.register_node(peer, node);
        self.root = Some(peer);
        Ok(peer)
    }

    /// Builds an overlay of `n` nodes by bootstrapping one node and having
    /// the remaining `n - 1` join through random existing contacts.
    ///
    /// This is the construction the paper uses for every experiment.
    pub fn build(config: BatonConfig, seed: u64, n: usize) -> Result<Self> {
        let mut system = Self::new(config, seed);
        if n == 0 {
            return Ok(system);
        }
        system.bootstrap()?;
        for _ in 1..n {
            system.join_random()?;
        }
        Ok(system)
    }

    // ------------------------------------------------------------------
    // Read API
    // ------------------------------------------------------------------

    /// Number of live nodes in the overlay.
    pub fn node_count(&self) -> usize {
        self.peer_list.len()
    }

    /// `true` if the overlay has no nodes.
    pub fn is_empty(&self) -> bool {
        self.peer_list.is_empty()
    }

    /// Approximate resident bytes of per-peer protocol state: the node slab
    /// (including `None` slots left by departures — they stay resident) plus
    /// every live node's routing tables and local store.  The shared network
    /// substrate is excluded; this is the figure the perf harness divides by
    /// [`node_count`](Self::node_count) for its bytes-per-peer rows.
    pub fn estimated_state_bytes(&self) -> u64 {
        let slab = (self.nodes.capacity() * std::mem::size_of::<Option<BatonNode>>()) as u64;
        let heap: u64 = self
            .nodes
            .iter()
            .flatten()
            .map(|node| node.estimated_state_bytes() - std::mem::size_of::<BatonNode>() as u64)
            .sum();
        let peers = (self.peer_list.capacity() * std::mem::size_of::<PeerId>()) as u64;
        slab + heap + peers
    }

    /// The peer currently occupying the root position, if any.
    pub fn root(&self) -> Option<PeerId> {
        self.root
    }

    /// The configuration the overlay was created with.
    pub fn config(&self) -> &BatonConfig {
        &self.config
    }

    /// The key domain currently covered by the overlay (may have grown
    /// through leftmost/rightmost expansion, paper §IV-C).
    pub fn domain(&self) -> KeyRange {
        self.domain
    }

    /// Read access to a node's state.
    #[inline]
    pub fn node(&self, peer: PeerId) -> Option<&BatonNode> {
        self.nodes.get(peer.raw() as usize)?.as_ref()
    }

    /// The peer occupying a logical position, if any.
    pub fn peer_at(&self, position: Position) -> Option<PeerId> {
        self.by_position.get(position)
    }

    /// All live peers, sorted by id — a borrowed view of the sampling list,
    /// cloned by callers that mutate the overlay while iterating.
    pub fn peers(&self) -> &[PeerId] {
        &self.peer_list
    }

    /// Iterates over every live node, in peer-id order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (PeerId, &BatonNode)> + '_ {
        self.peer_list
            .iter()
            .filter_map(|p| self.node(*p).map(|n| (*p, n)))
    }

    /// Height of the tree: `1 + max level` of any occupied position
    /// (an empty overlay has height 0).  O(levels), from the per-level
    /// occupancy counters of the position map.
    pub fn height(&self) -> u32 {
        self.by_position.height()
    }

    /// Total number of data items stored across all nodes.
    pub fn total_items(&self) -> usize {
        self.iter_nodes().map(|(_, n)| n.store.len()).sum()
    }

    /// Network statistics (message counts per kind, per peer, per op).
    pub fn stats(&self) -> &baton_net::MessageStats {
        self.net.stats()
    }

    /// Mutable network statistics (harnesses reset per-peer counters
    /// between experiment phases, e.g. for Figure 8(f)).
    pub fn stats_mut(&mut self) -> &mut baton_net::MessageStats {
        self.net.stats_mut()
    }

    /// Histogram of the number of nodes involved in each load-balancing
    /// restructuring shift (Figure 8(h)).
    pub fn balance_shift_histogram(&self) -> &Histogram {
        &self.balance_shift_sizes
    }

    /// A uniformly random live peer, or `None` if the overlay is empty.
    ///
    /// O(1): one index draw into the sorted live-peer list maintained by
    /// [`register_node`](Self::register_node) /
    /// [`unregister_node`](Self::unregister_node).
    pub fn random_peer(&mut self) -> Option<PeerId> {
        if self.peer_list.is_empty() {
            return None;
        }
        let idx = self.rng.index(self.peer_list.len());
        let peer = self.peer_list[idx];
        // Unrepaired failures keep their peer-list slot (their slice is
        // still owned, just dark), but a dead peer cannot issue operations:
        // redraw until a live one comes up.  The extra draws only happen
        // while `dead_peers` is non-empty, so legacy (immediately repaired)
        // runs consume exactly one draw per call, as before.
        if self.dead_peers.is_empty() || self.net.is_alive(peer) {
            return Some(peer);
        }
        for _ in 0..4 * self.peer_list.len() {
            let idx = self.rng.index(self.peer_list.len());
            let peer = self.peer_list[idx];
            if self.net.is_alive(peer) {
                return Some(peer);
            }
        }
        self.peer_list
            .iter()
            .find(|p| self.net.is_alive(**p))
            .copied()
    }

    /// The replication degree k in effect (1 = no replication).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Sets the replication degree.  BATON's placement rule puts each key's
    /// k−1 extra copies on the owner's adjacent-link neighbours, so at most
    /// [`MAX_REPLICATION`](Self::MAX_REPLICATION) copies exist.
    pub fn set_replication(&mut self, k: usize) -> Result<()> {
        if k == 0 || k > Self::MAX_REPLICATION {
            return Err(BatonError::InvariantViolation(format!(
                "replication degree {k} outside 1..={}",
                Self::MAX_REPLICATION
            )));
        }
        self.replication = k;
        Ok(())
    }

    /// Highest replication degree the adjacent-link placement rule supports:
    /// the owner plus its two in-order adjacent neighbours.
    pub const MAX_REPLICATION: usize = 3;

    /// The peers holding the k−1 replica copies of `peer`'s slice, per the
    /// adjacent-link placement rule: the right adjacent first, then the
    /// left.  Empty at k = 1.  Dead targets are included — callers decide
    /// whether a dead replica still counts (it does not for failover).
    pub fn replica_targets(&self, peer: PeerId) -> Vec<PeerId> {
        if self.replication <= 1 {
            return Vec::new();
        }
        let Some(node) = self.node(peer) else {
            return Vec::new();
        };
        let mut targets: Vec<PeerId> = Vec::new();
        fn push(targets: &mut Vec<PeerId>, peer: PeerId, link: Option<&NodeLink>) {
            if let Some(l) = link {
                if l.peer != peer && !targets.contains(&l.peer) {
                    targets.push(l.peer);
                }
            }
        }
        push(&mut targets, peer, node.right_adjacent.as_ref());
        if self.replication > 2 || targets.is_empty() {
            push(&mut targets, peer, node.left_adjacent.as_ref());
        }
        targets.truncate(self.replication - 1);
        targets
    }

    /// `true` if at least one replica target of `peer` is currently alive —
    /// the condition for a fast (replica-streamed) repair and for zero data
    /// loss when the peer fails.
    pub fn replica_survives(&self, peer: PeerId) -> bool {
        self.replica_targets(peer)
            .iter()
            .any(|t| self.net.is_alive(*t))
    }

    /// Charges the k−1 replica-copy notifications a write to `source`'s
    /// slice costs, sent by `sender` (the alive node that terminated the
    /// walk) to every alive replica target of `source`.  Returns the number
    /// of messages charged — always 0 at k = 1.
    pub(crate) fn charge_replica_copies(
        &mut self,
        op: OpScope,
        sender: PeerId,
        source: PeerId,
    ) -> u64 {
        if self.replication <= 1 {
            return 0;
        }
        let mut copies = 0u64;
        for target in self.replica_targets(source) {
            if target != sender && self.net.is_alive(target) {
                self.notify(op, "replicate.copy", sender, target);
                copies += 1;
            }
        }
        copies
    }

    /// Charges the replica-handoff notifications a membership change costs
    /// at k > 1: the node whose slice boundaries moved re-seeds its replica
    /// targets with the slice content.  Returns the number of messages
    /// charged — always 0 at k = 1.
    pub(crate) fn charge_replica_handoffs(&mut self, op: OpScope, peer: PeerId) -> u64 {
        if self.replication <= 1 {
            return 0;
        }
        let mut handoffs = 0u64;
        for target in self.replica_targets(peer) {
            if self.net.is_alive(target) {
                self.notify(op, "replication.handoff", peer, target);
                handoffs += 1;
            }
        }
        handoffs
    }

    /// Virtual time the overlay's network has reached.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Advances the network's arrival clock (see
    /// [`SimNetwork::advance_to`]).
    pub fn advance_to(&mut self, at: SimTime) {
        self.net.advance_to(at);
    }

    /// Replaces the network's link-latency model.
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.net.set_latency_model(model);
    }

    /// Number of messages received by each peer, grouped by tree level —
    /// the per-level access load of Figure 8(f).
    pub fn access_load_by_level(&self) -> Vec<(u32, f64)> {
        let mut per_level: Vec<(u64, u64)> = Vec::new();
        for (peer, node) in self.iter_nodes() {
            let received = self.net.stats().received_count(peer);
            let level = node.position.level() as usize;
            if per_level.len() <= level {
                per_level.resize(level + 1, (0, 0));
            }
            per_level[level].0 += received;
            per_level[level].1 += 1;
        }
        per_level
            .into_iter()
            .enumerate()
            .filter(|(_, (_, count))| *count > 0)
            .map(|(level, (msgs, count))| (level as u32, msgs as f64 / count as f64))
            .collect()
    }

    // ------------------------------------------------------------------
    // Shared internal helpers (used by the protocol modules)
    // ------------------------------------------------------------------

    /// Adds `peer` to the node map and to the sorted live-peer sampling
    /// list.  All membership changes must go through this and
    /// [`unregister_node`](Self::unregister_node) so the two stay in sync.
    pub(crate) fn register_node(&mut self, peer: PeerId, node: BatonNode) {
        match self.peer_list.binary_search(&peer) {
            Ok(_) => {} // re-registration (e.g. a replacement re-inserted)
            Err(idx) => self.peer_list.insert(idx, peer),
        }
        let index = peer.raw() as usize;
        if self.nodes.len() <= index {
            self.nodes.resize_with(index + 1, || None);
        }
        self.nodes[index] = Some(node);
    }

    /// Removes `peer` from the node slab and the sampling list, returning
    /// its node state.  The slab slot stays behind as a hole — peer ids are
    /// never reused.
    pub(crate) fn unregister_node(&mut self, peer: PeerId) -> Option<BatonNode> {
        if let Ok(idx) = self.peer_list.binary_search(&peer) {
            self.peer_list.remove(idx);
        }
        self.nodes.get_mut(peer.raw() as usize)?.take()
    }

    /// Read access to a node, as a [`Result`].
    #[inline]
    pub(crate) fn node_ref(&self, peer: PeerId) -> Result<&BatonNode> {
        self.node(peer).ok_or(BatonError::UnknownPeer(peer))
    }

    /// Mutable access to a node, as a [`Result`].
    #[inline]
    pub(crate) fn node_mut(&mut self, peer: PeerId) -> Result<&mut BatonNode> {
        self.nodes
            .get_mut(peer.raw() as usize)
            .and_then(Option::as_mut)
            .ok_or(BatonError::UnknownPeer(peer))
    }

    /// Mutable access to a node, or `None` — the slab-indexed equivalent of
    /// the old `nodes.get_mut(&peer)`.
    #[inline]
    pub(crate) fn node_opt_mut(&mut self, peer: PeerId) -> Option<&mut BatonNode> {
        self.nodes.get_mut(peer.raw() as usize)?.as_mut()
    }

    /// The current link (address, position, range) of `peer`.
    pub(crate) fn link_of(&self, peer: PeerId) -> Result<NodeLink> {
        Ok(self.node_ref(peer)?.link())
    }

    /// Maximum number of hops a forwarding walk may take before it is
    /// declared a routing loop.
    pub(crate) fn walk_limit(&self) -> u32 {
        let height = self.height().max(1);
        (height * self.config.walk_limit_factor).max(32)
    }

    /// Sends one protocol message from `from` to `to` and delivers it,
    /// charging it to `op`.  Returns `Ok(true)` if the destination was
    /// alive, `Ok(false)` if the delivery failed (dead destination).
    pub(crate) fn hop(
        &mut self,
        op: OpScope,
        from: PeerId,
        to: PeerId,
        hop_no: u32,
        message: BatonMessage,
    ) -> Result<bool> {
        // Link classification is trace-only work: skip the sender lookup
        // entirely on untraced runs so the hot path stays unchanged.
        let kind = if self.net.trace_enabled() {
            self.classify_link(from, to)
        } else {
            LinkKind::Other
        };
        self.net
            .send_with_kind(op, from, to, hop_no, kind, message)
            .map_err(|_| BatonError::PeerNotAlive(from))?;
        match self.net.deliver_next() {
            Some(Ok(_)) => Ok(true),
            Some(Err(_)) => Ok(false),
            None => Ok(true),
        }
    }

    /// The class of the link a `from → to` hop travels, from the sender's
    /// view: parent, child, adjacent, or a left/right routing-table entry
    /// (paper §II).  `Other` when the sender is unknown or holds no link to
    /// `to` (e.g. a §III-D fallback jump assembled from stale state).
    fn classify_link(&self, from: PeerId, to: PeerId) -> LinkKind {
        let Some(node) = self.node(from) else {
            return LinkKind::Other;
        };
        let links_to = |link: &Option<NodeLink>| link.as_ref().is_some_and(|l| l.peer == to);
        if links_to(&node.parent) {
            LinkKind::Parent
        } else if links_to(&node.left_child) || links_to(&node.right_child) {
            LinkKind::Child
        } else if links_to(&node.left_adjacent) || links_to(&node.right_adjacent) {
            LinkKind::Adjacent
        } else if node
            .left_table
            .iter()
            .chain(node.right_table.iter())
            .any(|(_, entry)| entry.link.peer == to)
        {
            LinkKind::RoutingTable
        } else {
            LinkKind::Other
        }
    }

    /// Charges a notification message (no reply modelled) to `op`.
    pub(crate) fn notify(&mut self, op: OpScope, kind: &'static str, from: PeerId, to: PeerId) {
        self.net.count_message(op, kind, from, to);
    }

    /// Registers that `peer` now occupies `position`.
    pub(crate) fn occupy(&mut self, position: Position, peer: PeerId) {
        self.by_position.insert(position, peer);
        if position.is_root() {
            self.root = Some(peer);
        }
    }

    /// Removes the occupancy record for `position` if it is held by `peer`.
    pub(crate) fn vacate(&mut self, position: Position, peer: PeerId) {
        if self.by_position.get(position) == Some(peer) {
            self.by_position.remove(position);
            if position.is_root() && self.root == Some(peer) {
                self.root = None;
            }
        }
    }

    /// Informs every node linked to `peer` that its range changed, updating
    /// their recorded link ranges.  Each notified node costs one message
    /// charged to `op` with the `table.range_update` kind.
    ///
    /// Returns the number of messages sent.
    pub(crate) fn broadcast_range_update(&mut self, op: OpScope, peer: PeerId) -> Result<u64> {
        let _t = baton_net::profiler::scope("baton.broadcast.range");
        let (linked, range) = {
            let node = self.node_ref(peer)?;
            (node.linked_peers(), node.range)
        };
        let mut messages = 0;
        for other in linked {
            self.notify(op, "table.range_update", peer, other);
            messages += 1;
            if let Some(other_node) = self.node_opt_mut(other) {
                other_node.update_link_range(peer, range);
            }
        }
        Ok(messages)
    }

    /// Informs every routing-table neighbour of `peer` about its current
    /// children, updating their child knowledge.  One message per neighbour,
    /// charged to `op` with the `table.child_update` kind.
    ///
    /// Returns the number of messages sent.
    pub(crate) fn broadcast_child_update(&mut self, op: OpScope, peer: PeerId) -> Result<u64> {
        let _t = baton_net::profiler::scope("baton.broadcast.child");
        let (neighbors, left_child, right_child) = {
            let node = self.node_ref(peer)?;
            let mut neighbors = Vec::new();
            for side in Side::BOTH {
                for (_, e) in node.table(side).iter() {
                    neighbors.push(e.link.peer);
                }
            }
            (
                neighbors,
                node.left_child.map(|l| l.peer),
                node.right_child.map(|l| l.peer),
            )
        };
        let mut messages = 0;
        for other in neighbors {
            self.notify(op, "table.child_update", peer, other);
            messages += 1;
            if let Some(other_node) = self.node_opt_mut(other) {
                other_node.update_neighbor_children(peer, left_child, right_child);
            }
        }
        Ok(messages)
    }

    /// Informs every node linked to `peer` of both its current range and its
    /// current children in a single notification per linked node — the
    /// combined update a parent sends out after gaining or losing a child
    /// (paper §III-A/B counts this as the `2·L1` term).
    ///
    /// Returns the number of messages sent.
    pub(crate) fn broadcast_parent_update(&mut self, op: OpScope, peer: PeerId) -> Result<u64> {
        let _t = baton_net::profiler::scope("baton.broadcast.parent");
        let (linked, range, left_child, right_child) = {
            let node = self.node_ref(peer)?;
            (
                node.linked_peers(),
                node.range,
                node.left_child.map(|l| l.peer),
                node.right_child.map(|l| l.peer),
            )
        };
        let mut messages = 0;
        for other in linked {
            self.notify(op, "table.child_update", peer, other);
            messages += 1;
            if let Some(other_node) = self.node_opt_mut(other) {
                other_node.update_link_range(peer, range);
                other_node.update_neighbor_children(peer, left_child, right_child);
            }
        }
        Ok(messages)
    }

    /// Ensures `key` lies inside the overlay's current key domain (the
    /// configured domain, possibly grown by leftmost/rightmost expansion).
    pub(crate) fn check_key(&self, key: Key) -> Result<()> {
        if self.domain.contains(key) {
            Ok(())
        } else {
            Err(BatonError::KeyOutOfDomain(key))
        }
    }

    /// Records `peer` as dead-but-unrepaired (it keeps its peer-list slot).
    pub(crate) fn mark_dead(&mut self, peer: PeerId) {
        if !self.dead_peers.contains(&peer) {
            self.dead_peers.push(peer);
        }
    }

    /// Clears the dead-but-unrepaired record of `peer` after its repair.
    pub(crate) fn mark_repaired(&mut self, peer: PeerId) {
        self.dead_peers.retain(|p| *p != peer);
    }

    /// Ensures `peer` is a live member of the overlay.
    pub(crate) fn check_alive(&self, peer: PeerId) -> Result<()> {
        if self.node(peer).is_none() {
            return Err(BatonError::UnknownPeer(peer));
        }
        if !self.net.is_alive(peer) {
            return Err(BatonError::PeerNotAlive(peer));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_properties() {
        let system = BatonSystem::with_seed(1);
        assert!(system.is_empty());
        assert_eq!(system.node_count(), 0);
        assert_eq!(system.height(), 0);
        assert_eq!(system.root(), None);
        assert_eq!(system.total_items(), 0);
        assert!(system.peers().is_empty());
        assert_eq!(system.domain(), KeyRange::paper_domain());
    }

    #[test]
    fn bootstrap_creates_root_over_whole_domain() {
        let mut system = BatonSystem::with_seed(1);
        let root = system.bootstrap().unwrap();
        assert_eq!(system.node_count(), 1);
        assert_eq!(system.root(), Some(root));
        assert_eq!(system.height(), 1);
        let node = system.node(root).unwrap();
        assert_eq!(node.position, Position::ROOT);
        assert_eq!(node.range, KeyRange::paper_domain());
        assert!(node.is_leaf());
        assert_eq!(system.peer_at(Position::ROOT), Some(root));
    }

    #[test]
    fn bootstrap_twice_is_rejected() {
        let mut system = BatonSystem::with_seed(1);
        system.bootstrap().unwrap();
        assert!(matches!(
            system.bootstrap(),
            Err(BatonError::InvariantViolation(_))
        ));
    }

    #[test]
    fn random_peer_on_empty_system_is_none() {
        let mut system = BatonSystem::with_seed(1);
        assert_eq!(system.random_peer(), None);
        system.bootstrap().unwrap();
        assert!(system.random_peer().is_some());
    }

    #[test]
    fn check_key_respects_domain() {
        let config = BatonConfig::default().with_domain(KeyRange::new(10, 20));
        let system = BatonSystem::new(config, 1);
        assert!(system.check_key(15).is_ok());
        assert_eq!(system.check_key(5), Err(BatonError::KeyOutOfDomain(5)));
        assert_eq!(system.check_key(20), Err(BatonError::KeyOutOfDomain(20)));
    }

    #[test]
    fn check_alive_distinguishes_unknown_and_dead() {
        let mut system = BatonSystem::with_seed(1);
        let root = system.bootstrap().unwrap();
        assert!(system.check_alive(root).is_ok());
        assert_eq!(
            system.check_alive(PeerId(999)),
            Err(BatonError::UnknownPeer(PeerId(999)))
        );
        system.net.fail_peer(root);
        assert_eq!(
            system.check_alive(root),
            Err(BatonError::PeerNotAlive(root))
        );
    }

    #[test]
    fn walk_limit_scales_with_height() {
        let mut system = BatonSystem::with_seed(1);
        assert!(system.walk_limit() >= 32);
        system.bootstrap().unwrap();
        let limit1 = system.walk_limit();
        assert!(limit1 >= system.config.walk_limit_factor);
    }
}
