//! [`Overlay`] implementation for [`BatonSystem`]: the adapter between
//! BATON's rich protocol reports and the workspace-wide overlay interface
//! the generic harness (`baton-workload` runners, `baton-sim` drivers)
//! programs against.

use baton_net::{
    ChurnCost, Histogram, LatencyModel, MessageStats, OpCost, Overlay, OverlayCapabilities,
    OverlayError, OverlayResult, PeerId, RepairPolicy, SimTime, TraceBuffer, TraceConfig,
};

use crate::error::BatonError;
use crate::range::KeyRange;
use crate::system::BatonSystem;

fn op_err(error: BatonError) -> OverlayError {
    OverlayError::Op(error.to_string())
}

/// Error mapping for the query/update paths: an operation that bounced off
/// an unrepaired failure (a dead peer in the way, or a routing walk whose
/// budget drowned in dead candidates) is an *availability* miss — the
/// workload layer counts it instead of aborting the run.  Every other error
/// stays a hard [`OverlayError::Op`].
fn avail_err(error: BatonError) -> OverlayError {
    match error {
        BatonError::PeerNotAlive(_) | BatonError::RoutingLoop { .. } => {
            OverlayError::Unavailable(error.to_string())
        }
        other => OverlayError::Op(other.to_string()),
    }
}

impl Overlay for BatonSystem {
    fn name(&self) -> &'static str {
        "BATON"
    }

    fn capabilities(&self) -> OverlayCapabilities {
        OverlayCapabilities::FULL.with_bulk_build()
    }

    fn node_count(&self) -> usize {
        BatonSystem::node_count(self)
    }

    fn total_items(&self) -> usize {
        BatonSystem::total_items(self)
    }

    fn stats(&self) -> &MessageStats {
        BatonSystem::stats(self)
    }

    fn stats_mut(&mut self) -> &mut MessageStats {
        BatonSystem::stats_mut(self)
    }

    fn now(&self) -> SimTime {
        BatonSystem::now(self)
    }

    fn advance_to(&mut self, at: SimTime) {
        BatonSystem::advance_to(self, at);
    }

    fn set_latency_model(&mut self, model: LatencyModel) {
        BatonSystem::set_latency_model(self, model);
    }

    fn estimated_state_bytes(&self) -> u64 {
        BatonSystem::estimated_state_bytes(self)
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.net.set_trace(config);
    }

    fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.net.take_trace()
    }

    fn routing_snapshot(&self) -> Option<baton_net::serve::RoutingSnapshot> {
        Some(self.build_routing_snapshot())
    }

    fn join_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = BatonSystem::join_random(self).map_err(avail_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn peers(&self) -> &[PeerId] {
        BatonSystem::peers(self)
    }

    fn leave_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = BatonSystem::leave_random(self).map_err(avail_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn leave_peer(&mut self, peer: PeerId) -> OverlayResult<ChurnCost> {
        let report = BatonSystem::leave(self, peer).map_err(avail_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn fail_random(&mut self) -> OverlayResult<ChurnCost> {
        let victim = self
            .random_peer()
            .ok_or_else(|| OverlayError::Op("the overlay is empty".into()))?;
        self.fail_peer(victim)
    }

    fn fail_peer(&mut self, peer: PeerId) -> OverlayResult<ChurnCost> {
        let report = self.fail(peer).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.departure_messages,
            update_messages: report.regeneration_messages,
            lost_items: report.lost_items,
        })
    }

    fn replication(&self) -> usize {
        BatonSystem::replication(self)
    }

    fn set_replication(&mut self, k: usize) -> OverlayResult<()> {
        BatonSystem::set_replication(self, k).map_err(op_err)
    }

    fn peer_alive(&self, peer: PeerId) -> bool {
        self.node(peer).is_some() && self.net.is_alive(peer)
    }

    fn fail_peer_deferred(
        &mut self,
        peer: PeerId,
        policy: &RepairPolicy,
    ) -> OverlayResult<SimTime> {
        self.fail_deferred(peer, policy).map_err(op_err)
    }

    fn repair_fast_eligible(&self, peer: PeerId) -> bool {
        BatonSystem::replication(self) > 1
            && self.node(peer).is_some()
            && !self.net.is_alive(peer)
            && self.replica_survives(peer)
    }

    fn repair_peer(&mut self, peer: PeerId) -> OverlayResult<ChurnCost> {
        let report = match self.recover_failed(peer) {
            Ok(report) => report,
            // A victim chosen as replacement for an earlier repair was
            // already absorbed into the tree: nothing left to repair.
            Err(BatonError::UnknownPeer(_)) => return Ok(ChurnCost::default()),
            Err(e) => return Err(avail_err(e)),
        };
        Ok(ChurnCost {
            locate_messages: report.departure_messages,
            update_messages: report.regeneration_messages,
            lost_items: report.lost_items,
        })
    }

    fn load_direct(&mut self, data: &[(u64, u64)]) -> bool {
        BatonSystem::load_direct(self, data);
        true
    }

    fn insert(&mut self, key: u64, value: u64) -> OverlayResult<OpCost> {
        let report = BatonSystem::insert(self, key, value).map_err(avail_err)?;
        Ok(OpCost {
            // Routing plus any leftmost/rightmost domain expansion; load
            // balancing is reported separately, per the OpCost contract.
            messages: report.messages + report.expansion_messages,
            matches: 0,
            nodes_visited: 1,
            balance_messages: report.balance.as_ref().map_or(0, |b| b.messages),
        })
    }

    fn delete(&mut self, key: u64) -> OverlayResult<OpCost> {
        let report = BatonSystem::delete(self, key).map_err(avail_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: usize::from(report.removed),
            nodes_visited: 1,
            balance_messages: report.balance.as_ref().map_or(0, |b| b.messages),
        })
    }

    fn search_exact(&mut self, key: u64) -> OverlayResult<OpCost> {
        // Count-only variant: the trait reports costs, so the matched
        // values are never materialised on this hot path.
        let report = BatonSystem::search_exact_count(self, key).map_err(avail_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn search_range(&mut self, low: u64, high: u64) -> OverlayResult<OpCost> {
        let report =
            BatonSystem::search_range_count(self, KeyRange::new(low, high)).map_err(avail_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn access_load_by_level(&self) -> Vec<(u32, f64)> {
        BatonSystem::access_load_by_level(self)
    }

    fn balance_shift_histogram(&self) -> Option<&Histogram> {
        Some(BatonSystem::balance_shift_histogram(self))
    }

    fn validate(&self) -> Result<(), String> {
        crate::validate(self).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;

    fn boxed(n: usize, seed: u64) -> Box<dyn Overlay> {
        Box::new(BatonSystem::build(BatonConfig::default(), seed, n).unwrap())
    }

    #[test]
    fn baton_is_fully_capable_through_the_trait() {
        let mut overlay = boxed(30, 1);
        assert_eq!(overlay.name(), "BATON");
        assert_eq!(
            overlay.capabilities(),
            OverlayCapabilities::FULL.with_bulk_build()
        );
        assert_eq!(overlay.node_count(), 30);

        let insert = overlay.insert(123_456, 7).unwrap();
        assert!(insert.messages > 0);
        assert_eq!(overlay.total_items(), 1);
        let hit = overlay.search_exact(123_456).unwrap();
        assert_eq!(hit.matches, 1);
        let range = overlay.search_range(1, 1_000_000_000).unwrap();
        assert_eq!(range.matches, 1);
        assert!(range.nodes_visited >= 1);
        let gone = overlay.delete(123_456).unwrap();
        assert_eq!(gone.matches, 1);

        let join = overlay.join_random().unwrap();
        assert!(join.locate_messages + join.update_messages > 0);
        overlay.leave_random().unwrap();
        assert_eq!(overlay.node_count(), 30);
        overlay.validate().unwrap();
    }

    #[test]
    fn baton_failures_report_lost_items_through_the_trait() {
        let mut overlay = boxed(20, 2);
        for i in 0..100u64 {
            overlay.insert(1 + i * 9_999_991, i).unwrap();
        }
        let before = overlay.total_items();
        let cost = overlay.fail_random().unwrap();
        assert_eq!(overlay.node_count(), 19);
        assert_eq!(overlay.total_items() + cost.lost_items, before);
        overlay.validate().unwrap();
    }

    #[test]
    fn baton_reports_level_load_and_shift_histogram() {
        let mut overlay = boxed(40, 3);
        for i in 0..50u64 {
            overlay.insert(1 + i * 13_999_999, i).unwrap();
            overlay.search_exact(1 + i * 13_999_999).unwrap();
        }
        assert!(!overlay.access_load_by_level().is_empty());
        assert!(overlay.balance_shift_histogram().is_some());
    }
}
