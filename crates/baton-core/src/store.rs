//! Local data storage at a node.
//!
//! Each BATON node stores the index entries whose keys fall inside the range
//! it manages.  The store is an ordered multimap from [`Key`] to opaque
//! values, so it supports the exact-match and range scans the overlay needs
//! as well as the splitting/merging that accompanies joins, departures and
//! load balancing.

use std::collections::BTreeMap;

use crate::range::{Key, KeyRange};

/// An opaque value attached to an index entry.  The reproduction uses `u64`
/// payload identifiers; a real deployment would store record locators.
pub type Value = u64;

/// Ordered multimap of index entries managed by one node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalStore {
    entries: BTreeMap<Key, Vec<Value>>,
    len: usize,
}

impl LocalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored values (counting duplicates per key).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the store holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys stored.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap bytes behind this store: B-tree nodes (keyed entry
    /// plus amortised tree overhead) and the per-key value vectors.  Used by
    /// the perf harness's bytes-per-peer accounting; it is an estimate, not
    /// an allocator measurement.
    pub fn estimated_heap_bytes(&self) -> u64 {
        // Each B-tree entry stores a `(Key, Vec<Value>)` pair; ~16 bytes of
        // amortised node bookkeeping (parent pointers, length fields spread
        // over 11-entry nodes) is charged per entry.
        let entry = std::mem::size_of::<(Key, Vec<Value>)>() as u64 + 16;
        let values: u64 = self
            .entries
            .values()
            .map(|v| (v.capacity() * std::mem::size_of::<Value>()) as u64)
            .sum();
        self.entries.len() as u64 * entry + values
    }

    /// Inserts a value under `key`.  Duplicate keys are allowed (the paper
    /// explicitly discusses duplicate partition-key values, §IV-A).
    pub fn insert(&mut self, key: Key, value: Value) {
        self.entries.entry(key).or_default().push(value);
        self.len += 1;
    }

    /// Returns the values stored under `key` (empty slice if none).
    pub fn get(&self, key: Key) -> &[Value] {
        self.entries.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` if at least one value is stored under `key`.
    pub fn contains_key(&self, key: Key) -> bool {
        self.entries.contains_key(&key)
    }

    /// Removes *one* value stored under `key`, returning it.
    ///
    /// Returns `None` if the key is absent.
    pub fn remove_one(&mut self, key: Key) -> Option<Value> {
        let values = self.entries.get_mut(&key)?;
        let value = values.pop();
        if values.is_empty() {
            self.entries.remove(&key);
        }
        if value.is_some() {
            self.len -= 1;
        }
        value
    }

    /// Removes every value stored under `key`, returning them.
    pub fn remove_all(&mut self, key: Key) -> Vec<Value> {
        match self.entries.remove(&key) {
            Some(values) => {
                self.len -= values.len();
                values
            }
            None => Vec::new(),
        }
    }

    /// Returns `(key, value)` pairs whose keys lie in `range`, in key order.
    pub fn scan(&self, range: KeyRange) -> Vec<(Key, Value)> {
        if range.is_empty() {
            return Vec::new();
        }
        self.entries
            .range(range.low()..range.high())
            .flat_map(|(k, vs)| vs.iter().map(move |v| (*k, *v)))
            .collect()
    }

    /// Number of values whose keys lie in `range`.
    pub fn count_in(&self, range: KeyRange) -> usize {
        if range.is_empty() {
            return 0;
        }
        self.entries
            .range(range.low()..range.high())
            .map(|(_, vs)| vs.len())
            .sum()
    }

    /// Removes and returns every entry whose key lies in `range`
    /// (used when a node splits its content with a new child, paper §III-A,
    /// or migrates data during load balancing, §IV-D).
    pub fn split_off_range(&mut self, range: KeyRange) -> LocalStore {
        let mut moved = LocalStore::new();
        if range.is_empty() {
            return moved;
        }
        let keys: Vec<Key> = self
            .entries
            .range(range.low()..range.high())
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            if let Some(values) = self.entries.remove(&key) {
                self.len -= values.len();
                moved.len += values.len();
                moved.entries.insert(key, values);
            }
        }
        moved
    }

    /// Absorbs every entry of `other` into this store.
    pub fn absorb(&mut self, other: LocalStore) {
        for (key, values) in other.entries {
            self.len += values.len();
            self.entries.entry(key).or_default().extend(values);
        }
    }

    /// Smallest stored key, if any.
    pub fn min_key(&self) -> Option<Key> {
        self.entries.keys().next().copied()
    }

    /// Largest stored key, if any.
    pub fn max_key(&self) -> Option<Key> {
        self.entries.keys().next_back().copied()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        self.entries
            .iter()
            .flat_map(|(k, vs)| vs.iter().map(move |v| (*k, *v)))
    }

    /// The median stored key — the key below which half of the stored
    /// *values* fall.  Used to pick data-migration boundaries during load
    /// balancing so each side ends up with about half the load.
    pub fn median_key(&self) -> Option<Key> {
        if self.is_empty() {
            return None;
        }
        let target = self.len / 2;
        let mut seen = 0usize;
        for (k, vs) in &self.entries {
            seen += vs.len();
            if seen > target {
                return Some(*k);
            }
        }
        self.max_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_len() {
        let mut store = LocalStore::new();
        assert!(store.is_empty());
        store.insert(5, 100);
        store.insert(5, 101);
        store.insert(9, 200);
        assert_eq!(store.len(), 3);
        assert_eq!(store.distinct_keys(), 2);
        assert_eq!(store.get(5), &[100, 101]);
        assert_eq!(store.get(9), &[200]);
        assert_eq!(store.get(7), &[] as &[Value]);
        assert!(store.contains_key(5));
        assert!(!store.contains_key(7));
    }

    #[test]
    fn remove_one_and_all() {
        let mut store = LocalStore::new();
        store.insert(1, 10);
        store.insert(1, 11);
        store.insert(2, 20);
        assert_eq!(store.remove_one(1), Some(11));
        assert_eq!(store.len(), 2);
        assert!(store.contains_key(1));
        assert_eq!(store.remove_one(1), Some(10));
        assert!(!store.contains_key(1));
        assert_eq!(store.remove_one(1), None);
        assert_eq!(store.remove_all(2), vec![20]);
        assert!(store.is_empty());
        assert_eq!(store.remove_all(2), Vec::<Value>::new());
    }

    #[test]
    fn scan_and_count_in_range() {
        let mut store = LocalStore::new();
        for k in [10u64, 20, 30, 40, 50] {
            store.insert(k, k * 2);
        }
        store.insert(30, 999);
        let hits = store.scan(KeyRange::new(20, 41));
        assert_eq!(hits, vec![(20, 40), (30, 60), (30, 999), (40, 80)]);
        assert_eq!(store.count_in(KeyRange::new(20, 41)), 4);
        assert_eq!(store.count_in(KeyRange::new(0, 10)), 0);
        assert!(store.scan(KeyRange::new(25, 25)).is_empty());
    }

    #[test]
    fn split_off_range_moves_entries() {
        let mut store = LocalStore::new();
        for k in 0..10u64 {
            store.insert(k, k);
        }
        let moved = store.split_off_range(KeyRange::new(3, 7));
        assert_eq!(moved.len(), 4);
        assert_eq!(store.len(), 6);
        assert!(moved.contains_key(3));
        assert!(moved.contains_key(6));
        assert!(!moved.contains_key(7));
        assert!(!store.contains_key(5));
        assert!(store.contains_key(7));
    }

    #[test]
    fn absorb_merges_duplicate_keys() {
        let mut a = LocalStore::new();
        a.insert(1, 10);
        a.insert(2, 20);
        let mut b = LocalStore::new();
        b.insert(2, 21);
        b.insert(3, 30);
        a.absorb(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), &[20, 21]);
        assert_eq!(a.get(3), &[30]);
    }

    #[test]
    fn min_max_and_median_key() {
        let mut store = LocalStore::new();
        assert_eq!(store.min_key(), None);
        assert_eq!(store.max_key(), None);
        assert_eq!(store.median_key(), None);
        for k in [5u64, 1, 9, 3, 7] {
            store.insert(k, 0);
        }
        assert_eq!(store.min_key(), Some(1));
        assert_eq!(store.max_key(), Some(9));
        assert_eq!(store.median_key(), Some(5));
    }

    #[test]
    fn iter_yields_key_order() {
        let mut store = LocalStore::new();
        store.insert(3, 1);
        store.insert(1, 2);
        store.insert(2, 3);
        let collected: Vec<_> = store.iter().collect();
        assert_eq!(collected, vec![(1, 2), (2, 3), (3, 1)]);
    }

    // Seeded stand-ins for the old proptest properties.
    #[test]
    fn prop_split_then_absorb_is_identity() {
        let mut rng = baton_net::SimRng::seeded(0x5709);
        for _ in 0..100 {
            let key_count = rng.index(200);
            let pivot = rng.uniform_u64(0, 1000);
            let mut store = LocalStore::new();
            for i in 0..key_count {
                store.insert(rng.uniform_u64(0, 1000), i as u64);
            }
            let original_len = store.len();
            let original: Vec<_> = store.iter().collect();
            let moved = store.split_off_range(KeyRange::new(0, pivot));
            // Every moved key is below the pivot, every kept key is at or
            // above it.
            assert!(moved.iter().all(|(k, _)| k < pivot));
            assert!(store.iter().all(|(k, _)| k >= pivot));
            assert_eq!(store.len() + moved.len(), original_len);
            let mut reunited = moved;
            reunited.absorb(store);
            assert_eq!(reunited.len(), original_len);
            let mut all: Vec<_> = reunited.iter().collect();
            let mut orig_sorted = original;
            all.sort_unstable();
            orig_sorted.sort_unstable();
            assert_eq!(all, orig_sorted);
        }
    }

    #[test]
    fn prop_count_matches_scan() {
        let mut rng = baton_net::SimRng::seeded(0xC007);
        for _ in 0..200 {
            let mut store = LocalStore::new();
            for _ in 0..rng.index(100) {
                store.insert(rng.uniform_u64(0, 100), 0);
            }
            let lo = rng.uniform_u64(0, 100);
            let hi = rng.uniform_u64(0, 100);
            let range = KeyRange::new(lo.min(hi), lo.max(hi));
            assert_eq!(store.count_in(range), store.scan(range).len());
        }
    }
}
