//! Deterministic bulk construction of an `N`-peer BATON overlay.
//!
//! [`BatonSystem::build`] grows the tree by `n - 1` sequential joins — the
//! construction the paper evaluates, and the right default because it
//! exercises the protocol.  But a harness that only needs *an* N-peer
//! overlay (scale rows, capacity planning, scenario warm-up) pays
//! `O(N log N)` protocol work plus allocator churn for state that is fully
//! determined up front.  This module builds the same *kind* of overlay
//! directly:
//!
//! * **Shape** — the complete binary tree on `n` nodes: every level full
//!   except the deepest, which fills left to right.  Complete trees satisfy
//!   the paper's Definition 1 balance criterion, and every non-leaf sits on
//!   a full level, so Theorem 1 (children ⇒ full routing tables) holds by
//!   construction.
//! * **Links** — parent/child/adjacent links and both sideways routing
//!   tables are computed arithmetically from position numbering; child
//!   knowledge in routing entries is exact.
//! * **Ranges** — one in-order traversal assigns each node an equal-width
//!   contiguous slice of the key domain, so the ranges partition the domain
//!   exactly as the adjacency chain requires.
//!
//! The result passes [`crate::validate`] in full and behaves identically to
//! a join-built overlay under every subsequent operation (see the
//! `bulk_equivalence` suite in `tests/`).  It is *not* byte-identical to a
//! join-built overlay — peers sit at different positions and ranges are
//! even rather than join-order-dependent — which is why the bulk path is
//! opt-in and never used where committed fixtures pin join-built output.
//!
//! No messages are charged: bulk construction models an out-of-band load,
//! not a protocol exchange.

use baton_net::PeerId;

use crate::config::BatonConfig;
use crate::error::Result;
use crate::node::BatonNode;
use crate::position::{Position, Side};
use crate::range::{Key, KeyRange};
use crate::routing::{NodeLink, RoutingEntry};
use crate::store::Value;
use crate::system::BatonSystem;

/// The level-order shape of the complete binary tree on `n` nodes: levels
/// `0 .. full_levels` are completely occupied and level `full_levels`
/// holds its leftmost `remainder` positions.
#[derive(Clone, Copy, Debug)]
struct Shape {
    full_levels: u32,
    remainder: u64,
}

impl Shape {
    fn of(n: usize) -> Self {
        let mut full_levels = 0u32;
        let mut placed = 0usize;
        while placed + (1usize << full_levels) <= n {
            placed += 1usize << full_levels;
            full_levels += 1;
        }
        Self {
            full_levels,
            remainder: (n - placed) as u64,
        }
    }

    #[inline]
    fn occupied(&self, position: Position) -> bool {
        position.level() < self.full_levels
            || (position.level() == self.full_levels && position.number() <= self.remainder)
    }

    /// Level-order index of a position: positions are numbered 0, 1, 2, …
    /// across levels top to bottom, left to right — the order peers are
    /// created in, so the index doubles as the peer-vector index.
    #[inline]
    fn level_order_index(position: Position) -> usize {
        ((1u64 << position.level()) - 1 + position.number() - 1) as usize
    }

    /// Inverse of [`Self::level_order_index`].
    #[inline]
    fn position_of_index(index: usize) -> Position {
        let k = index as u64 + 1;
        let level = k.ilog2();
        Position::new(level, k - (1u64 << level) + 1)
    }
}

impl BatonSystem {
    /// Builds an `n`-node overlay directly, without running the join
    /// protocol: the complete-binary-tree shape, all links and routing
    /// tables, and an equal-width partition of the key domain are computed
    /// in one pass.  The overlay satisfies every [`crate::validate`]
    /// invariant and supports all subsequent operations exactly like a
    /// join-built one.
    ///
    /// No messages are charged to the network statistics; stores start
    /// empty (load data through the normal insert path).
    pub fn bulk_build(config: BatonConfig, seed: u64, n: usize) -> Result<Self> {
        let mut system = Self::new(config, seed);
        if n == 0 {
            return Ok(system);
        }
        let shape = Shape::of(n);
        let domain = system.domain;
        let peers: Vec<PeerId> = (0..n).map(|_| system.net.add_peer()).collect();

        // Pass A: one explicit-stack in-order traversal of the occupied
        // positions yields each node's in-order rank (its slice of the key
        // domain) and the adjacency chain.
        let mut inorder: Vec<u32> = Vec::with_capacity(n);
        let mut rank_of: Vec<u32> = vec![0; n];
        let mut stack: Vec<Position> = Vec::new();
        let mut cursor = Some(Position::ROOT);
        while cursor.is_some() || !stack.is_empty() {
            while let Some(position) = cursor {
                stack.push(position);
                let left = position.left_child();
                cursor = shape.occupied(left).then_some(left);
            }
            let position = stack.pop().expect("cursor exhausted with non-empty stack");
            let index = Shape::level_order_index(position);
            rank_of[index] = inorder.len() as u32;
            inorder.push(index as u32);
            let right = position.right_child();
            cursor = shape.occupied(right).then_some(right);
        }

        // Equal-width range partition: in-order rank r manages
        // [bound(r), bound(r+1)), with bound(n) landing exactly on the
        // domain high so the slices tile the domain.
        let low = domain.low();
        let width = (domain.high() - domain.low()) as u128;
        let bound = |i: usize| low + ((width * i as u128) / n as u128) as u64;
        let ranges: Vec<KeyRange> = (0..n)
            .map(|index| {
                let r = rank_of[index] as usize;
                KeyRange::new(bound(r), bound(r + 1))
            })
            .collect();

        let link_at = |position: Position| {
            let index = Shape::level_order_index(position);
            NodeLink::new(peers[index], position, ranges[index])
        };
        let link_by_index = |index: u32| link_at(Shape::position_of_index(index as usize));
        let occupant = |position: Position| {
            shape
                .occupied(position)
                .then(|| peers[Shape::level_order_index(position)])
        };

        // Pass B: materialise every node with its links and tables, in
        // level order — which is ascending peer-id order, so registration
        // appends to the sorted peer list in O(1).
        for level in 0..=shape.full_levels {
            let count = if level < shape.full_levels {
                1u64 << level
            } else {
                shape.remainder
            };
            for number in 1..=count {
                let position = Position::new(level, number);
                let index = Shape::level_order_index(position);
                let mut node = BatonNode::new(peers[index], position, ranges[index]);
                if let Some(parent) = position.parent() {
                    node.parent = Some(link_at(parent));
                }
                for side in Side::BOTH {
                    let child = position.child(side);
                    if shape.occupied(child) {
                        node.set_child(side, Some(link_at(child)));
                    }
                }
                let rank = rank_of[index] as usize;
                if rank > 0 {
                    node.set_adjacent(Side::Left, Some(link_by_index(inorder[rank - 1])));
                }
                if let Some(&next) = inorder.get(rank + 1) {
                    node.set_adjacent(Side::Right, Some(link_by_index(next)));
                }
                for side in Side::BOTH {
                    for slot in 0..position.routing_table_size() {
                        let Some(target) = position.routing_neighbor(side, slot) else {
                            continue;
                        };
                        if !shape.occupied(target) {
                            continue;
                        }
                        let entry = RoutingEntry::with_children(
                            link_at(target),
                            occupant(target.left_child()),
                            occupant(target.right_child()),
                        );
                        node.table_mut(side).set(slot, entry);
                    }
                }
                system.occupy(position, peers[index]);
                system.register_node(peers[index], node);
            }
        }
        Ok(system)
    }

    /// Places `data` directly into the owning nodes' stores, charging no
    /// messages — the data-load analogue of
    /// [`bulk_build`](Self::bulk_build).  Each key lands at the node whose
    /// range contains it, the same node a routed insert reaches, so
    /// subsequent queries see exactly the dataset a routed load produces.
    /// Keys outside the domain are absorbed by the boundary nodes via the
    /// leftmost/rightmost expansion a routed insert performs (linked peers'
    /// recorded ranges are refreshed in place).
    ///
    /// Load balancing is not triggered: like bulk construction, a direct
    /// load models an out-of-band transfer, not a protocol exchange.
    pub fn load_direct(&mut self, data: &[(Key, Value)]) {
        let mut owners: Vec<(Key, PeerId)> = self
            .peer_list
            .iter()
            .filter_map(|&peer| {
                self.nodes
                    .get(peer.raw() as usize)
                    .and_then(Option::as_ref)
                    .map(|node| (node.range.low(), peer))
            })
            .collect();
        owners.sort_unstable();
        if owners.is_empty() {
            return;
        }
        // One stable sort, then a merge-style pass with a monotonic cursor:
        // every item of a node arrives while that node is cache-hot, instead
        // of a random binary search per item.  The stable sort keeps
        // duplicate keys in dataset order, so per-key value order matches a
        // routed load exactly.
        let mut sorted: Vec<(Key, Value)> = data.to_vec();
        sorted.sort_by_key(|&(key, _)| key);
        let mut cursor = 0usize;
        for &(key, value) in &sorted {
            while cursor + 1 < owners.len() && owners[cursor + 1].0 <= key {
                cursor += 1;
            }
            let (_, peer) = owners[cursor];
            if key < self.domain.low() {
                self.domain = self.domain.extend_low(key);
            } else if key >= self.domain.high() {
                self.domain = self.domain.extend_high(key + 1);
            }
            let Some(node) = self.node_opt_mut(peer) else {
                continue;
            };
            let expanded = if node.range.contains(key) {
                None
            } else {
                if key < node.range.low() {
                    node.range = node.range.extend_low(key);
                } else {
                    node.range = node.range.extend_high(key + 1);
                }
                Some((node.range, node.linked_peers()))
            };
            node.store.insert(key, value);
            if let Some((range, linked)) = expanded {
                for other in linked {
                    if let Some(other_node) = self.node_opt_mut(other) {
                        other_node.update_link_range(peer, range);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn shape_covers_all_sizes() {
        for n in 1usize..200 {
            let shape = Shape::of(n);
            let full: usize = (0..shape.full_levels).map(|l| 1usize << l).sum();
            assert_eq!(full + shape.remainder as usize, n, "n={n}");
            assert!((shape.remainder as usize) < (1usize << shape.full_levels));
        }
    }

    #[test]
    fn level_order_index_round_trips() {
        for index in 0..1000usize {
            let position = Shape::position_of_index(index);
            assert_eq!(Shape::level_order_index(position), index);
        }
    }

    #[test]
    fn bulk_built_overlays_satisfy_every_invariant() {
        for n in [0usize, 1, 2, 3, 4, 7, 8, 15, 16, 100, 1000] {
            let system = BatonSystem::bulk_build(BatonConfig::default(), 42, n).unwrap();
            assert_eq!(system.node_count(), n);
            validate(&system).unwrap_or_else(|e| panic!("bulk n={n} invalid: {e}"));
            assert_eq!(
                system.stats().total_sent(),
                0,
                "bulk build charged messages"
            );
        }
    }

    #[test]
    fn bulk_built_overlay_has_complete_tree_height() {
        for (n, height) in [(1usize, 1u32), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)] {
            let system = BatonSystem::bulk_build(BatonConfig::default(), 7, n).unwrap();
            assert_eq!(system.height(), height, "n={n}");
        }
    }

    #[test]
    fn direct_load_places_keys_at_the_routed_owner() {
        let mut direct = BatonSystem::bulk_build(BatonConfig::default(), 9, 100).unwrap();
        let mut routed = BatonSystem::bulk_build(BatonConfig::default(), 9, 100).unwrap();
        let data: Vec<(Key, Value)> = (0..500u64).map(|i| (1 + i * 1_999_993, i)).collect();
        direct.load_direct(&data);
        for &(k, v) in &data {
            routed.insert(k, v).unwrap();
        }
        assert_eq!(direct.total_items(), data.len());
        assert_eq!(
            direct.stats().total_sent(),
            0,
            "direct load charged messages"
        );
        validate(&direct).unwrap();
        for &(k, v) in &data {
            assert_eq!(
                direct.search_exact(k).unwrap().matches,
                routed.search_exact(k).unwrap().matches,
                "key {k} (value {v}) diverged between direct and routed load"
            );
        }
    }

    #[test]
    fn direct_load_expands_the_domain_like_a_routed_insert() {
        let config = BatonConfig::default().with_domain(KeyRange::new(1000, 2000));
        let mut system = BatonSystem::bulk_build(config, 4, 20).unwrap();
        system.load_direct(&[(5, 99), (5000, 1)]);
        assert_eq!(system.domain().low(), 5);
        assert_eq!(system.domain().high(), 5001);
        validate(&system).unwrap();
        assert_eq!(system.search_exact(5).unwrap().matches, vec![99]);
        assert_eq!(system.search_exact(5000).unwrap().matches, vec![1]);
    }

    #[test]
    fn bulk_built_overlay_supports_subsequent_operations() {
        let mut system = BatonSystem::bulk_build(BatonConfig::default(), 11, 64).unwrap();
        system.insert(123_456_789, 1).unwrap();
        let hit = system.search_exact(123_456_789).unwrap();
        assert_eq!(hit.matches, vec![1]);
        system.join_random().unwrap();
        let departing = system.peers()[10];
        system.leave(departing).unwrap();
        validate(&system).unwrap();
        assert_eq!(system.node_count(), 64);
    }
}
