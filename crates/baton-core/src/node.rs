//! State held by a single BATON peer.
//!
//! A [`BatonNode`] is everything one peer knows: its own position and key
//! range, its local data, and its links — parent, children, adjacent nodes
//! and the two sideways routing tables (paper §III).  All protocol logic
//! lives in [`crate::protocol`] and [`crate::system`]; this module is pure
//! state plus small queries over that state.

use baton_net::PeerId;

use crate::position::{Position, Side};
use crate::range::{Key, KeyRange};
use crate::routing::{NodeLink, RoutingTable};
use crate::store::LocalStore;

/// State of one peer in the BATON overlay.
#[derive(Clone, Debug)]
pub struct BatonNode {
    /// Physical address of this peer.
    pub peer: PeerId,
    /// Logical position in the balanced tree.
    pub position: Position,
    /// Key range this node manages directly.
    pub range: KeyRange,
    /// Link to the parent node (`None` only for the root).
    pub parent: Option<NodeLink>,
    /// Link to the left child, if present.
    pub left_child: Option<NodeLink>,
    /// Link to the right child, if present.
    pub right_child: Option<NodeLink>,
    /// Link to the left adjacent node (in-order predecessor).
    pub left_adjacent: Option<NodeLink>,
    /// Link to the right adjacent node (in-order successor).
    pub right_adjacent: Option<NodeLink>,
    /// Left sideways routing table.
    pub left_table: RoutingTable,
    /// Right sideways routing table.
    pub right_table: RoutingTable,
    /// Local index entries (keys inside `range`).
    pub store: LocalStore,
}

impl BatonNode {
    /// Creates a node at `position` managing `range`, with no links yet.
    pub fn new(peer: PeerId, position: Position, range: KeyRange) -> Self {
        Self {
            peer,
            position,
            range,
            parent: None,
            left_child: None,
            right_child: None,
            left_adjacent: None,
            right_adjacent: None,
            left_table: RoutingTable::new(Side::Left, position),
            right_table: RoutingTable::new(Side::Right, position),
            store: LocalStore::new(),
        }
    }

    /// Approximate resident bytes of this node's state: the struct itself
    /// plus the heap behind its routing tables and local store.
    pub fn estimated_state_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
            + self.left_table.estimated_heap_bytes()
            + self.right_table.estimated_heap_bytes()
            + self.store.estimated_heap_bytes()
    }

    /// The link other nodes should hold for this node, reflecting its
    /// current position and range.
    pub fn link(&self) -> NodeLink {
        NodeLink::new(self.peer, self.position, self.range)
    }

    /// Level of this node in the tree.
    pub fn level(&self) -> u32 {
        self.position.level()
    }

    /// `true` if this node currently occupies the root position.
    pub fn is_root(&self) -> bool {
        self.position.is_root()
    }

    /// `true` if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.left_child.is_none() && self.right_child.is_none()
    }

    /// Number of children (0, 1 or 2).
    pub fn child_count(&self) -> usize {
        usize::from(self.left_child.is_some()) + usize::from(self.right_child.is_some())
    }

    /// Child link on `side`.
    pub fn child(&self, side: Side) -> Option<&NodeLink> {
        match side {
            Side::Left => self.left_child.as_ref(),
            Side::Right => self.right_child.as_ref(),
        }
    }

    /// Sets (or clears) the child link on `side`.
    pub fn set_child(&mut self, side: Side, link: Option<NodeLink>) {
        match side {
            Side::Left => self.left_child = link,
            Side::Right => self.right_child = link,
        }
    }

    /// Adjacent link on `side`.
    pub fn adjacent(&self, side: Side) -> Option<&NodeLink> {
        match side {
            Side::Left => self.left_adjacent.as_ref(),
            Side::Right => self.right_adjacent.as_ref(),
        }
    }

    /// Sets (or clears) the adjacent link on `side`.
    pub fn set_adjacent(&mut self, side: Side, link: Option<NodeLink>) {
        match side {
            Side::Left => self.left_adjacent = link,
            Side::Right => self.right_adjacent = link,
        }
    }

    /// Routing table on `side`.
    pub fn table(&self, side: Side) -> &RoutingTable {
        match side {
            Side::Left => &self.left_table,
            Side::Right => &self.right_table,
        }
    }

    /// Mutable routing table on `side`.
    pub fn table_mut(&mut self, side: Side) -> &mut RoutingTable {
        match side {
            Side::Left => &mut self.left_table,
            Side::Right => &mut self.right_table,
        }
    }

    /// `true` if both sideways routing tables are full — the precondition of
    /// Theorem 1 for accepting a child and the acceptance test of
    /// Algorithm 1.
    pub fn tables_full(&self) -> bool {
        self.left_table.is_full() && self.right_table.is_full()
    }

    /// `true` if Algorithm 1 lets this node accept a new child right now:
    /// both routing tables full and fewer than two children.
    pub fn can_accept_child(&self) -> bool {
        self.tables_full() && self.child_count() < 2
    }

    /// The side on which a new child would be attached (left preferred),
    /// or `None` if both child positions are occupied.
    pub fn free_child_side(&self) -> Option<Side> {
        if self.left_child.is_none() {
            Some(Side::Left)
        } else if self.right_child.is_none() {
            Some(Side::Right)
        } else {
            None
        }
    }

    /// `true` if a leaf may depart directly without disturbing balance:
    /// it has no children and no neighbour in either routing table has a
    /// child (paper §III-B).
    pub fn can_leave_without_replacement(&self) -> bool {
        self.is_leaf()
            && !self.left_table.any_neighbor_has_child()
            && !self.right_table.any_neighbor_has_child()
    }

    /// Number of data items currently stored.
    pub fn load(&self) -> usize {
        self.store.len()
    }

    /// `true` if `key` belongs to this node's range.
    pub fn owns_key(&self, key: Key) -> bool {
        self.range.contains(key)
    }

    /// Every peer this node holds a link to (parent, children, adjacents and
    /// routing-table targets), without duplicates.  These are exactly the
    /// peers that must be notified when this node's range or address
    /// changes.
    pub fn linked_peers(&self) -> Vec<PeerId> {
        let mut peers = Vec::new();
        let mut push = |p: PeerId| {
            if !peers.contains(&p) {
                peers.push(p);
            }
        };
        if let Some(l) = &self.parent {
            push(l.peer);
        }
        if let Some(l) = &self.left_child {
            push(l.peer);
        }
        if let Some(l) = &self.right_child {
            push(l.peer);
        }
        if let Some(l) = &self.left_adjacent {
            push(l.peer);
        }
        if let Some(l) = &self.right_adjacent {
            push(l.peer);
        }
        for (_, e) in self.left_table.iter() {
            push(e.link.peer);
        }
        for (_, e) in self.right_table.iter() {
            push(e.link.peer);
        }
        peers
    }

    /// Replaces every reference to `old` (in parent/child/adjacent links and
    /// routing tables) with a link to `new_link`.  Returns how many links
    /// were rewritten.  Used when a replacement node takes over a departed
    /// node's position (paper §III-B) — "all nodes with links to x must be
    /// informed to change the physical address of the link to point to y".
    pub fn rewrite_links(&mut self, old: PeerId, new_link: NodeLink) -> usize {
        let mut rewritten = 0;
        let mut rewrite = |slot: &mut Option<NodeLink>| {
            if let Some(l) = slot {
                if l.peer == old {
                    *l = new_link;
                    rewritten += 1;
                }
            }
        };
        rewrite(&mut self.parent);
        rewrite(&mut self.left_child);
        rewrite(&mut self.right_child);
        rewrite(&mut self.left_adjacent);
        rewrite(&mut self.right_adjacent);
        for side in Side::BOTH {
            for (_, e) in self.table_mut(side).iter_mut() {
                if e.link.peer == old {
                    e.link = new_link;
                    rewritten += 1;
                }
                if e.left_child == Some(old) {
                    e.left_child = Some(new_link.peer);
                    rewritten += 1;
                }
                if e.right_child == Some(old) {
                    e.right_child = Some(new_link.peer);
                    rewritten += 1;
                }
            }
        }
        rewritten
    }

    /// Updates the recorded range on every link that points at `peer`.
    /// Returns how many links were updated.
    pub fn update_link_range(&mut self, peer: PeerId, range: KeyRange) -> usize {
        let mut updated = 0;
        let mut touch = |slot: &mut Option<NodeLink>| {
            if let Some(l) = slot {
                if l.peer == peer {
                    l.range = range;
                    updated += 1;
                }
            }
        };
        touch(&mut self.parent);
        touch(&mut self.left_child);
        touch(&mut self.right_child);
        touch(&mut self.left_adjacent);
        touch(&mut self.right_adjacent);
        for side in Side::BOTH {
            for (_, e) in self.table_mut(side).iter_mut() {
                if e.link.peer == peer {
                    e.link.range = range;
                    updated += 1;
                }
            }
        }
        updated
    }

    /// Updates the child knowledge recorded for `neighbor` in both routing
    /// tables.  Returns `true` if an entry was found and updated.
    pub fn update_neighbor_children(
        &mut self,
        neighbor: PeerId,
        left_child: Option<PeerId>,
        right_child: Option<PeerId>,
    ) -> bool {
        let mut updated = false;
        for side in Side::BOTH {
            for (_, e) in self.table_mut(side).iter_mut() {
                if e.link.peer == neighbor {
                    e.left_child = left_child;
                    e.right_child = right_child;
                    updated = true;
                }
            }
        }
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingEntry;

    fn node(peer: u32, level: u32, number: u64) -> BatonNode {
        BatonNode::new(
            PeerId(peer),
            Position::new(level, number),
            KeyRange::new(0, 100),
        )
    }

    fn link_to(n: &BatonNode) -> NodeLink {
        n.link()
    }

    #[test]
    fn fresh_node_is_a_rootless_leaf() {
        let n = node(1, 2, 3);
        assert!(n.is_leaf());
        assert_eq!(n.child_count(), 0);
        assert!(!n.is_root());
        assert_eq!(n.level(), 2);
        assert_eq!(n.load(), 0);
        assert!(n.owns_key(50));
        assert!(!n.owns_key(100));
        assert_eq!(n.free_child_side(), Some(Side::Left));
        assert!(n.linked_peers().is_empty());
    }

    #[test]
    fn root_node_tables_are_trivially_full() {
        let root = node(0, 0, 1);
        assert!(root.is_root());
        assert!(root.tables_full());
        assert!(root.can_accept_child());
    }

    #[test]
    fn child_and_adjacent_accessors() {
        let mut n = node(1, 1, 1);
        let c = node(2, 2, 1);
        let a = node(3, 0, 1);
        n.set_child(Side::Left, Some(link_to(&c)));
        n.set_adjacent(Side::Right, Some(link_to(&a)));
        assert_eq!(n.child(Side::Left).unwrap().peer, PeerId(2));
        assert!(n.child(Side::Right).is_none());
        assert_eq!(n.adjacent(Side::Right).unwrap().peer, PeerId(3));
        assert!(n.adjacent(Side::Left).is_none());
        assert_eq!(n.child_count(), 1);
        assert!(!n.is_leaf());
        assert_eq!(n.free_child_side(), Some(Side::Right));
        n.set_child(Side::Right, Some(link_to(&a)));
        assert_eq!(n.free_child_side(), None);
        n.set_child(Side::Left, None);
        assert_eq!(n.free_child_side(), Some(Side::Left));
    }

    #[test]
    fn can_accept_child_requires_full_tables() {
        // Node at level 1 number 1: right table has one valid slot (number 2).
        let mut n = node(1, 1, 1);
        assert!(!n.can_accept_child(), "right table not yet full");
        let sibling = node(2, 1, 2);
        n.right_table.set(0, RoutingEntry::new(link_to(&sibling)));
        assert!(n.can_accept_child());
        // Give it two children: still full tables but no capacity.
        n.set_child(Side::Left, Some(link_to(&sibling)));
        n.set_child(Side::Right, Some(link_to(&sibling)));
        assert!(!n.can_accept_child());
    }

    #[test]
    fn can_leave_without_replacement_logic() {
        let mut n = node(1, 2, 2);
        // Leaf, no routing entries: may depart.
        assert!(n.can_leave_without_replacement());
        // Neighbour with a child: must find a replacement.
        let neighbor = node(2, 2, 3);
        n.right_table.set(
            0,
            RoutingEntry::with_children(link_to(&neighbor), Some(PeerId(9)), None),
        );
        assert!(!n.can_leave_without_replacement());
        // Non-leaf can never depart directly.
        let mut m = node(3, 2, 2);
        m.set_child(Side::Left, Some(link_to(&neighbor)));
        assert!(!m.can_leave_without_replacement());
    }

    #[test]
    fn linked_peers_deduplicates() {
        let mut n = node(1, 2, 2);
        let other = node(5, 2, 1);
        let other_link = link_to(&other);
        n.parent = Some(other_link);
        n.left_adjacent = Some(other_link);
        n.left_table.set(0, RoutingEntry::new(other_link));
        assert_eq!(n.linked_peers(), vec![PeerId(5)]);
    }

    #[test]
    fn rewrite_links_replaces_every_reference() {
        let mut n = node(1, 2, 2);
        let old = node(5, 2, 1);
        let old_link = link_to(&old);
        n.parent = Some(old_link);
        n.left_adjacent = Some(old_link);
        n.left_table.set(0, RoutingEntry::new(old_link));
        let replacement = NodeLink::new(PeerId(9), Position::new(2, 1), KeyRange::new(0, 10));
        let rewritten = n.rewrite_links(PeerId(5), replacement);
        assert_eq!(rewritten, 3);
        assert_eq!(n.parent.unwrap().peer, PeerId(9));
        assert_eq!(n.left_adjacent.unwrap().peer, PeerId(9));
        assert_eq!(n.left_table.entry(0).unwrap().link.peer, PeerId(9));
        // No references to the old peer remain.
        assert_eq!(n.rewrite_links(PeerId(5), replacement), 0);
    }

    #[test]
    fn rewrite_links_updates_child_knowledge_in_tables() {
        let mut n = node(1, 2, 2);
        let neighbor = node(5, 2, 1);
        n.left_table.set(
            0,
            RoutingEntry::with_children(link_to(&neighbor), Some(PeerId(7)), None),
        );
        let replacement = NodeLink::new(PeerId(8), Position::new(3, 1), KeyRange::new(0, 10));
        let rewritten = n.rewrite_links(PeerId(7), replacement);
        assert_eq!(rewritten, 1);
        assert_eq!(n.left_table.entry(0).unwrap().left_child, Some(PeerId(8)));
    }

    #[test]
    fn update_link_range_touches_all_link_kinds() {
        let mut n = node(1, 2, 2);
        let other = node(5, 2, 1);
        let other_link = link_to(&other);
        n.parent = Some(other_link);
        n.right_adjacent = Some(other_link);
        n.left_table.set(0, RoutingEntry::new(other_link));
        let updated = n.update_link_range(PeerId(5), KeyRange::new(40, 60));
        assert_eq!(updated, 3);
        assert_eq!(n.parent.unwrap().range, KeyRange::new(40, 60));
        assert_eq!(
            n.left_table.entry(0).unwrap().link.range,
            KeyRange::new(40, 60)
        );
        assert_eq!(n.update_link_range(PeerId(99), KeyRange::new(0, 1)), 0);
    }

    #[test]
    fn update_neighbor_children_sets_table_knowledge() {
        let mut n = node(1, 2, 2);
        let neighbor = node(5, 2, 3);
        n.right_table.set(0, RoutingEntry::new(link_to(&neighbor)));
        assert!(!n.right_table.entry(0).unwrap().has_any_child());
        assert!(n.update_neighbor_children(PeerId(5), Some(PeerId(8)), None));
        assert_eq!(n.right_table.entry(0).unwrap().left_child, Some(PeerId(8)));
        assert!(!n.update_neighbor_children(PeerId(99), None, None));
    }

    #[test]
    fn node_link_reflects_current_state() {
        let n = node(4, 3, 5);
        let l = n.link();
        assert_eq!(l.peer, PeerId(4));
        assert_eq!(l.position, Position::new(3, 5));
        assert_eq!(l.range, KeyRange::new(0, 100));
    }
}
