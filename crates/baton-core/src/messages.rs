//! The BATON wire protocol.
//!
//! Every hop of every algorithm in the paper is modelled as one
//! [`BatonMessage`] sent through the [`baton_net::SimNetwork`].  The message
//! kinds mirror the paper's vocabulary: `JOIN` and its forwarding
//! (Algorithm 1), `FINDREPLACEMENT` (Algorithm 2), `LEAVE` notifications,
//! the exact-match and range search requests (§IV-A/B), data insertion and
//! deletion (§IV-C), routing-table maintenance traffic, restructuring
//! notifications (§III-E) and load-balancing traffic (§IV-D).

use baton_net::{NetMessage, PeerId};

use crate::position::{Position, Side};
use crate::range::{Key, KeyRange};
use crate::routing::NodeLink;
use crate::store::Value;

/// A protocol message exchanged between BATON peers.
#[derive(Clone, Debug)]
pub enum BatonMessage {
    // ----- node join (paper §III-A, Algorithm 1) -----
    /// A new peer asks `to` to find it a place in the tree.
    JoinRequest {
        /// The peer that wants to join.
        joiner: PeerId,
    },
    /// A node accepts the joiner as its child and hands over half its range.
    JoinAccept {
        /// The accepting parent.
        parent: NodeLink,
        /// Side on which the joiner is attached.
        side: Side,
        /// Range assigned to the new child.
        range: KeyRange,
    },

    // ----- node departure (paper §III-B, Algorithm 2) -----
    /// A node that wishes to leave asks `to` to find a replacement leaf.
    FindReplacement {
        /// The departing node.
        departing: PeerId,
        /// Position of the departing node (the spot to fill).
        position: Position,
    },
    /// Notification that a leaf is departing; receivers drop their links.
    LeaveNotify {
        /// The departing peer.
        departing: PeerId,
    },
    /// The departing node transfers its content to its parent.
    LeaveTransfer {
        /// Range handed over.
        range: KeyRange,
        /// Number of data items handed over.
        items: usize,
    },
    /// A replacement node announces it now occupies a departed node's
    /// position; receivers repoint their links.
    ReplacementAnnounce {
        /// The peer being replaced.
        old: PeerId,
        /// Link to the replacement.
        new_link: NodeLink,
    },

    // ----- failure handling (paper §III-C) -----
    /// A peer reports that `failed` is unreachable to the failed node's
    /// parent.
    FailureReport {
        /// The unreachable peer.
        failed: PeerId,
    },
    /// The parent asks a neighbour's child for the links it needs to
    /// regenerate the failed node's routing tables.
    TableRegenQuery {
        /// Position whose tables are being regenerated.
        position: Position,
    },

    // ----- search (paper §IV-A/B) -----
    /// Exact-match query for `key`, forwarded towards its owner.
    SearchExact {
        /// Key being searched.
        key: Key,
        /// Peer that issued the query and expects the answer.
        issuer: PeerId,
    },
    /// Range query, forwarded until a node intersecting `range` is found,
    /// then spread along adjacent links.
    SearchRange {
        /// Range being searched.
        range: KeyRange,
        /// Peer that issued the query.
        issuer: PeerId,
    },
    /// Answer (or partial answer) returned to the issuer.
    SearchAnswer {
        /// Number of matching items in this partial answer.
        matches: usize,
    },

    // ----- data maintenance (paper §IV-C) -----
    /// Insert `value` under `key`, forwarded towards the key's owner.
    Insert {
        /// Key to insert.
        key: Key,
        /// Value to insert.
        value: Value,
    },
    /// Delete one item under `key`, forwarded towards the key's owner.
    Delete {
        /// Key to delete.
        key: Key,
    },

    // ----- routing-table maintenance (paper §III-A/B) -----
    /// A parent informs its neighbours that it gained (or lost) a child so
    /// they can update the child knowledge in their tables.
    ChildUpdate {
        /// The node whose children changed.
        node: PeerId,
        /// New left child, if any.
        left_child: Option<PeerId>,
        /// New right child, if any.
        right_child: Option<PeerId>,
    },
    /// A neighbour (or its child) supplies the information a new node needs
    /// to fill one routing-table slot.
    TableFill {
        /// Slot index being filled.
        index: usize,
        /// Side of the table being filled.
        side: Side,
        /// Entry contents.
        link: NodeLink,
    },
    /// A node informs a linked node that its managed range changed.
    RangeUpdate {
        /// The node whose range changed.
        node: PeerId,
        /// Its new range.
        range: KeyRange,
    },
    /// A node informs a linked node that its adjacent link must change.
    AdjacentUpdate {
        /// Which side of the receiver's adjacency changes.
        side: Side,
        /// The new adjacent node.
        new_adjacent: NodeLink,
    },

    // ----- restructuring (paper §III-E) -----
    /// A node instructs another to take over a (possibly new) position.
    RestructureShift {
        /// Position the receiver must occupy.
        new_position: Position,
    },

    // ----- load balancing (paper §IV-D) -----
    /// An overloaded node asks an adjacent node to take over part of its
    /// range and data.
    BalanceMigrate {
        /// Range migrating to the receiver.
        range: KeyRange,
        /// Number of items migrating.
        items: usize,
    },
    /// An overloaded leaf asks a lightly loaded leaf to leave its position
    /// and re-join as the overloaded node's child.
    BalanceRequestRejoin {
        /// The overloaded node.
        overloaded: PeerId,
    },
}

impl NetMessage for BatonMessage {
    fn kind(&self) -> &'static str {
        match self {
            BatonMessage::JoinRequest { .. } => "join.request",
            BatonMessage::JoinAccept { .. } => "join.accept",
            BatonMessage::FindReplacement { .. } => "leave.find_replacement",
            BatonMessage::LeaveNotify { .. } => "leave.notify",
            BatonMessage::LeaveTransfer { .. } => "leave.transfer",
            BatonMessage::ReplacementAnnounce { .. } => "leave.replacement_announce",
            BatonMessage::FailureReport { .. } => "failure.report",
            BatonMessage::TableRegenQuery { .. } => "failure.table_regen",
            BatonMessage::SearchExact { .. } => "search.exact",
            BatonMessage::SearchRange { .. } => "search.range",
            BatonMessage::SearchAnswer { .. } => "search.answer",
            BatonMessage::Insert { .. } => "data.insert",
            BatonMessage::Delete { .. } => "data.delete",
            BatonMessage::ChildUpdate { .. } => "table.child_update",
            BatonMessage::TableFill { .. } => "table.fill",
            BatonMessage::RangeUpdate { .. } => "table.range_update",
            BatonMessage::AdjacentUpdate { .. } => "table.adjacent_update",
            BatonMessage::RestructureShift { .. } => "restructure.shift",
            BatonMessage::BalanceMigrate { .. } => "balance.migrate",
            BatonMessage::BalanceRequestRejoin { .. } => "balance.request_rejoin",
        }
    }

    fn approximate_size(&self) -> usize {
        // Rough wire sizes: addressing + payload fields, mirroring what the
        // codec would serialize.  Only used for byte-level accounting.
        match self {
            BatonMessage::JoinRequest { .. } => 24,
            BatonMessage::JoinAccept { .. } => 56,
            BatonMessage::FindReplacement { .. } => 36,
            BatonMessage::LeaveNotify { .. } => 24,
            BatonMessage::LeaveTransfer { .. } => 32,
            BatonMessage::ReplacementAnnounce { .. } => 56,
            BatonMessage::FailureReport { .. } => 24,
            BatonMessage::TableRegenQuery { .. } => 28,
            BatonMessage::SearchExact { .. } => 32,
            BatonMessage::SearchRange { .. } => 40,
            BatonMessage::SearchAnswer { .. } => 24,
            BatonMessage::Insert { .. } => 32,
            BatonMessage::Delete { .. } => 24,
            BatonMessage::ChildUpdate { .. } => 40,
            BatonMessage::TableFill { .. } => 64,
            BatonMessage::RangeUpdate { .. } => 40,
            BatonMessage::AdjacentUpdate { .. } => 56,
            BatonMessage::RestructureShift { .. } => 28,
            BatonMessage::BalanceMigrate { .. } => 40,
            BatonMessage::BalanceRequestRejoin { .. } => 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::KeyRange;

    #[test]
    fn kinds_are_distinct_per_variant_family() {
        let msgs: Vec<BatonMessage> = vec![
            BatonMessage::JoinRequest { joiner: PeerId(1) },
            BatonMessage::FindReplacement {
                departing: PeerId(1),
                position: Position::ROOT,
            },
            BatonMessage::SearchExact {
                key: 5,
                issuer: PeerId(1),
            },
            BatonMessage::SearchRange {
                range: KeyRange::new(0, 10),
                issuer: PeerId(1),
            },
            BatonMessage::Insert { key: 1, value: 2 },
            BatonMessage::Delete { key: 1 },
            BatonMessage::ChildUpdate {
                node: PeerId(1),
                left_child: None,
                right_child: None,
            },
            BatonMessage::RestructureShift {
                new_position: Position::ROOT,
            },
            BatonMessage::BalanceMigrate {
                range: KeyRange::new(0, 10),
                items: 3,
            },
        ];
        let kinds: Vec<&str> = msgs.iter().map(|m| m.kind()).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            kinds.len(),
            "kinds must be distinct: {kinds:?}"
        );
    }

    #[test]
    fn kind_prefixes_group_by_mechanism() {
        assert!(BatonMessage::JoinRequest { joiner: PeerId(0) }
            .kind()
            .starts_with("join."));
        assert!(BatonMessage::LeaveNotify {
            departing: PeerId(0)
        }
        .kind()
        .starts_with("leave."));
        assert!(BatonMessage::SearchExact {
            key: 0,
            issuer: PeerId(0)
        }
        .kind()
        .starts_with("search."));
        assert!(BatonMessage::Insert { key: 0, value: 0 }
            .kind()
            .starts_with("data."));
        assert!(BatonMessage::RangeUpdate {
            node: PeerId(0),
            range: KeyRange::new(0, 1)
        }
        .kind()
        .starts_with("table."));
    }

    #[test]
    fn approximate_sizes_are_positive() {
        let msgs = [
            BatonMessage::JoinRequest { joiner: PeerId(1) },
            BatonMessage::SearchAnswer { matches: 0 },
            BatonMessage::LeaveTransfer {
                range: KeyRange::new(0, 1),
                items: 0,
            },
        ];
        for m in msgs {
            assert!(m.approximate_size() > 0);
        }
    }
}
