//! Links and sideways routing tables.
//!
//! Each BATON node keeps a link to its parent, each child, each adjacent
//! node, and two *sideways routing tables* with entries to nodes at the same
//! level whose number differs by a power of two (paper §III).  Every link
//! records the key range managed by its target (paper §IV: "We record for
//! each link the range of values managed by the node at the target of the
//! link"), and routing-table entries additionally record whether the target
//! currently has children — the information the join algorithm (Algorithm 1)
//! and Theorem 1 rely on.

use baton_net::PeerId;

use crate::position::{Position, Side};
use crate::range::KeyRange;

/// A link to another node: the target's address, logical position and the
/// key range it was last known to manage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeLink {
    /// Physical address of the target peer.
    pub peer: PeerId,
    /// Logical position of the target in the tree.
    pub position: Position,
    /// Key range managed by the target, as last advertised.
    pub range: KeyRange,
}

impl NodeLink {
    /// Creates a link.
    pub fn new(peer: PeerId, position: Position, range: KeyRange) -> Self {
        Self {
            peer,
            position,
            range,
        }
    }
}

/// One entry of a sideways routing table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutingEntry {
    /// Link to the neighbour node.
    pub link: NodeLink,
    /// Peer occupying the neighbour's left child position, if known.
    pub left_child: Option<PeerId>,
    /// Peer occupying the neighbour's right child position, if known.
    pub right_child: Option<PeerId>,
}

impl RoutingEntry {
    /// Creates an entry with no known children.
    pub fn new(link: NodeLink) -> Self {
        Self {
            link,
            left_child: None,
            right_child: None,
        }
    }

    /// Creates an entry with explicit child knowledge.
    pub fn with_children(
        link: NodeLink,
        left_child: Option<PeerId>,
        right_child: Option<PeerId>,
    ) -> Self {
        Self {
            link,
            left_child,
            right_child,
        }
    }

    /// `true` if the target is known to have at least one child.
    pub fn has_any_child(&self) -> bool {
        self.left_child.is_some() || self.right_child.is_some()
    }

    /// `true` if the target is known to have both children.
    pub fn has_both_children(&self) -> bool {
        self.left_child.is_some() && self.right_child.is_some()
    }
}

/// A sideways routing table (left or right) of one node.
///
/// Slot `i` refers to the position at the same level whose number differs
/// from the owner's by `2^i`.  A slot whose target position falls outside
/// `1 ..= 2^level` is *invalid* and never counted towards fullness; a slot
/// whose target position is in range but currently unoccupied holds `None`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingTable {
    side: Side,
    owner: Position,
    slots: Vec<Option<RoutingEntry>>,
}

impl RoutingTable {
    /// Heap bytes behind the table's slot vector.  Part of the perf
    /// harness's bytes-per-peer estimate.
    pub fn estimated_heap_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Option<RoutingEntry>>()) as u64
    }

    /// Creates an empty table for a node at `owner` on the given `side`.
    pub fn new(side: Side, owner: Position) -> Self {
        Self {
            side,
            owner,
            slots: vec![None; owner.routing_table_size()],
        }
    }

    /// Which side this table covers.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Position of the node owning this table.
    pub fn owner(&self) -> Position {
        self.owner
    }

    /// Number of slots (valid or not) in the table: equals the owner's level.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Target position of slot `index`, or `None` if that slot is invalid
    /// (outside the level's number range).
    pub fn target_position(&self, index: usize) -> Option<Position> {
        self.owner.routing_neighbor(self.side, index)
    }

    /// Iterates over the indices of the slots whose target position is in
    /// range, without allocating — the form the protocol hot loops use.
    pub fn valid_slot_indices(&self) -> impl DoubleEndedIterator<Item = usize> + '_ {
        (0..self.slot_count()).filter(|&i| self.target_position(i).is_some())
    }

    /// The entry in slot `index`, if set.
    pub fn entry(&self, index: usize) -> Option<&RoutingEntry> {
        self.slots.get(index).and_then(|s| s.as_ref())
    }

    /// Mutable access to the entry in slot `index`.
    pub fn entry_mut(&mut self, index: usize) -> Option<&mut RoutingEntry> {
        self.slots.get_mut(index).and_then(|s| s.as_mut())
    }

    /// Sets slot `index` to `entry`.
    ///
    /// # Panics
    /// Panics if the slot is invalid for the owner's position, or if the
    /// entry's position does not match the slot's target position.
    pub fn set(&mut self, index: usize, entry: RoutingEntry) {
        let target = self
            .target_position(index)
            .unwrap_or_else(|| panic!("slot {index} is invalid for owner {:?}", self.owner));
        assert_eq!(
            entry.link.position, target,
            "entry position {:?} does not match slot target {:?}",
            entry.link.position, target
        );
        self.slots[index] = Some(entry);
    }

    /// Clears slot `index`.
    pub fn clear(&mut self, index: usize) {
        if let Some(slot) = self.slots.get_mut(index) {
            *slot = None;
        }
    }

    /// Removes any entry pointing at `peer`, returning how many were removed.
    pub fn remove_peer(&mut self, peer: PeerId) -> usize {
        let mut removed = 0;
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|e| e.link.peer == peer) {
                *slot = None;
                removed += 1;
            }
        }
        removed
    }

    /// `true` if every *valid* slot holds an entry (the fullness condition
    /// of Theorem 1 and Algorithm 1).
    pub fn is_full(&self) -> bool {
        self.valid_slot_indices().all(|i| self.slots[i].is_some())
    }

    /// Number of slots currently holding an entry.
    pub fn occupied_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over `(index, entry)` for every occupied slot, nearest
    /// neighbour first (reversible: `.rev()` walks farthest first, which is
    /// how the search hot path builds its greedy candidate order).
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (usize, &RoutingEntry)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
    }

    /// Iterates mutably over `(index, entry)` for every occupied slot,
    /// nearest neighbour first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut RoutingEntry)> + '_ {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|e| (i, e)))
    }

    /// The entry pointing at `position`, if present.
    pub fn entry_for_position(&self, position: Position) -> Option<(usize, &RoutingEntry)> {
        self.iter().find(|(_, e)| e.link.position == position)
    }

    /// The entry pointing at `peer`, if present.
    pub fn entry_for_peer(&self, peer: PeerId) -> Option<(usize, &RoutingEntry)> {
        self.iter().find(|(_, e)| e.link.peer == peer)
    }

    /// The farthest occupied entry (largest index), if any.  Used by the
    /// search algorithms which greedily jump as far as possible.
    pub fn farthest(&self) -> Option<(usize, &RoutingEntry)> {
        self.iter().next_back()
    }

    /// The farthest occupied entry satisfying `pred`.
    pub fn farthest_matching<F>(&self, mut pred: F) -> Option<(usize, &RoutingEntry)>
    where
        F: FnMut(&RoutingEntry) -> bool,
    {
        self.iter().rev().find(|(_, e)| pred(e))
    }

    /// The nearest occupied entry satisfying `pred`.
    pub fn nearest_matching<F>(&self, mut pred: F) -> Option<(usize, &RoutingEntry)>
    where
        F: FnMut(&RoutingEntry) -> bool,
    {
        self.iter().find(|(_, e)| pred(e))
    }

    /// First occupied entry whose target lacks at least one child (used by
    /// Algorithm 1 to redirect a join towards a node that can still accept
    /// children).
    pub fn first_without_both_children(&self) -> Option<(usize, &RoutingEntry)> {
        self.nearest_matching(|e| !e.has_both_children())
    }

    /// First occupied entry whose target has at least one child (used by
    /// Algorithm 2 to find a replacement candidate deeper in the tree).
    pub fn first_with_a_child(&self) -> Option<(usize, &RoutingEntry)> {
        self.nearest_matching(RoutingEntry::has_any_child)
    }

    /// `true` if any occupied entry's target is known to have a child
    /// (the condition deciding whether a leaf may depart directly,
    /// paper §III-B).
    pub fn any_neighbor_has_child(&self) -> bool {
        self.iter().any(|(_, e)| e.has_any_child())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(peer: u32, pos: Position) -> NodeLink {
        NodeLink::new(PeerId(peer), pos, KeyRange::new(0, 1))
    }

    #[test]
    fn table_slot_geometry_matches_position_math() {
        // Owner: level 3, number 1 (the paper's node h).
        let owner = Position::new(3, 1);
        let left = RoutingTable::new(Side::Left, owner);
        let right = RoutingTable::new(Side::Right, owner);
        assert_eq!(left.slot_count(), 3);
        assert_eq!(right.slot_count(), 3);
        assert_eq!(left.valid_slot_indices().count(), 0);
        assert_eq!(
            right.valid_slot_indices().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(right.target_position(0), Some(Position::new(3, 2)));
        assert_eq!(right.target_position(2), Some(Position::new(3, 5)));
        // A table with no valid slots is trivially full.
        assert!(left.is_full());
        assert!(!right.is_full());
    }

    #[test]
    fn set_and_get_entries() {
        let owner = Position::new(2, 2);
        let mut table = RoutingTable::new(Side::Right, owner);
        let target = Position::new(2, 3);
        table.set(0, RoutingEntry::new(link(7, target)));
        assert_eq!(table.occupied_count(), 1);
        assert_eq!(table.entry(0).unwrap().link.peer, PeerId(7));
        assert_eq!(table.entry(1), None);
        assert_eq!(table.entry_for_position(target).unwrap().0, 0);
        assert_eq!(table.entry_for_peer(PeerId(7)).unwrap().0, 0);
        assert!(table.entry_for_peer(PeerId(8)).is_none());
    }

    #[test]
    #[should_panic(expected = "does not match slot target")]
    fn set_rejects_wrong_position() {
        let owner = Position::new(2, 2);
        let mut table = RoutingTable::new(Side::Right, owner);
        table.set(0, RoutingEntry::new(link(7, Position::new(2, 4))));
    }

    #[test]
    #[should_panic(expected = "invalid for owner")]
    fn set_rejects_invalid_slot() {
        let owner = Position::new(2, 4); // rightmost of level 2
        let mut table = RoutingTable::new(Side::Right, owner);
        table.set(0, RoutingEntry::new(link(7, Position::new(2, 4))));
    }

    #[test]
    fn fullness_counts_only_valid_slots() {
        // Owner level 2 number 4 (rightmost): right table has no valid slot,
        // left table has slots for numbers 3 and 2.
        let owner = Position::new(2, 4);
        let right = RoutingTable::new(Side::Right, owner);
        assert!(right.is_full());
        let mut left = RoutingTable::new(Side::Left, owner);
        assert!(!left.is_full());
        left.set(0, RoutingEntry::new(link(1, Position::new(2, 3))));
        assert!(!left.is_full());
        left.set(1, RoutingEntry::new(link(2, Position::new(2, 2))));
        assert!(left.is_full());
        left.clear(0);
        assert!(!left.is_full());
    }

    #[test]
    fn remove_peer_clears_matching_slots() {
        let owner = Position::new(3, 4);
        let mut table = RoutingTable::new(Side::Left, owner);
        table.set(0, RoutingEntry::new(link(10, Position::new(3, 3))));
        table.set(1, RoutingEntry::new(link(11, Position::new(3, 2))));
        assert_eq!(table.remove_peer(PeerId(10)), 1);
        assert_eq!(table.remove_peer(PeerId(99)), 0);
        assert_eq!(table.occupied_count(), 1);
    }

    #[test]
    fn farthest_and_matching_selectors() {
        let owner = Position::new(3, 1);
        let mut table = RoutingTable::new(Side::Right, owner);
        let mk = |peer: u32, num: u64, low: u64| {
            RoutingEntry::new(NodeLink::new(
                PeerId(peer),
                Position::new(3, num),
                KeyRange::new(low, low + 10),
            ))
        };
        table.set(0, mk(1, 2, 10));
        table.set(1, mk(2, 3, 20));
        table.set(2, mk(3, 5, 40));
        assert_eq!(table.farthest().unwrap().1.link.peer, PeerId(3));
        // Farthest entry whose lower bound <= 25 is the one at number 3.
        let (idx, e) = table
            .farthest_matching(|e| e.link.range.low() <= 25)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(e.link.peer, PeerId(2));
        assert!(table
            .farthest_matching(|e| e.link.range.low() <= 5)
            .is_none());
        let (idx, _) = table
            .nearest_matching(|e| e.link.range.low() >= 20)
            .unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn child_knowledge_helpers() {
        let owner = Position::new(2, 1);
        let mut table = RoutingTable::new(Side::Right, owner);
        let l1 = link(5, Position::new(2, 2));
        let l2 = link(6, Position::new(2, 3));
        table.set(0, RoutingEntry::with_children(l1, Some(PeerId(50)), None));
        table.set(1, RoutingEntry::new(l2));
        assert!(table.entry(0).unwrap().has_any_child());
        assert!(!table.entry(0).unwrap().has_both_children());
        assert!(!table.entry(1).unwrap().has_any_child());
        assert!(table.any_neighbor_has_child());
        assert_eq!(
            table.first_without_both_children().unwrap().1.link.peer,
            PeerId(5)
        );
        assert_eq!(table.first_with_a_child().unwrap().1.link.peer, PeerId(5));
        // Fill both children of slot 0; now the first without both children is slot 1.
        table.entry_mut(0).unwrap().right_child = Some(PeerId(51));
        assert!(table.entry(0).unwrap().has_both_children());
        assert_eq!(
            table.first_without_both_children().unwrap().1.link.peer,
            PeerId(6)
        );
    }

    #[test]
    fn iter_orders_slots_nearest_first() {
        let owner = Position::new(3, 8);
        let mut table = RoutingTable::new(Side::Left, owner);
        table.set(2, RoutingEntry::new(link(3, Position::new(3, 4))));
        table.set(0, RoutingEntry::new(link(1, Position::new(3, 7))));
        let indices: Vec<usize> = table.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![0, 2]);
    }

    #[test]
    fn root_table_is_empty_and_full() {
        let table = RoutingTable::new(Side::Left, Position::ROOT);
        assert_eq!(table.slot_count(), 0);
        assert!(table.is_full());
        assert_eq!(table.valid_slot_indices().count(), 0);
        assert!(table.farthest().is_none());
    }
}
