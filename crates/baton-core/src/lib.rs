//! # baton-core — BATON: a BAlanced Tree Overlay Network
//!
//! A from-scratch Rust implementation of **BATON** (Jagadish, Ooi, Rinard,
//! Vu — *"BATON: A Balanced Tree Structure for Peer-to-Peer Networks"*,
//! VLDB 2005): a peer-to-peer overlay structured as a balanced binary tree
//! in which every peer owns one tree node, a contiguous key range, and a
//! small set of links — parent, children, in-order adjacent nodes and two
//! sideways routing tables with entries at power-of-two distances.
//!
//! The overlay supports, all in `O(log N)` messages:
//!
//! * **exact-match queries** and — unlike DHTs — **range queries**
//!   (`O(log N + X)` for a range covering `X` nodes);
//! * **node joins** and **graceful departures** with `O(log N)` routing
//!   table maintenance (versus `O(log² N)` for Chord);
//! * **failure recovery**, with routing around missing nodes in the
//!   meantime;
//! * **load balancing** by adjacent-node data migration and by lightly
//!   loaded leaves re-joining next to overloaded nodes, backed by an
//!   AVL-rotation-like **restructuring** of the overlay.
//!
//! ## Quick start
//!
//! ```
//! use baton_core::{BatonConfig, BatonSystem, KeyRange};
//!
//! // Build a 50-node overlay (one bootstrap node + 49 random joins).
//! let mut overlay = BatonSystem::build(BatonConfig::default(), 42, 50).unwrap();
//!
//! // Index some data.
//! overlay.insert(123_456_789, 1).unwrap();
//! overlay.insert(500_000_000, 2).unwrap();
//!
//! // Exact-match query from a random peer.
//! let hit = overlay.search_exact(123_456_789).unwrap();
//! assert_eq!(hit.matches, vec![1]);
//!
//! // Range query.
//! let range = overlay.search_range(KeyRange::new(100_000_000, 600_000_000)).unwrap();
//! assert_eq!(range.matches.len(), 2);
//!
//! // Every operation reports how many messages it cost.
//! assert!(hit.messages <= 2 * (overlay.node_count() as f64).log2().ceil() as u64 + 4);
//! ```
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`position`] | `(level, number)` arithmetic, in-order ordering (paper §III) |
//! | [`range`], [`store`] | key ranges and the per-node data store (§IV) |
//! | [`routing`] | links and the sideways routing tables (§III) |
//! | [`node`] | the per-peer state |
//! | [`system`] | [`BatonSystem`]: the overlay + simulated network |
//! | [`bulk`] | direct deterministic construction of an N-node overlay |
//! | [`protocol`] | join, leave, failure, search, data, restructuring, load balancing |
//! | [`validate`] | whole-overlay invariant checking (the test oracle) |
//! | [`reports`] | per-operation message-cost reports used by the benchmarks |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bulk;
pub mod config;
pub mod error;
pub mod messages;
pub mod node;
pub mod overlay;
pub mod position;
pub mod protocol;
pub mod range;
pub mod reports;
pub mod routing;
pub mod snapshot;
pub mod store;
pub mod system;
pub mod validate;

pub use config::{BatonConfig, LoadBalanceConfig};
pub use error::{BatonError, Result};
pub use messages::BatonMessage;
pub use node::BatonNode;
pub use position::{Position, Side};
pub use protocol::search::SearchCostReport;
pub use range::{Key, KeyRange};
pub use reports::{
    BalanceKind, DeleteReport, FailureReport, InsertReport, JoinReport, LeaveReport,
    LoadBalanceReport, RangeSearchReport, RestructureReport, SearchReport,
};
pub use routing::{NodeLink, RoutingEntry, RoutingTable};
pub use store::{LocalStore, Value};
pub use system::BatonSystem;
pub use validate::validate;

// Re-export the substrate types users need to interact with reports/stats
// and the workspace-wide overlay interface BatonSystem implements.
pub use baton_net::{Histogram, MessageStats, Overlay, PeerId};
