//! Routing-snapshot extraction for the concurrent serve front-end.
//!
//! Serializes the overlay's current ownership into a
//! [`RoutingSnapshot`]: the in-order traversal of the tree is an ordered
//! partition of the key domain, so slots are the nodes sorted by range low,
//! items are each node's store run-length-encoded by key, links carry the
//! paper's §II link taxonomy (parent, children, adjacents, sideways routing
//! tables) and replicas are the adjacent-link replica targets of the
//! k-replica capability.  Extraction is read-only: statistics, RNG streams
//! and the virtual clock are untouched.

use std::collections::HashSet;

use baton_net::serve::{ExactPlacement, RoutingSnapshot, SnapshotBuilder};
use baton_net::{LinkKind, PeerId};

use crate::system::BatonSystem;

impl BatonSystem {
    /// Builds a [`RoutingSnapshot`] of the overlay's current state.
    pub fn build_routing_snapshot(&self) -> RoutingSnapshot {
        let domain = self.domain();
        let mut builder = SnapshotBuilder::new(
            "BATON",
            ExactPlacement::DomainPartition,
            true,
            (domain.low(), domain.high()),
        );
        let dead: HashSet<PeerId> = self.dead_peers.iter().copied().collect();
        // Slots in key order: the in-order traversal of the tree.
        let mut nodes: Vec<(PeerId, &crate::node::BatonNode)> = self.iter_nodes().collect();
        nodes.sort_by_key(|(_, node)| node.range.low());
        for (peer, node) in &nodes {
            builder.push_slot(peer.0, node.range.high(), !dead.contains(peer));
            // Run-length encode the store's (key, value) stream: one item
            // per distinct key with its value count.
            let mut run: Option<(u64, u64)> = None;
            for (key, _) in node.store.iter() {
                match &mut run {
                    Some((k, count)) if *k == key => *count += 1,
                    _ => {
                        if let Some((k, count)) = run.take() {
                            builder.push_item(k, count);
                        }
                        run = Some((key, 1));
                    }
                }
            }
            if let Some((k, count)) = run {
                builder.push_item(k, count);
            }
            builder.seal_slot();
        }
        for (slot, (peer, node)) in nodes.iter().enumerate() {
            let link = |target: PeerId, kind: LinkKind, b: &mut SnapshotBuilder| {
                if let Some(t) = b.slot_of(target.0) {
                    b.link(slot, t, kind);
                }
            };
            if let Some(parent) = &node.parent {
                link(parent.peer, LinkKind::Parent, &mut builder);
            }
            for child in [&node.left_child, &node.right_child].into_iter().flatten() {
                link(child.peer, LinkKind::Child, &mut builder);
            }
            for adjacent in [&node.left_adjacent, &node.right_adjacent]
                .into_iter()
                .flatten()
            {
                link(adjacent.peer, LinkKind::Adjacent, &mut builder);
            }
            for table in [&node.left_table, &node.right_table] {
                for (_, entry) in table.iter() {
                    link(entry.link.peer, LinkKind::RoutingTable, &mut builder);
                }
            }
            for target in self.replica_targets(*peer) {
                if let Some(t) = builder.slot_of(target.0) {
                    builder.replica(slot, t);
                }
            }
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use baton_net::serve::ServeCounters;
    use baton_net::Overlay;

    use crate::config::BatonConfig;
    use crate::system::BatonSystem;

    #[test]
    fn snapshot_slots_partition_the_domain_in_key_order() {
        let system = BatonSystem::build(BatonConfig::default(), 7, 40).unwrap();
        let snapshot = system.build_routing_snapshot();
        assert_eq!(snapshot.slots(), 40);
        assert_eq!(snapshot.overlay(), "BATON");
        assert!(snapshot.range_supported());
        assert_eq!(
            snapshot.total_items() as usize,
            Overlay::total_items(&system)
        );
    }

    #[test]
    fn snapshot_exact_matches_store_contents() {
        let mut system = BatonSystem::build(BatonConfig::default(), 11, 32).unwrap();
        for key in [5u64, 5, 123_456, 999_999_998] {
            system.insert(key, key).unwrap();
        }
        let snapshot = system.build_routing_snapshot();
        let mut counters = ServeCounters::default();
        assert_eq!(snapshot.exact(5, 0, &mut counters).matches, 2);
        assert_eq!(snapshot.exact(123_456, 3, &mut counters).matches, 1);
        assert_eq!(snapshot.exact(77, 9, &mut counters).matches, 0);
        assert!(counters.hops > 0, "greedy routing should charge hops");
    }
}
