//! Logical tree positions.
//!
//! A BATON node is identified by a *level* and a *number* (paper §III): the
//! root is at level 0, the level of any node is one greater than its
//! parent's, and at each level `L` positions are numbered `1 ..= 2^L`
//! whether or not a peer currently occupies them.
//!
//! This module is pure arithmetic on those `(level, number)` pairs: parent /
//! child positions, sideways neighbour positions at distance `2^i` (the
//! targets of the left and right routing tables), and a total order
//! corresponding to the in-order traversal of the infinite binary tree
//! (used to reason about adjacency and range ordering).

use std::cmp::Ordering;
use std::fmt;

/// Which side of a node: used for children, adjacent links and routing
/// tables throughout the crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// Towards smaller keys / smaller in-order positions.
    Left,
    /// Towards larger keys / larger in-order positions.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Both sides, left first.
    pub const BOTH: [Side; 2] = [Side::Left, Side::Right];
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// A logical position in the BATON tree: `(level, number)` with
/// `1 <= number <= 2^level`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    level: u32,
    number: u64,
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(L{},#{})", self.level, self.number)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "level {} number {}", self.level, self.number)
    }
}

impl Position {
    /// Maximum supported level.  `2^MAX_LEVEL` positions per level must fit
    /// comfortably in a `u64` and in-order comparison must fit in a `u128`;
    /// 60 levels is far beyond any realistic overlay (a balanced tree with
    /// 10^12 peers has height ≈ 58).
    pub const MAX_LEVEL: u32 = 60;

    /// The root position: level 0, number 1.
    pub const ROOT: Position = Position {
        level: 0,
        number: 1,
    };

    /// Creates a position, validating that `number` is within `1 ..= 2^level`.
    ///
    /// # Panics
    /// Panics if the position is out of range or the level exceeds
    /// [`Position::MAX_LEVEL`].
    pub fn new(level: u32, number: u64) -> Self {
        assert!(
            level <= Self::MAX_LEVEL,
            "level {level} exceeds MAX_LEVEL {}",
            Self::MAX_LEVEL
        );
        assert!(
            number >= 1 && number <= (1u64 << level),
            "number {number} out of range for level {level}"
        );
        Self { level, number }
    }

    /// Creates a position without validation; `None` if out of range.
    pub fn checked_new(level: u32, number: u64) -> Option<Self> {
        if level <= Self::MAX_LEVEL && number >= 1 && number <= (1u64 << level) {
            Some(Self { level, number })
        } else {
            None
        }
    }

    /// Level of the position (root = 0).
    #[inline]
    pub fn level(self) -> u32 {
        self.level
    }

    /// Number of the position within its level (1-based).
    #[inline]
    pub fn number(self) -> u64 {
        self.number
    }

    /// `true` for the root position.
    #[inline]
    pub fn is_root(self) -> bool {
        self.level == 0
    }

    /// `true` if this position is the left child of its parent
    /// (left children have odd numbers).
    #[inline]
    pub fn is_left_child(self) -> bool {
        !self.is_root() && self.number % 2 == 1
    }

    /// `true` if this position is the right child of its parent.
    #[inline]
    pub fn is_right_child(self) -> bool {
        !self.is_root() && self.number.is_multiple_of(2)
    }

    /// Which child of its parent this position is, or `None` for the root.
    pub fn child_side(self) -> Option<Side> {
        if self.is_root() {
            None
        } else if self.is_left_child() {
            Some(Side::Left)
        } else {
            Some(Side::Right)
        }
    }

    /// Position of the parent, or `None` for the root.
    pub fn parent(self) -> Option<Position> {
        if self.is_root() {
            None
        } else {
            Some(Position {
                level: self.level - 1,
                number: self.number.div_ceil(2),
            })
        }
    }

    /// Position of the left child.
    ///
    /// # Panics
    /// Panics if the child level would exceed [`Position::MAX_LEVEL`].
    pub fn left_child(self) -> Position {
        Position::new(self.level + 1, 2 * self.number - 1)
    }

    /// Position of the right child.
    ///
    /// # Panics
    /// Panics if the child level would exceed [`Position::MAX_LEVEL`].
    pub fn right_child(self) -> Position {
        Position::new(self.level + 1, 2 * self.number)
    }

    /// Position of the child on `side`.
    pub fn child(self, side: Side) -> Position {
        match side {
            Side::Left => self.left_child(),
            Side::Right => self.right_child(),
        }
    }

    /// `true` if `self` is a (strict or equal) ancestor of `other`, i.e.
    /// `other` lies in the subtree rooted at `self`.
    pub fn is_ancestor_of_or_equal(self, other: Position) -> bool {
        if other.level < self.level {
            return false;
        }
        let shift = other.level - self.level;
        // The ancestor of `other` at `self.level` has number
        // ceil(other.number / 2^shift).
        let ancestor_number = (other.number + (1u64 << shift) - 1) >> shift;
        ancestor_number == self.number
    }

    /// Number of the last position at this level (`2^level`).
    #[inline]
    pub fn level_width(self) -> u64 {
        1u64 << self.level
    }

    /// `true` if this is the leftmost position of its level (`number == 1`).
    #[inline]
    pub fn is_leftmost_of_level(self) -> bool {
        self.number == 1
    }

    /// `true` if this is the rightmost position of its level
    /// (`number == 2^level`).
    #[inline]
    pub fn is_rightmost_of_level(self) -> bool {
        self.number == self.level_width()
    }

    /// Number of routing-table slots at this level.
    ///
    /// Entry `i` of the left (right) table points to the position at the
    /// same level with number smaller (greater) by `2^i`; indices `0 ..
    /// level` can be in range, so a table at level `L` has at most `L`
    /// entries (paper §III).
    #[inline]
    pub fn routing_table_size(self) -> usize {
        self.level as usize
    }

    /// Neighbour position targeted by routing-table entry `index` on `side`,
    /// or `None` if `number ± 2^index` falls outside `1 ..= 2^level`.
    pub fn routing_neighbor(self, side: Side, index: usize) -> Option<Position> {
        if index >= self.routing_table_size() {
            return None;
        }
        let distance = 1u64 << index;
        let number = match side {
            Side::Left => self.number.checked_sub(distance).filter(|&n| n >= 1)?,
            Side::Right => {
                let n = self.number.checked_add(distance)?;
                if n > self.level_width() {
                    return None;
                }
                n
            }
        };
        Some(Position {
            level: self.level,
            number,
        })
    }

    /// All in-range routing neighbour positions on `side`, with their entry
    /// index.
    pub fn routing_neighbors(self, side: Side) -> Vec<(usize, Position)> {
        (0..self.routing_table_size())
            .filter_map(|i| self.routing_neighbor(side, i).map(|p| (i, p)))
            .collect()
    }

    /// In-order rank of the position in the *infinite* binary tree, as the
    /// dyadic fraction `(2·number − 1) / 2^(level+1)` of the whole key
    /// space.  Returned as `(numerator, log2_denominator)`.
    ///
    /// Two positions compare in the in-order traversal order exactly as
    /// their fractions compare; see [`Position::inorder_cmp`].
    pub fn inorder_fraction(self) -> (u64, u32) {
        (2 * self.number - 1, self.level + 1)
    }

    /// Compares two positions by their order in an in-order traversal of
    /// the (infinite, complete) binary tree.
    ///
    /// A node's left descendants order before it, its right descendants
    /// after it; this is the order in which key ranges are assigned
    /// (paper §IV).
    pub fn inorder_cmp(self, other: Position) -> Ordering {
        let (an, ad) = self.inorder_fraction();
        let (bn, bd) = other.inorder_fraction();
        // Compare an / 2^ad with bn / 2^bd by cross-multiplying in u128.
        let lhs = (an as u128) << bd;
        let rhs = (bn as u128) << ad;
        lhs.cmp(&rhs)
    }

    /// `true` if `self` comes before `other` in in-order traversal.
    pub fn inorder_lt(self, other: Position) -> bool {
        self.inorder_cmp(other) == Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let root = Position::ROOT;
        assert_eq!(root.level(), 0);
        assert_eq!(root.number(), 1);
        assert!(root.is_root());
        assert!(!root.is_left_child());
        assert!(!root.is_right_child());
        assert_eq!(root.parent(), None);
        assert_eq!(root.child_side(), None);
        assert_eq!(root.routing_table_size(), 0);
        assert!(root.is_leftmost_of_level());
        assert!(root.is_rightmost_of_level());
    }

    #[test]
    fn children_and_parent_roundtrip() {
        let root = Position::ROOT;
        let l = root.left_child();
        let r = root.right_child();
        assert_eq!(l, Position::new(1, 1));
        assert_eq!(r, Position::new(1, 2));
        assert!(l.is_left_child());
        assert!(r.is_right_child());
        assert_eq!(l.parent(), Some(root));
        assert_eq!(r.parent(), Some(root));
        assert_eq!(l.child_side(), Some(Side::Left));
        assert_eq!(r.child_side(), Some(Side::Right));
        assert_eq!(root.child(Side::Left), l);
        assert_eq!(root.child(Side::Right), r);
    }

    #[test]
    fn deep_parent_child_examples() {
        // Level 3 numbering from the paper's Figure 1: positions 1..8.
        let p = Position::new(3, 5);
        assert_eq!(p.parent(), Some(Position::new(2, 3)));
        assert_eq!(Position::new(2, 3).left_child(), Position::new(3, 5));
        assert_eq!(Position::new(2, 3).right_child(), Position::new(3, 6));
        assert!(Position::new(3, 5).is_left_child());
        assert!(Position::new(3, 6).is_right_child());
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Position::checked_new(2, 0).is_none());
        assert!(Position::checked_new(2, 5).is_none());
        assert!(Position::checked_new(2, 4).is_some());
        assert!(Position::checked_new(Position::MAX_LEVEL + 1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        Position::new(3, 9);
    }

    #[test]
    fn level_extremes() {
        assert!(Position::new(3, 1).is_leftmost_of_level());
        assert!(!Position::new(3, 2).is_leftmost_of_level());
        assert!(Position::new(3, 8).is_rightmost_of_level());
        assert!(!Position::new(3, 7).is_rightmost_of_level());
        assert_eq!(Position::new(3, 1).level_width(), 8);
    }

    #[test]
    fn routing_neighbors_match_paper_example() {
        // Node h in Figure 1 is the leftmost node of level 3 (number 1):
        // its left routing table has no valid links and its right routing
        // table points to numbers 2, 3 and 5 (nodes i, j, l).
        let h = Position::new(3, 1);
        assert_eq!(h.routing_table_size(), 3);
        for i in 0..3 {
            assert_eq!(h.routing_neighbor(Side::Left, i), None);
        }
        assert_eq!(
            h.routing_neighbor(Side::Right, 0),
            Some(Position::new(3, 2))
        );
        assert_eq!(
            h.routing_neighbor(Side::Right, 1),
            Some(Position::new(3, 3))
        );
        assert_eq!(
            h.routing_neighbor(Side::Right, 2),
            Some(Position::new(3, 5))
        );
        assert_eq!(h.routing_neighbor(Side::Right, 3), None);
    }

    #[test]
    fn routing_neighbors_interior_node() {
        let p = Position::new(3, 4);
        let left: Vec<_> = p.routing_neighbors(Side::Left);
        let right: Vec<_> = p.routing_neighbors(Side::Right);
        // Left neighbours of number 4 are 3 (distance 1) and 2 (distance 2);
        // distance 4 would be number 0, which is out of range.
        assert_eq!(
            left,
            vec![(0, Position::new(3, 3)), (1, Position::new(3, 2))]
        );
        assert_eq!(
            right,
            vec![
                (0, Position::new(3, 5)),
                (1, Position::new(3, 6)),
                (2, Position::new(3, 8)),
            ]
        );
    }

    #[test]
    fn routing_neighbor_out_of_index_is_none() {
        let p = Position::new(2, 2);
        assert_eq!(p.routing_neighbor(Side::Right, 10), None);
    }

    #[test]
    fn ancestor_relation() {
        let root = Position::ROOT;
        let l = root.left_child();
        let lr = l.right_child();
        assert!(root.is_ancestor_of_or_equal(root));
        assert!(root.is_ancestor_of_or_equal(lr));
        assert!(l.is_ancestor_of_or_equal(lr));
        assert!(!lr.is_ancestor_of_or_equal(l));
        assert!(!l.is_ancestor_of_or_equal(root.right_child()));
        assert!(!root.right_child().is_ancestor_of_or_equal(lr));
    }

    #[test]
    fn inorder_order_small_tree() {
        // Complete tree of height 2; in-order traversal of positions:
        // (2,1) (1,1) (2,2) (0,1) (2,3) (1,2) (2,4)
        let expected = vec![
            Position::new(2, 1),
            Position::new(1, 1),
            Position::new(2, 2),
            Position::new(0, 1),
            Position::new(2, 3),
            Position::new(1, 2),
            Position::new(2, 4),
        ];
        for w in expected.windows(2) {
            assert!(
                w[0].inorder_lt(w[1]),
                "{:?} should be before {:?}",
                w[0],
                w[1]
            );
        }
        let mut sorted = expected.clone();
        sorted.sort_by(|a, b| a.inorder_cmp(*b));
        assert_eq!(sorted, expected);
    }

    #[test]
    fn inorder_cmp_equal_only_for_same_position() {
        let a = Position::new(4, 7);
        assert_eq!(a.inorder_cmp(a), Ordering::Equal);
        assert_ne!(a.inorder_cmp(Position::new(4, 8)), Ordering::Equal);
    }

    #[test]
    fn side_opposite_and_display() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
        assert_eq!(Side::Left.to_string(), "left");
        assert_eq!(Side::Right.to_string(), "right");
        assert_eq!(Side::BOTH, [Side::Left, Side::Right]);
    }

    #[test]
    fn display_and_debug_formatting() {
        let p = Position::new(2, 3);
        assert_eq!(format!("{p:?}"), "(L2,#3)");
        assert_eq!(format!("{p}"), "level 2 number 3");
    }

    fn random_position(rng: &mut baton_net::SimRng) -> Position {
        let level = rng.uniform_u64(0, 20) as u32;
        let number = rng.uniform_u64(1, (1u64 << level) + 1);
        Position::new(level, number)
    }

    // Seeded stand-ins for the old proptest properties.
    #[test]
    fn prop_parent_child_roundtrip() {
        let mut rng = baton_net::SimRng::seeded(0x9A97);
        for _ in 0..500 {
            let p = random_position(&mut rng);
            assert_eq!(p.left_child().parent(), Some(p));
            assert_eq!(p.right_child().parent(), Some(p));
            assert!(p.left_child().is_left_child());
            assert!(p.right_child().is_right_child());
        }
    }

    #[test]
    fn prop_inorder_children_bracket_parent() {
        let mut rng = baton_net::SimRng::seeded(0x1109);
        for _ in 0..500 {
            let p = random_position(&mut rng);
            assert!(p.left_child().inorder_lt(p));
            assert!(p.inorder_lt(p.right_child()));
        }
    }

    #[test]
    fn prop_inorder_total_order_consistent() {
        let mut rng = baton_net::SimRng::seeded(0x7074);
        for _ in 0..500 {
            let a = random_position(&mut rng);
            let b = random_position(&mut rng);
            let ab = a.inorder_cmp(b);
            let ba = b.inorder_cmp(a);
            assert_eq!(ab, ba.reverse());
            if a == b {
                assert_eq!(ab, Ordering::Equal);
            } else {
                assert_ne!(ab, Ordering::Equal);
            }
        }
    }

    #[test]
    fn prop_routing_neighbors_symmetric() {
        let mut rng = baton_net::SimRng::seeded(0x20B5);
        for _ in 0..500 {
            let p = random_position(&mut rng);
            let i = rng.index(20);
            // If q is p's right neighbour at index i then p is q's left
            // neighbour at index i, and vice versa.
            if let Some(q) = p.routing_neighbor(Side::Right, i) {
                assert_eq!(q.routing_neighbor(Side::Left, i), Some(p));
            }
            if let Some(q) = p.routing_neighbor(Side::Left, i) {
                assert_eq!(q.routing_neighbor(Side::Right, i), Some(p));
            }
        }
    }

    #[test]
    fn prop_theorem2_parent_of_neighbor() {
        let mut rng = baton_net::SimRng::seeded(0x7432);
        for _ in 0..500 {
            let p = random_position(&mut rng);
            let i = rng.index(20);
            // Theorem 2: if x links to y (same-level neighbour at distance
            // 2^i), then parent(x) links to parent(y) (distance 2^(i-1)) or
            // they share a parent (i == 0 and siblings).
            if p.is_root() {
                continue;
            }
            for side in Side::BOTH {
                if let Some(q) = p.routing_neighbor(side, i) {
                    let pp = p.parent().unwrap();
                    let qp = q.parent().unwrap();
                    if pp == qp {
                        assert_eq!(i, 0);
                    } else if i == 0 {
                        // Adjacent but not siblings: parents are neighbours
                        // at distance 1 (distance 0 handled above).
                        let d = pp.number().abs_diff(qp.number());
                        assert_eq!(d, 1);
                    } else {
                        let d = pp.number().abs_diff(qp.number());
                        assert_eq!(d, 1u64 << (i - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn prop_ancestor_iff_inorder_bracketed_by_subtree() {
        let mut rng = baton_net::SimRng::seeded(0xA2CE);
        for _ in 0..500 {
            let p = random_position(&mut rng);
            // Every position in p's subtree at level p.level()+2 is
            // recognised by is_ancestor_of_or_equal.
            let base = p.left_child().left_child();
            for offset in 0..4u64 {
                let q = Position::new(base.level(), base.number() + offset);
                assert!(p.is_ancestor_of_or_equal(q));
            }
            if let Some(outside) = Position::checked_new(base.level(), base.number() + 4) {
                assert!(!p.is_ancestor_of_or_equal(outside));
            }
        }
    }
}
