//! Whole-overlay invariant checking.
//!
//! [`validate`] checks every structural property the paper relies on:
//!
//! 1. position bookkeeping is consistent (every node's position maps back to
//!    it, the root pointer is right);
//! 2. the occupied positions form a tree (every non-root position's parent
//!    is occupied) and parent/child links agree with the position map;
//! 3. the tree is height-balanced (Definition 1);
//! 4. Theorem 1 holds: every node with a child has both routing tables full;
//! 5. routing tables are accurate: every entry points at the real occupant
//!    of its slot's position with its current range and children, and every
//!    occupied slot position has an entry;
//! 6. adjacent links form exactly the in-order traversal of the occupied
//!    positions;
//! 7. the nodes' ranges, read in in-order, partition the key domain;
//! 8. every link's recorded range matches the target's actual range;
//! 9. every stored key lies inside its node's range.
//!
//! The test suites call `validate` after every mutating operation, making it
//! the central correctness oracle for the whole protocol implementation.

use crate::error::{BatonError, Result};
use crate::position::{Position, Side};
use crate::system::BatonSystem;

/// Checks every structural invariant of the overlay.  Returns the first
/// violation found as an [`BatonError::InvariantViolation`].
pub fn validate(system: &BatonSystem) -> Result<()> {
    if system.is_empty() {
        return Ok(());
    }
    check_peer_list(system)?;
    check_position_bookkeeping(system)?;
    check_tree_links(system)?;
    check_balance(system)?;
    check_theorem1(system)?;
    check_routing_tables(system)?;
    check_adjacency_and_ranges(system)?;
    check_data_placement(system)?;
    check_replication(system)?;
    Ok(())
}

fn violation(msg: String) -> BatonError {
    BatonError::InvariantViolation(msg)
}

/// The O(1)-sampling peer list must mirror the node map exactly and stay
/// sorted (the sampling order the seed figures were produced with).
fn check_peer_list(system: &BatonSystem) -> Result<()> {
    let live_slots = system.nodes.iter().filter(|n| n.is_some()).count();
    if system.peer_list.len() != live_slots {
        return Err(violation(format!(
            "peer list has {} entries but the node slab holds {} live nodes",
            system.peer_list.len(),
            live_slots
        )));
    }
    if !system.peer_list.is_sorted() {
        return Err(violation("peer list is not sorted".into()));
    }
    for peer in &system.peer_list {
        if system.node(*peer).is_none() {
            return Err(violation(format!("peer list entry {peer} has no node")));
        }
    }
    Ok(())
}

fn check_position_bookkeeping(system: &BatonSystem) -> Result<()> {
    for &peer in system.peers() {
        let node = system.node(peer).unwrap();
        if node.peer != peer {
            return Err(violation(format!(
                "node stored under {peer} believes it is {}",
                node.peer
            )));
        }
        match system.peer_at(node.position) {
            Some(p) if p == peer => {}
            other => {
                return Err(violation(format!(
                    "position map for {:?} holds {other:?}, expected {peer}",
                    node.position
                )))
            }
        }
        if node.left_table.owner() != node.position || node.right_table.owner() != node.position {
            return Err(violation(format!(
                "{peer} routing tables built for a different position than {:?}",
                node.position
            )));
        }
    }
    // Root pointer.
    match system.peer_at(Position::ROOT) {
        Some(root_peer) => {
            if system.root() != Some(root_peer) {
                return Err(violation(format!(
                    "root pointer {:?} disagrees with occupant of the root position {root_peer}",
                    system.root()
                )));
            }
        }
        None => {
            return Err(violation(
                "non-empty overlay with no node at the root position".into(),
            ))
        }
    }
    Ok(())
}

fn check_tree_links(system: &BatonSystem) -> Result<()> {
    for &peer in system.peers() {
        let node = system.node(peer).unwrap();
        let position = node.position;
        // Parent.
        match position.parent() {
            None => {
                if node.parent.is_some() {
                    return Err(violation(format!("root node {peer} has a parent link")));
                }
            }
            Some(parent_pos) => {
                let Some(parent_peer) = system.peer_at(parent_pos) else {
                    return Err(violation(format!(
                        "{peer} at {position:?} has no occupied parent position {parent_pos:?}"
                    )));
                };
                let Some(parent_link) = &node.parent else {
                    return Err(violation(format!(
                        "{peer} at {position:?} lacks a parent link"
                    )));
                };
                if parent_link.peer != parent_peer || parent_link.position != parent_pos {
                    return Err(violation(format!(
                        "{peer} parent link {:?}/{:?} disagrees with occupant {parent_peer}",
                        parent_link.peer, parent_link.position
                    )));
                }
                // The parent must link back.
                let parent = system.node(parent_peer).unwrap();
                let side = position.child_side().expect("non-root");
                match parent.child(side) {
                    Some(l) if l.peer == peer => {}
                    other => {
                        return Err(violation(format!(
                        "parent {parent_peer} child link on {side} is {other:?}, expected {peer}"
                    )))
                    }
                }
            }
        }
        // Children.
        for side in Side::BOTH {
            if let Some(child_link) = node.child(side) {
                let expected_pos = position.child(side);
                if child_link.position != expected_pos {
                    return Err(violation(format!(
                        "{peer} child link on {side} has position {:?}, expected {expected_pos:?}",
                        child_link.position
                    )));
                }
                match system.peer_at(expected_pos) {
                    Some(occupant) if occupant == child_link.peer => {}
                    other => {
                        return Err(violation(format!(
                            "{peer} child link on {side} points at {}, position map says {other:?}",
                            child_link.peer
                        )))
                    }
                }
            } else if system.peer_at(position.child(side)).is_some() {
                return Err(violation(format!(
                    "{peer} is missing its child link on {side} although the position is occupied"
                )));
            }
        }
    }
    Ok(())
}

fn check_balance(system: &BatonSystem) -> Result<()> {
    // Height of the subtree rooted at each occupied position, computed
    // bottom-up over the occupied position set.
    fn height(system: &BatonSystem, position: Position) -> u32 {
        if system.peer_at(position).is_none() {
            return 0;
        }
        1 + height(system, position.left_child()).max(height(system, position.right_child()))
    }
    for &peer in system.peers() {
        let position = system.node(peer).unwrap().position;
        let left = height(system, position.left_child());
        let right = height(system, position.right_child());
        if left.abs_diff(right) > 1 {
            return Err(violation(format!(
                "tree unbalanced at {position:?}: left subtree height {left}, right {right}"
            )));
        }
    }
    Ok(())
}

fn check_theorem1(system: &BatonSystem) -> Result<()> {
    for &peer in system.peers() {
        let node = system.node(peer).unwrap();
        if !node.is_leaf() && !node.tables_full() {
            return Err(violation(format!(
                "Theorem 1 violated: {peer} at {:?} has children but incomplete routing tables",
                node.position
            )));
        }
    }
    Ok(())
}

fn check_routing_tables(system: &BatonSystem) -> Result<()> {
    for &peer in system.peers() {
        let node = system.node(peer).unwrap();
        let position = node.position;
        for side in Side::BOTH {
            let table = node.table(side);
            for index in 0..table.slot_count() {
                let Some(target_pos) = position.routing_neighbor(side, index) else {
                    if table.entry(index).is_some() {
                        return Err(violation(format!(
                            "{peer} has an entry in an invalid slot {index} of its {side} table"
                        )));
                    }
                    continue;
                };
                let occupant = system.peer_at(target_pos);
                match (occupant, table.entry(index)) {
                    (None, None) => {}
                    (None, Some(_)) => {
                        return Err(violation(format!(
                            "{peer} {side} table slot {index} points at unoccupied {target_pos:?}"
                        )))
                    }
                    (Some(_), None) => {
                        return Err(violation(format!(
                            "{peer} {side} table slot {index} empty although {target_pos:?} is occupied"
                        )))
                    }
                    (Some(occupant), Some(entry)) => {
                        if entry.link.peer != occupant {
                            return Err(violation(format!(
                                "{peer} {side} table slot {index} points at {} but {target_pos:?} is held by {occupant}",
                                entry.link.peer
                            )));
                        }
                        let target = system.node(occupant).unwrap();
                        if entry.link.range != target.range {
                            return Err(violation(format!(
                                "{peer} {side} table slot {index} records range {} but {occupant} manages {}",
                                entry.link.range, target.range
                            )));
                        }
                        let actual_left = target.left_child.map(|l| l.peer);
                        let actual_right = target.right_child.map(|l| l.peer);
                        if entry.left_child != actual_left || entry.right_child != actual_right {
                            return Err(violation(format!(
                                "{peer} {side} table slot {index} child knowledge {:?}/{:?} disagrees with {occupant}'s children {:?}/{:?}",
                                entry.left_child, entry.right_child, actual_left, actual_right
                            )));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_adjacency_and_ranges(system: &BatonSystem) -> Result<()> {
    // Sort all nodes by in-order position: this is the expected adjacency
    // chain and also the expected range order.
    let mut peers = system.peers().to_vec();
    peers.sort_by(|a, b| {
        system
            .node(*a)
            .unwrap()
            .position
            .inorder_cmp(system.node(*b).unwrap().position)
    });
    let domain = system.domain();

    // Ranges partition the domain.
    let first = system.node(peers[0]).unwrap();
    if first.range.low() != domain.low() {
        return Err(violation(format!(
            "first node's range {} does not start at the domain low {}",
            first.range,
            domain.low()
        )));
    }
    let last = system.node(*peers.last().unwrap()).unwrap();
    if last.range.high() != domain.high() {
        return Err(violation(format!(
            "last node's range {} does not end at the domain high {}",
            last.range,
            domain.high()
        )));
    }
    for pair in peers.windows(2) {
        let a = system.node(pair[0]).unwrap();
        let b = system.node(pair[1]).unwrap();
        if a.range.high() != b.range.low() {
            return Err(violation(format!(
                "ranges not contiguous between {:?} ({}) and {:?} ({})",
                a.position, a.range, b.position, b.range
            )));
        }
    }

    // Adjacent links mirror the in-order chain.
    for (i, peer) in peers.iter().enumerate() {
        let node = system.node(*peer).unwrap();
        let expected_left = if i == 0 { None } else { Some(peers[i - 1]) };
        let expected_right = peers.get(i + 1).copied();
        if node.left_adjacent.map(|l| l.peer) != expected_left {
            return Err(violation(format!(
                "{peer} left adjacent {:?} expected {expected_left:?}",
                node.left_adjacent.map(|l| l.peer)
            )));
        }
        if node.right_adjacent.map(|l| l.peer) != expected_right {
            return Err(violation(format!(
                "{peer} right adjacent {:?} expected {expected_right:?}",
                node.right_adjacent.map(|l| l.peer)
            )));
        }
    }

    // Every link records the target's actual range and position.
    for &peer in system.peers() {
        let node = system.node(peer).unwrap();
        let links = [
            ("parent", node.parent),
            ("left child", node.left_child),
            ("right child", node.right_child),
            ("left adjacent", node.left_adjacent),
            ("right adjacent", node.right_adjacent),
        ];
        for (label, link) in links {
            if let Some(link) = link {
                let Some(target) = system.node(link.peer) else {
                    return Err(violation(format!(
                        "{peer} {label} link points at unknown peer {}",
                        link.peer
                    )));
                };
                if link.range != target.range {
                    return Err(violation(format!(
                        "{peer} {label} link records range {} but {} manages {}",
                        link.range, link.peer, target.range
                    )));
                }
                if link.position != target.position {
                    return Err(violation(format!(
                        "{peer} {label} link records position {:?} but {} is at {:?}",
                        link.position, link.peer, target.position
                    )));
                }
            }
        }
    }
    Ok(())
}

fn check_data_placement(system: &BatonSystem) -> Result<()> {
    for &peer in system.peers() {
        let node = system.node(peer).unwrap();
        if let Some(min) = node.store.min_key() {
            if !node.range.contains(min) {
                return Err(violation(format!(
                    "{peer} stores key {min} outside its range {}",
                    node.range
                )));
            }
        }
        if let Some(max) = node.store.max_key() {
            if !node.range.contains(max) {
                return Err(violation(format!(
                    "{peer} stores key {max} outside its range {}",
                    node.range
                )));
            }
        }
    }
    Ok(())
}

/// The k-replica placement invariant (no-op at k = 1): with more than one
/// node in the overlay, every node must resolve at least one replica target,
/// all targets must be distinct live members different from the owner, and
/// there are at most k−1 of them.
fn check_replication(system: &BatonSystem) -> Result<()> {
    let k = system.replication();
    if k <= 1 || system.node_count() <= 1 {
        return Ok(());
    }
    for &peer in system.peers() {
        let targets = system.replica_targets(peer);
        if targets.is_empty() {
            return Err(violation(format!(
                "replication k={k}: {peer} resolves no replica target although \
                 the overlay has {} nodes",
                system.node_count()
            )));
        }
        if targets.len() > k - 1 {
            return Err(violation(format!(
                "replication k={k}: {peer} resolves {} replica targets (max {})",
                targets.len(),
                k - 1
            )));
        }
        for (i, target) in targets.iter().enumerate() {
            if *target == peer {
                return Err(violation(format!(
                    "replication k={k}: {peer} lists itself as a replica target"
                )));
            }
            if system.node(*target).is_none() {
                return Err(violation(format!(
                    "replication k={k}: {peer} replica target {target} is not a member"
                )));
            }
            if targets[..i].contains(target) {
                return Err(violation(format!(
                    "replication k={k}: {peer} lists replica target {target} twice"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatonConfig;
    use crate::range::KeyRange;
    use crate::routing::NodeLink;

    #[test]
    fn empty_overlay_is_valid() {
        let system = BatonSystem::with_seed(1);
        assert!(validate(&system).is_ok());
    }

    #[test]
    fn freshly_built_overlays_are_valid() {
        for n in [1usize, 2, 3, 5, 10, 50, 128] {
            let system = BatonSystem::build(BatonConfig::default(), 42, n).unwrap();
            validate(&system).unwrap_or_else(|e| panic!("{n}-node overlay invalid: {e}"));
        }
    }

    #[test]
    fn replica_invariant_holds_at_every_supported_k() {
        for k in [2usize, 3] {
            let mut system = BatonSystem::build(BatonConfig::default(), 9, 40).unwrap();
            system.set_replication(k).unwrap();
            validate(&system).unwrap_or_else(|e| panic!("k={k}: {e}"));
        }
    }

    #[test]
    fn detects_corrupted_range() {
        let mut system = BatonSystem::build(BatonConfig::default(), 1, 8).unwrap();
        let peer = system.peers()[0];
        {
            let node = system.node_opt_mut(peer).unwrap();
            node.range = KeyRange::new(0, 1);
        }
        assert!(validate(&system).is_err());
    }

    #[test]
    fn detects_corrupted_adjacency() {
        let mut system = BatonSystem::build(BatonConfig::default(), 2, 8).unwrap();
        let peers = system.peers().to_vec();
        let a = peers[0];
        {
            let node = system.node_opt_mut(a).unwrap();
            node.left_adjacent = None;
            node.right_adjacent = None;
        }
        assert!(validate(&system).is_err());
    }

    #[test]
    fn detects_corrupted_routing_entry() {
        let mut system = BatonSystem::build(BatonConfig::default(), 3, 16).unwrap();
        // Find a node with at least one routing entry and corrupt its range.
        let victim = system
            .peers()
            .iter()
            .copied()
            .find(|p| {
                let n = system.node(*p).unwrap();
                n.left_table.occupied_count() + n.right_table.occupied_count() > 0
            })
            .unwrap();
        {
            let node = system.node_opt_mut(victim).unwrap();
            'outer: for side in Side::BOTH {
                let table = node.table_mut(side);
                for i in 0..table.slot_count() {
                    if let Some(e) = table.entry_mut(i) {
                        e.link.range = KeyRange::new(0, 1);
                        break 'outer;
                    }
                }
            }
        }
        assert!(validate(&system).is_err());
    }

    #[test]
    fn detects_stolen_child_link() {
        let mut system = BatonSystem::build(BatonConfig::default(), 4, 12).unwrap();
        let parent_of_someone = system
            .peers()
            .iter()
            .copied()
            .find(|p| !system.node(*p).unwrap().is_leaf())
            .unwrap();
        {
            let fake = NodeLink::new(
                baton_net::PeerId(9999),
                Position::new(5, 1),
                KeyRange::new(0, 1),
            );
            let node = system.node_opt_mut(parent_of_someone).unwrap();
            if node.left_child.is_some() {
                node.left_child = Some(fake);
            } else {
                node.right_child = Some(fake);
            }
        }
        assert!(validate(&system).is_err());
    }
}
