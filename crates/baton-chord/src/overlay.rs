//! [`Overlay`] implementation for [`ChordSystem`].
//!
//! Chord is a plain DHT: exact-match lookups and churn only.  Its
//! capabilities report `range_queries: false` and [`Overlay::search_range`]
//! returns [`OverlayError::Unsupported`], which is how the generic figure
//! drivers know to omit Chord from Figure 8(e) — exactly as the paper does.

use baton_net::{
    ChurnCost, LatencyModel, MessageStats, OpCost, Overlay, OverlayCapabilities, OverlayError,
    OverlayResult, PeerId, SimTime, TraceBuffer, TraceConfig,
};

use crate::system::{ChordError, ChordSystem};

fn op_err(error: ChordError) -> OverlayError {
    OverlayError::Op(error.to_string())
}

impl Overlay for ChordSystem {
    fn name(&self) -> &'static str {
        "Chord"
    }

    fn capabilities(&self) -> OverlayCapabilities {
        OverlayCapabilities::DHT.with_bulk_build()
    }

    fn node_count(&self) -> usize {
        ChordSystem::node_count(self)
    }

    fn total_items(&self) -> usize {
        ChordSystem::total_items(self)
    }

    fn stats(&self) -> &MessageStats {
        ChordSystem::stats(self)
    }

    fn stats_mut(&mut self) -> &mut MessageStats {
        ChordSystem::stats_mut(self)
    }

    fn now(&self) -> SimTime {
        ChordSystem::now(self)
    }

    fn advance_to(&mut self, at: SimTime) {
        ChordSystem::advance_to(self, at);
    }

    fn set_latency_model(&mut self, model: LatencyModel) {
        ChordSystem::set_latency_model(self, model);
    }

    fn estimated_state_bytes(&self) -> u64 {
        ChordSystem::estimated_state_bytes(self)
    }

    fn set_trace(&mut self, config: TraceConfig) {
        ChordSystem::set_trace(self, config);
    }

    fn take_trace(&mut self) -> Option<TraceBuffer> {
        ChordSystem::take_trace(self)
    }

    fn routing_snapshot(&self) -> Option<baton_net::serve::RoutingSnapshot> {
        Some(self.build_routing_snapshot())
    }

    fn join_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = ChordSystem::join_random(self).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn peers(&self) -> &[PeerId] {
        ChordSystem::peers(self)
    }

    fn leave_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = ChordSystem::leave_random(self).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn leave_peer(&mut self, peer: PeerId) -> OverlayResult<ChurnCost> {
        let report = ChordSystem::leave(self, peer).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn load_direct(&mut self, data: &[(u64, u64)]) -> bool {
        ChordSystem::load_direct(self, data);
        true
    }

    fn replication(&self) -> usize {
        ChordSystem::replication(self)
    }

    fn set_replication(&mut self, k: usize) -> OverlayResult<()> {
        ChordSystem::set_replication(self, k).map_err(op_err)
    }

    fn insert(&mut self, key: u64, value: u64) -> OverlayResult<OpCost> {
        let report = ChordSystem::insert(self, key, value).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: 0,
            nodes_visited: 1,
            balance_messages: 0,
        })
    }

    fn delete(&mut self, key: u64) -> OverlayResult<OpCost> {
        let report = ChordSystem::delete(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: 1,
            balance_messages: 0,
        })
    }

    fn search_exact(&mut self, key: u64) -> OverlayResult<OpCost> {
        let report = ChordSystem::search_exact(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: 1,
            balance_messages: 0,
        })
    }

    fn search_range(&mut self, low: u64, high: u64) -> OverlayResult<OpCost> {
        // Consistent hashing destroys key order; mirror the inherent API,
        // which returns `None` for range queries.
        debug_assert!(ChordSystem::search_range(self, low, high).is_none());
        Err(OverlayError::Unsupported("range queries on a DHT"))
    }

    fn validate(&self) -> Result<(), String> {
        ChordSystem::validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chord_through_the_trait_supports_exact_but_not_range() {
        let mut overlay: Box<dyn Overlay> = Box::new(ChordSystem::build(1, 40).unwrap());
        assert_eq!(overlay.name(), "Chord");
        assert!(!overlay.capabilities().range_queries);

        overlay.insert(42, 7).unwrap();
        assert_eq!(overlay.search_exact(42).unwrap().matches, 1);
        assert!(matches!(
            overlay.search_range(0, 100),
            Err(OverlayError::Unsupported(_))
        ));
        assert!(overlay.fail_random().is_err());

        let join = overlay.join_random().unwrap();
        assert!(join.locate_messages >= 1);
        overlay.leave_random().unwrap();
        assert_eq!(overlay.node_count(), 40);
        overlay.validate().unwrap();
    }
}
