//! # baton-chord — Chord DHT baseline
//!
//! A from-scratch implementation of the Chord distributed hash table
//! (Stoica, Morris, Karger, Kaashoek, Balakrishnan — SIGCOMM 2001), built on
//! the same simulator substrate as [`baton-core`] so that the two overlays
//! can be compared message-for-message, as the BATON paper does in
//! Figure 8(a)–(d).
//!
//! Chord supports exact-match lookups in `O(log N)` messages but needs
//! `O(log² N)` messages to (re)build a joining node's finger table, and it
//! cannot answer range queries because consistent hashing destroys key
//! order — precisely the two axes on which BATON improves.
//!
//! ```
//! use baton_chord::ChordSystem;
//!
//! let mut ring = ChordSystem::build(42, 50).unwrap();
//! ring.insert(1234, 7).unwrap();
//! assert_eq!(ring.search_exact(1234).unwrap().matches, 1);
//! assert!(ring.search_range(0, 10_000).is_none()); // no range queries
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod id;
pub mod node;
pub mod overlay;
pub mod system;

pub use baton_net::Overlay;
pub use id::{ChordId, M, RING};
pub use node::{ChordNode, Finger};
pub use system::{ChordChurnReport, ChordError, ChordMessage, ChordOpReport, ChordSystem};
