//! Identifier-circle arithmetic for the Chord baseline.
//!
//! Chord places nodes and keys on a circle of `2^M` identifiers; a key is
//! stored at its *successor*, the first node clockwise from the key's
//! identifier.  All interval tests are clockwise ("does `x` lie in the arc
//! `(a, b]`?"), which is what this module implements.

/// Number of bits of the identifier circle.  `2^32` identifiers comfortably
/// exceeds the paper's largest experiment (10,000 nodes, 10,000,000 keys).
pub const M: u32 = 32;

/// Size of the identifier space.
pub const RING: u64 = 1 << M;

/// A point on the Chord identifier circle, always `< 2^M`.
///
/// Stored as a `u32` — the full `2^32` circle fits exactly — so a
/// [`Finger`](crate::node::Finger) (id + peer + id) packs into 12 bytes
/// instead of 24.  All arithmetic still runs in `u64` (via
/// [`value`](ChordId::value)) to keep the wraparound math overflow-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(transparent)]
pub struct ChordId(u32);

impl ChordId {
    /// Wraps an arbitrary value onto the circle.
    pub fn new(value: u64) -> Self {
        ChordId((value % RING) as u32)
    }

    /// Hashes an arbitrary key onto the circle (SplitMix64 finalizer —
    /// deterministic, uniform, and dependency-free).
    pub fn hash(key: u64) -> Self {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ChordId((z % RING) as u32)
    }

    /// The raw identifier value, widened to the `u64` arithmetic domain.
    pub fn value(self) -> u64 {
        u64::from(self.0)
    }

    /// The raw identifier value in its compact storage width.
    pub fn compact(self) -> u32 {
        self.0
    }

    /// `self + 2^k` on the circle: the start of the `k`-th finger interval.
    pub fn finger_start(self, k: u32) -> ChordId {
        ChordId::new(self.value() + (1u64 << k))
    }

    /// Clockwise distance from `self` to `other`.
    pub fn distance_to(self, other: ChordId) -> u64 {
        (other.value() + RING - self.value()) % RING
    }

    /// `true` if `self` lies in the clockwise-open interval `(from, to)`.
    pub fn in_open_interval(self, from: ChordId, to: ChordId) -> bool {
        if from == to {
            // The whole circle except `from` itself.
            self != from
        } else {
            from.distance_to(self) > 0 && from.distance_to(self) < from.distance_to(to)
        }
    }

    /// `true` if `self` lies in the clockwise half-open interval `(from, to]`.
    pub fn in_half_open_interval(self, from: ChordId, to: ChordId) -> bool {
        if from == to {
            true
        } else {
            let d = from.distance_to(self);
            d > 0 && d <= from.distance_to(to)
        }
    }
}

impl std::fmt::Display for ChordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "id:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_wraps_values_onto_the_circle() {
        assert_eq!(ChordId::new(0).value(), 0);
        assert_eq!(ChordId::new(RING).value(), 0);
        assert_eq!(ChordId::new(RING + 5).value(), 5);
    }

    #[test]
    fn hash_is_deterministic_and_spread_out() {
        let a = ChordId::hash(1);
        let b = ChordId::hash(2);
        assert_eq!(a, ChordId::hash(1));
        assert_ne!(a, b);
        assert!(a.value() < RING);
    }

    #[test]
    fn finger_start_wraps() {
        let id = ChordId::new(RING - 1);
        assert_eq!(id.finger_start(0), ChordId::new(0));
        assert_eq!(ChordId::new(0).finger_start(3), ChordId::new(8));
    }

    #[test]
    fn distance_is_clockwise() {
        let a = ChordId::new(10);
        let b = ChordId::new(20);
        assert_eq!(a.distance_to(b), 10);
        assert_eq!(b.distance_to(a), RING - 10);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn interval_tests_handle_wraparound() {
        let a = ChordId::new(RING - 5);
        let b = ChordId::new(5);
        assert!(ChordId::new(0).in_open_interval(a, b));
        assert!(ChordId::new(RING - 1).in_open_interval(a, b));
        assert!(!ChordId::new(5).in_open_interval(a, b));
        assert!(ChordId::new(5).in_half_open_interval(a, b));
        assert!(!ChordId::new(6).in_half_open_interval(a, b));
        assert!(!a.in_open_interval(a, b));
    }

    #[test]
    fn degenerate_interval_is_whole_circle() {
        let a = ChordId::new(7);
        assert!(ChordId::new(8).in_open_interval(a, a));
        assert!(!a.in_open_interval(a, a));
        assert!(ChordId::new(8).in_half_open_interval(a, a));
        assert!(a.in_half_open_interval(a, a));
    }

    // Seeded stand-ins for the old proptest properties.
    #[test]
    fn prop_half_open_contains_endpoint() {
        let mut rng = baton_net::SimRng::seeded(0x0D1D);
        for _ in 0..1000 {
            let from = ChordId::new(rng.uniform_u64(0, RING));
            let to = ChordId::new(rng.uniform_u64(0, RING));
            assert!(to.in_half_open_interval(from, to));
            assert!(!from.in_open_interval(from, to));
        }
    }

    #[test]
    fn prop_distance_roundtrip() {
        let mut rng = baton_net::SimRng::seeded(0xD157);
        for _ in 0..1000 {
            let a = ChordId::new(rng.uniform_u64(0, RING));
            let b = ChordId::new(rng.uniform_u64(0, RING));
            assert_eq!((a.distance_to(b) + b.distance_to(a)) % RING, 0);
        }
    }
}
