//! The Chord overlay simulation used as the paper's comparison baseline.
//!
//! This is a from-scratch Chord (Stoica et al., SIGCOMM 2001) sized for the
//! message-count comparisons in Figure 8 of the BATON paper:
//!
//! * lookups route iteratively through finger tables in `O(log N)` messages;
//! * a join finds its successor with one lookup and then builds its finger
//!   table with further lookups — `O(log² N)` maintenance messages, the cost
//!   the BATON paper contrasts with its own `O(log N)` table updates;
//! * a departure hands its keys to its successor and the nodes whose fingers
//!   pointed at it repair them with fresh lookups;
//! * exact-match queries hash the key and look up its successor; range
//!   queries are *not* supported (hashing destroys key order), which is the
//!   motivation for BATON.

use std::collections::{HashMap, HashSet};

use baton_net::{LinkKind, NetMessage, OpScope, PeerId, SimNetwork, SimRng};

use crate::id::{ChordId, M};
use crate::node::{ChordNode, Finger};

/// Protocol messages of the Chord baseline (used for message accounting).
#[derive(Clone, Debug)]
pub enum ChordMessage {
    /// A lookup request being forwarded.
    Lookup,
    /// Final answer of a lookup.
    LookupAnswer,
    /// Join / leave notifications (successor, predecessor, key transfer).
    Maintenance,
    /// Data operation delivered to the owner.
    Data,
}

impl NetMessage for ChordMessage {
    fn kind(&self) -> &'static str {
        match self {
            ChordMessage::Lookup => "chord.lookup",
            ChordMessage::LookupAnswer => "chord.lookup_answer",
            ChordMessage::Maintenance => "chord.maintenance",
            ChordMessage::Data => "chord.data",
        }
    }
}

/// Errors returned by the Chord baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChordError {
    /// The referenced peer does not exist.
    UnknownPeer(PeerId),
    /// The ring is empty.
    EmptyRing,
    /// The last node cannot leave.
    LastNode,
    /// The requested replication degree is outside the supported range.
    ReplicationUnsupported(usize),
}

impl std::fmt::Display for ChordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChordError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            ChordError::EmptyRing => write!(f, "the ring is empty"),
            ChordError::LastNode => write!(f, "the last node cannot leave"),
            ChordError::ReplicationUnsupported(k) => write!(
                f,
                "replication degree {k} outside 1..={}",
                ChordSystem::MAX_REPLICATION
            ),
        }
    }
}

impl std::error::Error for ChordError {}

/// Result alias for Chord operations.
pub type Result<T> = std::result::Result<T, ChordError>;

/// Cost report of a Chord join or departure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChordChurnReport {
    /// Messages to locate the join point (successor lookup); zero for
    /// departures.
    pub locate_messages: u64,
    /// Messages to build / repair routing state (finger tables, successor
    /// and predecessor pointers, key transfer).
    pub update_messages: u64,
}

/// Cost report of a Chord lookup-based operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChordOpReport {
    /// Messages used.
    pub messages: u64,
    /// Overlay hops of the lookup.
    pub hops: u32,
    /// Number of matching values found (exact query only).
    pub matches: usize,
}

/// A Chord ring over the shared simulator substrate.
#[derive(Debug)]
pub struct ChordSystem {
    net: SimNetwork<ChordMessage>,
    nodes: HashMap<PeerId, ChordNode>,
    /// Every live peer, kept sorted by [`PeerId`] — the order the old
    /// collect-and-sort `random_peer` sampled from, so seeded experiments
    /// keep their exact message counts while sampling is O(1).
    peer_list: Vec<PeerId>,
    /// Ring identifiers of the *live* nodes: the collision set of
    /// [`fresh_id`](Self::fresh_id).  Kept in lockstep with `nodes` (ids of
    /// departed peers are released) so the seeded draw sequence is
    /// bit-identical to the old scan over live nodes.  Stored in the id's
    /// compact `u32` width — the full `2^32` circle fits — which halves
    /// the set's key footprint at million-node scale.
    used_ids: HashSet<u32>,
    rng: SimRng,
    /// Replication degree k: each key lives at its successor owner plus the
    /// k−1 following ring successors.  1 = no replication (the default and
    /// the byte-identical legacy configuration).
    replication: usize,
}

impl ChordSystem {
    /// Creates an empty ring.
    pub fn new(seed: u64) -> Self {
        Self {
            net: SimNetwork::new(),
            nodes: HashMap::new(),
            peer_list: Vec::new(),
            used_ids: HashSet::new(),
            rng: SimRng::seeded(seed),
            replication: 1,
        }
    }

    /// Builds a ring of `n` nodes.
    pub fn build(seed: u64, n: usize) -> Result<Self> {
        let mut system = Self::new(seed);
        for _ in 0..n {
            system.join_random()?;
        }
        Ok(system)
    }

    /// Builds a ring of `n` nodes directly, without running the join
    /// protocol: identifiers are drawn up front, the ring order is one
    /// sort, and every finger is resolved by binary search over the sorted
    /// identifiers.  `O(N (log N + M))` arithmetic instead of the join
    /// path's `O(N log² N)` simulated lookups; no messages are charged.
    ///
    /// The result passes [`validate`](Self::validate) and behaves like a
    /// join-built ring under all subsequent operations, but is not
    /// byte-identical to one (identifier draw order differs), so the bulk
    /// path is opt-in — committed fixtures always use [`build`](Self::build).
    pub fn bulk_build(seed: u64, n: usize) -> Result<Self> {
        let mut system = Self::new(seed);
        if n == 0 {
            return Ok(system);
        }
        let peers: Vec<PeerId> = (0..n).map(|_| system.net.add_peer()).collect();
        let ids: Vec<ChordId> = (0..n)
            .map(|_| {
                let id = system.fresh_id();
                // Reserve immediately so later draws cannot collide;
                // register_node's insert is idempotent.
                system.used_ids.insert(id.compact());
                id
            })
            .collect();

        // Ring order and each node's ring position.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| ids[i]);
        let mut rank = vec![0usize; n];
        for (position, &i) in order.iter().enumerate() {
            rank[i] = position;
        }
        let sorted_ids: Vec<ChordId> = order.iter().map(|&i| ids[i]).collect();
        // The ring position owning `id`: the first node at or after it,
        // wrapping past the top of the circle.
        let successor_position = |id: ChordId| match sorted_ids.binary_search(&id) {
            Ok(k) => k,
            Err(k) if k == n => 0,
            Err(k) => k,
        };

        for i in 0..n {
            let position = rank[i];
            let prev = order[(position + n - 1) % n];
            let next = order[(position + 1) % n];
            let mut node = ChordNode::solo(peers[i], ids[i]);
            node.successor = (peers[next], ids[next]);
            node.predecessor = (peers[prev], ids[prev]);
            for k in 0..M {
                let start = ids[i].finger_start(k);
                let owner = order[successor_position(start)];
                node.fingers[k as usize] = Some(Finger {
                    start,
                    node: peers[owner],
                    node_id: ids[owner],
                });
            }
            system.register_node(peers[i], node);
        }
        Ok(system)
    }

    /// Places `data` directly into the owning nodes' stores without running
    /// lookups — the data-load analogue of [`bulk_build`](Self::bulk_build).
    /// Each key hashes to its ring identifier and lands at that
    /// identifier's successor, the same node a routed insert reaches; no
    /// messages are charged.
    pub fn load_direct(&mut self, data: &[(u64, u64)]) {
        if self.nodes.is_empty() {
            return;
        }
        let mut ring: Vec<(ChordId, PeerId)> = self
            .nodes
            .iter()
            .map(|(&peer, node)| (node.id, peer))
            .collect();
        ring.sort_unstable();
        // One stable sort by ring identifier, then a merge-style pass with
        // a monotonic cursor (wrapping the top of the circle back to the
        // first node) — every node's items arrive while it is cache-hot.
        // The stable sort keeps identifier collisions in dataset order, so
        // per-key value order matches a routed load exactly.
        let mut items: Vec<(ChordId, u64)> = data
            .iter()
            .map(|&(key, value)| (ChordId::hash(key), value))
            .collect();
        items.sort_by_key(|&(id, _)| id);
        let mut cursor = 0usize;
        for &(id, value) in &items {
            while cursor < ring.len() && ring[cursor].0 < id {
                cursor += 1;
            }
            let slot = if cursor == ring.len() { 0 } else { cursor };
            if let Some(node) = self.nodes.get_mut(&ring[slot].1) {
                node.store.entry(id.value()).or_default().push(value);
            }
        }
    }

    /// Number of nodes in the ring.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident bytes of per-peer protocol state: the node map
    /// (hash-table slots at the ~8/7 load-factor reciprocal), every node's
    /// finger table and key store, the sampling list and the live-id set.
    /// The shared network substrate is excluded.
    ///
    /// The hash-table components are modelled from `len()`, not
    /// `capacity()`: after delete/insert churn the table's allocated
    /// capacity depends on the per-process `RandomState` seed (rehash in
    /// place vs. grow is decided by where hashes land), and this estimate
    /// is sampled into deterministic scenario time series.
    pub fn estimated_state_bytes(&self) -> u64 {
        let slot = std::mem::size_of::<(PeerId, ChordNode)>() as u64 + 1;
        let map = self.nodes.len() as u64 * slot * 8 / 7;
        let heap: u64 = self
            .nodes
            .values()
            .map(|node| node.estimated_state_bytes() - std::mem::size_of::<ChordNode>() as u64)
            .sum();
        let peers = (self.peer_list.capacity() * std::mem::size_of::<PeerId>()) as u64;
        let ids = self.used_ids.len() as u64 * (std::mem::size_of::<u32>() as u64 + 1) * 8 / 7;
        map + heap + peers + ids
    }

    /// All peers in the ring, sorted by id — a borrowed view of the
    /// sampling list.
    pub fn peers(&self) -> &[PeerId] {
        &self.peer_list
    }

    /// Network statistics.
    pub fn stats(&self) -> &baton_net::MessageStats {
        self.net.stats()
    }

    /// Mutable network statistics (harnesses reset per-peer counters
    /// between experiment phases).
    pub fn stats_mut(&mut self) -> &mut baton_net::MessageStats {
        self.net.stats_mut()
    }

    /// Virtual time the ring's network has reached.
    pub fn now(&self) -> baton_net::SimTime {
        self.net.now()
    }

    /// Advances the network's arrival clock (see
    /// [`baton_net::SimNetwork::advance_to`]).
    pub fn advance_to(&mut self, at: baton_net::SimTime) {
        self.net.advance_to(at);
    }

    /// Installs a route recorder on the underlying network (see
    /// [`SimNetwork::set_trace`](baton_net::SimNetwork::set_trace)).
    pub fn set_trace(&mut self, config: baton_net::TraceConfig) {
        self.net.set_trace(config);
    }

    /// Removes and returns the route recorder, disabling tracing.
    pub fn take_trace(&mut self) -> Option<baton_net::TraceBuffer> {
        self.net.take_trace()
    }

    /// Replaces the network's link-latency model.
    pub fn set_latency_model(&mut self, model: baton_net::LatencyModel) {
        self.net.set_latency_model(model);
    }

    /// Total number of stored values.
    pub fn total_items(&self) -> usize {
        self.nodes.values().map(ChordNode::load).sum()
    }

    fn random_peer(&mut self) -> Option<PeerId> {
        if self.peer_list.is_empty() {
            return None;
        }
        let idx = self.rng.index(self.peer_list.len());
        Some(self.peer_list[idx])
    }

    /// Adds `peer` to the node map and the sorted sampling list, reserving
    /// its ring identifier.  `used_ids` is only updated here and in
    /// [`unregister_node`](Self::unregister_node) so it stays in lockstep
    /// with the live nodes even when a join fails after drawing an id.
    fn register_node(&mut self, peer: PeerId, node: ChordNode) {
        // New peers come from the registry's monotonically increasing id
        // counter, so in the common case the peer sorts after everything in
        // the list and registration is an O(1) push; the binary-search
        // fallback covers re-registrations (e.g. a failed join retried).
        match self.peer_list.last() {
            Some(&last) if peer > last => self.peer_list.push(peer),
            None => self.peer_list.push(peer),
            _ => {
                if let Err(idx) = self.peer_list.binary_search(&peer) {
                    self.peer_list.insert(idx, peer);
                }
            }
        }
        self.used_ids.insert(node.id.compact());
        self.nodes.insert(peer, node);
    }

    /// Removes `peer` from the node map and the sampling list, releasing
    /// its ring identifier.
    fn unregister_node(&mut self, peer: PeerId) -> Option<ChordNode> {
        if let Ok(idx) = self.peer_list.binary_search(&peer) {
            self.peer_list.remove(idx);
        }
        let node = self.nodes.remove(&peer)?;
        self.used_ids.remove(&node.id.compact());
        Some(node)
    }

    /// Draws an unused ring identifier.
    ///
    /// Expected O(1): a draw collides with probability `n / 2^32`, so even
    /// a million-node ring rejects ~0.02% of draws.  The saturation guard
    /// turns the (astronomically remote) full-circle case into a clean
    /// panic instead of an unbounded spin, and the draw itself —
    /// `uniform_u64(0, RING)` — is unchanged from the wide-id substrate so
    /// every seeded experiment keeps its exact id sequence.
    fn fresh_id(&mut self) -> ChordId {
        assert!(
            (self.used_ids.len() as u64) < crate::id::RING,
            "chord identifier circle exhausted"
        );
        loop {
            let raw = self.rng.uniform_u64(0, crate::id::RING);
            if !self.used_ids.contains(&(raw as u32)) {
                return ChordId::new(raw);
            }
        }
    }

    fn node(&self, peer: PeerId) -> Result<&ChordNode> {
        self.nodes.get(&peer).ok_or(ChordError::UnknownPeer(peer))
    }

    fn node_mut(&mut self, peer: PeerId) -> Result<&mut ChordNode> {
        self.nodes
            .get_mut(&peer)
            .ok_or(ChordError::UnknownPeer(peer))
    }

    /// Iterative lookup of the successor of `target`, starting at `issuer`.
    /// Returns `(owner, messages, hops)`.
    fn lookup(
        &mut self,
        op: OpScope,
        issuer: PeerId,
        target: ChordId,
    ) -> Result<(PeerId, u64, u32)> {
        let mut current = issuer;
        let mut messages = 0u64;
        let mut hops = 0u32;
        let limit = 4 * M + 32;
        loop {
            let node = self.node(current)?;
            if node.owns(target) {
                return Ok((current, messages, hops));
            }
            if target.in_half_open_interval(node.id, node.successor.1) {
                let successor = node.successor.0;
                self.net
                    .send_with_kind(
                        op,
                        current,
                        successor,
                        hops + 1,
                        LinkKind::Successor,
                        ChordMessage::Lookup,
                    )
                    .ok();
                let _ = self.net.deliver_next();
                messages += 1;
                hops += 1;
                return Ok((successor, messages, hops));
            }
            let (next, kind) = match node.closest_preceding(target) {
                Some((p, _)) => (p, LinkKind::Finger),
                None => (node.successor.0, LinkKind::Successor),
            };
            self.net
                .send_with_kind(op, current, next, hops + 1, kind, ChordMessage::Lookup)
                .ok();
            let _ = self.net.deliver_next();
            messages += 1;
            hops += 1;
            current = next;
            if hops > limit {
                // Routing state corrupted; fall back to the successor chain.
                return Ok((current, messages, hops));
            }
        }
    }

    /// A new node joins the ring through a random existing node.
    pub fn join_random(&mut self) -> Result<ChordChurnReport> {
        let contact = self.random_peer();
        self.join(contact)
    }

    /// A new node joins the ring through `contact` (`None` bootstraps the
    /// first node).
    pub fn join(&mut self, contact: Option<PeerId>) -> Result<ChordChurnReport> {
        let peer = self.net.add_peer();
        let id = self.fresh_id();
        let op = self.net.begin_op("chord.join");

        let Some(contact) = contact else {
            self.register_node(peer, ChordNode::solo(peer, id));
            self.net.finish_op(op);
            return Ok(ChordChurnReport::default());
        };

        // Locate the successor of the new identifier.
        let (successor_peer, locate_messages, _) = self.lookup(op, contact, id)?;
        let (successor_id, predecessor_peer, predecessor_id) = {
            let s = self.node(successor_peer)?;
            (s.id, s.predecessor.0, s.predecessor.1)
        };

        // Splice into the ring.
        let mut update_messages = 0u64;
        let mut new_node = ChordNode::solo(peer, id);
        new_node.successor = (successor_peer, successor_id);
        new_node.predecessor = (predecessor_peer, predecessor_id);
        // Transfer the keys in (predecessor, id] from the successor.
        let moved: Vec<(u64, Vec<u64>)> = {
            let successor = self.node_mut(successor_peer)?;
            let keys: Vec<u64> = successor
                .store
                .keys()
                .copied()
                .filter(|k| ChordId::new(*k).in_half_open_interval(predecessor_id, id))
                .collect();
            keys.into_iter()
                .map(|k| (k, successor.store.remove(&k).unwrap_or_default()))
                .collect()
        };
        for (k, vs) in moved {
            new_node.store.insert(k, vs);
        }
        self.register_node(peer, new_node);
        // Notify successor and predecessor (plus the key transfer message).
        self.net
            .count_message(op, "chord.maintenance", peer, successor_peer);
        self.net
            .count_message(op, "chord.maintenance", peer, predecessor_peer);
        self.net
            .count_message(op, "chord.maintenance", successor_peer, peer);
        update_messages += 3;
        self.node_mut(successor_peer)?.predecessor = (peer, id);
        self.node_mut(predecessor_peer)?.successor = (peer, id);

        // Build the finger table: one lookup per distinct finger interval
        // (reusing the previous finger when it already covers the next
        // interval, the standard optimisation) — O(log² N) messages.
        let mut previous: Option<Finger> = None;
        for k in 0..M {
            let start = id.finger_start(k);
            if let Some(prev) = previous {
                if start.in_half_open_interval(id, prev.node_id) {
                    let finger = Finger {
                        start,
                        node: prev.node,
                        node_id: prev.node_id,
                    };
                    self.node_mut(peer)?.fingers[k as usize] = Some(finger);
                    previous = Some(finger);
                    continue;
                }
            }
            let (owner, msgs, _) = self.lookup(op, peer, start)?;
            update_messages += msgs;
            let owner_id = self.node(owner)?.id;
            let finger = Finger {
                start,
                node: owner,
                node_id: owner_id,
            };
            self.node_mut(peer)?.fingers[k as usize] = Some(finger);
            previous = Some(finger);
        }

        // `update_others`: existing nodes whose `i`-th finger interval now
        // starts at or before the new identifier must repoint that finger at
        // the new node.  For each finger index this is one lookup (to find
        // the last node preceding `id − 2^i`) plus a walk back through
        // predecessors — the O(log² N) maintenance term of the Chord join
        // that the BATON paper contrasts with its own O(log N) updates.
        for i in 0..M {
            let target =
                ChordId::new((id.value() + crate::id::RING - (1u64 << i)) % crate::id::RING);
            let (succ, msgs, _) = self.lookup(op, peer, target)?;
            update_messages += msgs;
            let mut current = self.node(succ)?.predecessor.0;
            let mut walked = 0u32;
            loop {
                if current == peer {
                    break;
                }
                let (start, finger_node_id, predecessor) = {
                    let node = self.node(current)?;
                    let start = node.id.finger_start(i);
                    let finger_node_id = node.fingers[i as usize]
                        .map(|f| f.node_id)
                        .unwrap_or(node.successor.1);
                    (start, finger_node_id, node.predecessor.0)
                };
                // The new node becomes this node's i-th finger if it lies in
                // [start, current finger target).
                let improves = id == start || id.in_open_interval(start, finger_node_id);
                if !improves {
                    break;
                }
                self.net
                    .count_message(op, "chord.maintenance", peer, current);
                update_messages += 1;
                self.node_mut(current)?.fingers[i as usize] = Some(Finger {
                    start,
                    node: peer,
                    node_id: id,
                });
                current = predecessor;
                walked += 1;
                if walked > M * 4 {
                    break;
                }
            }
        }

        self.net.finish_op(op);
        Ok(ChordChurnReport {
            locate_messages,
            update_messages,
        })
    }

    /// A node leaves the ring gracefully: keys go to its successor,
    /// neighbours re-link, and every stale finger pointing at it is repaired
    /// with a fresh lookup.
    pub fn leave(&mut self, peer: PeerId) -> Result<ChordChurnReport> {
        if self.nodes.len() <= 1 {
            return Err(ChordError::LastNode);
        }
        let op = self.net.begin_op("chord.leave");
        let departing = self
            .unregister_node(peer)
            .ok_or(ChordError::UnknownPeer(peer))?;
        let mut update_messages = 0u64;

        // Hand keys to the successor, re-link predecessor and successor.
        let (succ_peer, succ_id) = departing.successor;
        let (pred_peer, pred_id) = departing.predecessor;
        {
            let successor = self.node_mut(succ_peer)?;
            for (k, vs) in &departing.store {
                successor
                    .store
                    .entry(*k)
                    .or_default()
                    .extend(vs.iter().copied());
            }
            successor.predecessor = (pred_peer, pred_id);
        }
        self.node_mut(pred_peer)?.successor = (succ_peer, succ_id);
        self.net
            .count_message(op, "chord.maintenance", peer, succ_peer);
        self.net
            .count_message(op, "chord.maintenance", peer, pred_peer);
        update_messages += 2;
        self.net.depart_peer(peer);

        // Repair stale fingers: every node that pointed at the departed peer
        // re-runs a lookup for that finger interval.
        let stale: Vec<(PeerId, usize, ChordId)> = self
            .nodes
            .iter()
            .flat_map(|(p, n)| {
                n.fingers.iter().enumerate().filter_map(move |(k, f)| {
                    f.as_ref()
                        .filter(|f| f.node == peer)
                        .map(|f| (*p, k, f.start))
                })
            })
            .collect();
        for (holder, k, start) in stale {
            let (owner, msgs, _) = self.lookup(op, holder, start)?;
            update_messages += msgs;
            let owner_id = self.node(owner)?.id;
            self.node_mut(holder)?.fingers[k] = Some(Finger {
                start,
                node: owner,
                node_id: owner_id,
            });
        }
        // Successor pointers referencing the departed node are repaired for
        // free by the predecessor update above; predecessor pointers at
        // other nodes cannot reference it.

        self.net.finish_op(op);
        Ok(ChordChurnReport {
            locate_messages: 0,
            update_messages,
        })
    }

    /// A random node leaves the ring.
    pub fn leave_random(&mut self) -> Result<ChordChurnReport> {
        let peer = self.random_peer().ok_or(ChordError::EmptyRing)?;
        self.leave(peer)
    }

    /// The replication degree k in effect (1 = no replication).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Highest replication degree the successor-list placement supports.
    pub const MAX_REPLICATION: usize = 8;

    /// Sets the replication degree: each key's k−1 extra copies live on the
    /// owner's ring successors.
    pub fn set_replication(&mut self, k: usize) -> Result<()> {
        if k == 0 || k > Self::MAX_REPLICATION {
            return Err(ChordError::ReplicationUnsupported(k));
        }
        self.replication = k;
        Ok(())
    }

    /// The k−1 ring successors holding the replica copies of `peer`'s keys.
    /// Empty at k = 1.
    pub fn replica_targets(&self, peer: PeerId) -> Vec<PeerId> {
        if self.replication <= 1 {
            return Vec::new();
        }
        let mut targets = Vec::new();
        let mut current = peer;
        for _ in 0..self.replication - 1 {
            let Some(node) = self.nodes.get(&current) else {
                break;
            };
            let successor = node.successor.0;
            if successor == peer || targets.contains(&successor) {
                break;
            }
            targets.push(successor);
            current = successor;
        }
        targets
    }

    /// Charges the replica-copy messages a write at `owner` costs at k > 1.
    fn charge_replica_copies(&mut self, op: OpScope, owner: PeerId) -> u64 {
        let mut copies = 0u64;
        for target in self.replica_targets(owner) {
            self.net.count_message(op, "chord.replica", owner, target);
            copies += 1;
        }
        copies
    }

    /// Inserts `value` under `key` (hashed onto the ring).
    pub fn insert(&mut self, key: u64, value: u64) -> Result<ChordOpReport> {
        let issuer = self.random_peer().ok_or(ChordError::EmptyRing)?;
        let op = self.net.begin_op("chord.insert");
        let id = ChordId::hash(key);
        let (owner, mut messages, hops) = self.lookup(op, issuer, id)?;
        self.net.count_message(op, "chord.data", issuer, owner);
        messages += 1;
        self.node_mut(owner)?
            .store
            .entry(id.value())
            .or_default()
            .push(value);
        messages += self.charge_replica_copies(op, owner);
        self.net.finish_op(op);
        Ok(ChordOpReport {
            messages,
            hops,
            matches: 0,
        })
    }

    /// Deletes one value stored under `key`.
    pub fn delete(&mut self, key: u64) -> Result<ChordOpReport> {
        let issuer = self.random_peer().ok_or(ChordError::EmptyRing)?;
        let op = self.net.begin_op("chord.delete");
        let id = ChordId::hash(key);
        let (owner, mut messages, hops) = self.lookup(op, issuer, id)?;
        self.net.count_message(op, "chord.data", issuer, owner);
        messages += 1;
        let removed = {
            let node = self.node_mut(owner)?;
            match node.store.get_mut(&id.value()) {
                Some(vs) => {
                    let removed = vs.pop().is_some();
                    if vs.is_empty() {
                        node.store.remove(&id.value());
                    }
                    removed
                }
                None => false,
            }
        };
        if removed {
            messages += self.charge_replica_copies(op, owner);
        }
        self.net.finish_op(op);
        Ok(ChordOpReport {
            messages,
            hops,
            matches: usize::from(removed),
        })
    }

    /// Exact-match query for `key`.
    pub fn search_exact(&mut self, key: u64) -> Result<ChordOpReport> {
        let issuer = self.random_peer().ok_or(ChordError::EmptyRing)?;
        let op = self.net.begin_op("chord.search");
        let id = ChordId::hash(key);
        let (owner, messages, hops) = self.lookup(op, issuer, id)?;
        let matches = self
            .node(owner)?
            .store
            .get(&id.value())
            .map(Vec::len)
            .unwrap_or(0);
        self.net.finish_op(op);
        Ok(ChordOpReport {
            messages,
            hops,
            matches,
        })
    }

    /// Chord cannot answer range queries natively (hashing destroys key
    /// order); this always returns `None`, mirroring the paper's
    /// observation.  The harness plots BATON and the multiway tree only.
    pub fn search_range(&mut self, _low: u64, _high: u64) -> Option<ChordOpReport> {
        None
    }

    /// Verifies ring invariants: successor/predecessor pointers are mutually
    /// consistent and the identifiers strictly increase around the ring.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        for (peer, node) in &self.nodes {
            let succ = self
                .nodes
                .get(&node.successor.0)
                .ok_or_else(|| format!("{peer} successor {} missing", node.successor.0))?;
            if succ.predecessor.0 != *peer {
                return Err(format!(
                    "{peer} successor {} does not point back",
                    node.successor.0
                ));
            }
            let pred = self
                .nodes
                .get(&node.predecessor.0)
                .ok_or_else(|| format!("{peer} predecessor {} missing", node.predecessor.0))?;
            if pred.successor.0 != *peer {
                return Err(format!(
                    "{peer} predecessor {} does not point forward",
                    node.predecessor.0
                ));
            }
        }
        // Walking successors from any node must visit every node exactly once.
        let start = *self.nodes.keys().next().unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut current = start;
        for _ in 0..self.nodes.len() {
            if !seen.insert(current) {
                return Err("successor cycle shorter than the ring".into());
            }
            current = self.nodes[&current].successor.0;
        }
        if current != start {
            return Err("successor walk does not return to the start".into());
        }
        Ok(())
    }

    /// Builds a [`baton_net::serve::RoutingSnapshot`] of the ring's current
    /// state for the concurrent serve front-end: slots are the live nodes
    /// in ascending identifier order (successor placement resolves a hashed
    /// key to the first slot with `id >= hash`, wrapping), items are each
    /// node's store keyed by identifier, links carry the successor and
    /// finger tables, and replicas are the `k−1` following ring successors.
    /// Extraction is read-only: statistics and RNG streams are untouched.
    pub fn build_routing_snapshot(&self) -> baton_net::serve::RoutingSnapshot {
        use baton_net::serve::{ExactPlacement, SnapshotBuilder};

        let mut builder = SnapshotBuilder::new(
            "Chord",
            ExactPlacement::HashedRing,
            false,
            (0, crate::id::RING),
        );
        let mut order: Vec<&ChordNode> = self.nodes.values().collect();
        order.sort_by_key(|node| node.id);
        for node in &order {
            builder.push_slot(node.peer.0, node.id.value(), true);
            for (id_value, values) in &node.store {
                builder.push_item(*id_value, values.len() as u64);
            }
            builder.seal_slot();
        }
        for (slot, node) in order.iter().enumerate() {
            if let Some(target) = builder.slot_of(node.successor.0 .0) {
                builder.link(slot, target, LinkKind::Successor);
            }
            for finger in node.fingers.iter().flatten() {
                if let Some(target) = builder.slot_of(finger.node.0) {
                    builder.link(slot, target, LinkKind::Finger);
                }
            }
            for target in self.replica_targets(node.peer) {
                if let Some(t) = builder.slot_of(target.0) {
                    builder.replica(slot, t);
                }
            }
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_a_consistent_ring() {
        for n in [1usize, 2, 5, 32, 100] {
            let system = ChordSystem::build(7, n).unwrap();
            assert_eq!(system.node_count(), n);
            system
                .validate()
                .unwrap_or_else(|e| panic!("{n}-node ring invalid: {e}"));
        }
    }

    #[test]
    fn bulk_build_produces_a_consistent_ring() {
        for n in [0usize, 1, 2, 5, 32, 100] {
            let system = ChordSystem::bulk_build(7, n).unwrap();
            assert_eq!(system.node_count(), n);
            system
                .validate()
                .unwrap_or_else(|e| panic!("bulk {n}-node ring invalid: {e}"));
            assert_eq!(
                system.stats().total_sent(),
                0,
                "bulk build charged messages"
            );
        }
    }

    #[test]
    fn bulk_built_ring_answers_lookups_and_survives_churn() {
        let mut system = ChordSystem::bulk_build(11, 64).unwrap();
        let log_n = (system.node_count() as f64).log2();
        for key in [1u64, 500, 999_999] {
            system.insert(key, key * 2).unwrap();
            let found = system.search_exact(key).unwrap();
            assert_eq!(found.matches, 1, "key {key} not found");
            assert!((found.messages as f64) <= 3.0 * log_n + 8.0);
        }
        system.join_random().unwrap();
        system.leave_random().unwrap();
        system.validate().unwrap();
        assert_eq!(system.total_items(), 3);
    }

    #[test]
    fn direct_load_places_keys_at_the_lookup_owner() {
        let mut direct = ChordSystem::bulk_build(5, 64).unwrap();
        let mut routed = ChordSystem::bulk_build(5, 64).unwrap();
        let data: Vec<(u64, u64)> = (0..200u64).map(|i| (1 + i * 4_999_999, i)).collect();
        direct.load_direct(&data);
        for &(k, v) in &data {
            routed.insert(k, v).unwrap();
        }
        assert_eq!(direct.total_items(), data.len());
        assert_eq!(
            direct.stats().total_sent(),
            0,
            "direct load charged messages"
        );
        for &(k, _) in &data {
            assert_eq!(
                direct.search_exact(k).unwrap().matches,
                routed.search_exact(k).unwrap().matches,
                "key {k} diverged between direct and routed load"
            );
        }
    }

    #[test]
    fn lookups_are_logarithmic() {
        let mut system = ChordSystem::build(11, 256).unwrap();
        let log_n = (system.node_count() as f64).log2();
        let mut total = 0u64;
        for key in 0..200u64 {
            let report = system.search_exact(key * 977).unwrap();
            total += report.messages;
            assert!(
                (report.messages as f64) <= 3.0 * log_n + 8.0,
                "lookup took {} messages",
                report.messages
            );
        }
        let avg = total as f64 / 200.0;
        assert!(
            avg <= 1.5 * log_n + 2.0,
            "average lookup cost {avg} too high"
        );
    }

    #[test]
    fn insert_then_search_finds_the_value() {
        let mut system = ChordSystem::build(3, 40).unwrap();
        for key in [1u64, 500, 999_999] {
            system.insert(key, key * 2).unwrap();
            let found = system.search_exact(key).unwrap();
            assert_eq!(found.matches, 1, "key {key} not found");
        }
        let miss = system.search_exact(123_456_789).unwrap();
        assert_eq!(miss.matches, 0);
        assert_eq!(system.total_items(), 3);
    }

    #[test]
    fn delete_removes_a_value() {
        let mut system = ChordSystem::build(5, 30).unwrap();
        system.insert(42, 1).unwrap();
        assert_eq!(system.delete(42).unwrap().matches, 1);
        assert_eq!(system.search_exact(42).unwrap().matches, 0);
        assert_eq!(system.delete(42).unwrap().matches, 0);
    }

    #[test]
    fn join_update_cost_is_superlogarithmic_but_bounded() {
        let mut system = ChordSystem::build(13, 300).unwrap();
        let log_n = (system.node_count() as f64).log2();
        let report = system.join_random().unwrap();
        assert!(report.locate_messages >= 1);
        assert!(
            (report.update_messages as f64) <= 3.0 * log_n * log_n + 40.0,
            "update cost {} too high",
            report.update_messages
        );
        system.validate().unwrap();
    }

    #[test]
    fn leaves_keep_ring_consistent_and_data_safe() {
        let mut system = ChordSystem::build(17, 60).unwrap();
        for key in 0..100u64 {
            system.insert(key, key).unwrap();
        }
        for _ in 0..30 {
            system.leave_random().unwrap();
            system.validate().unwrap();
        }
        assert_eq!(system.node_count(), 30);
        assert_eq!(system.total_items(), 100);
        for key in 0..100u64 {
            assert_eq!(system.search_exact(key).unwrap().matches, 1);
        }
    }

    #[test]
    fn last_node_cannot_leave_and_empty_ring_errors() {
        let mut system = ChordSystem::build(1, 1).unwrap();
        let peer = system.peers()[0];
        assert_eq!(system.leave(peer).unwrap_err(), ChordError::LastNode);
        let mut empty = ChordSystem::new(1);
        assert_eq!(empty.search_exact(1).unwrap_err(), ChordError::EmptyRing);
    }

    #[test]
    fn range_queries_are_unsupported() {
        let mut system = ChordSystem::build(2, 10).unwrap();
        assert!(system.search_range(0, 100).is_none());
    }
}
