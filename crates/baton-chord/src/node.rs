//! Per-peer state of the Chord baseline.

use std::collections::BTreeMap;

use baton_net::PeerId;

use crate::id::{ChordId, M};

/// A finger-table entry: the node believed to succeed `start` on the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Finger {
    /// Start of the finger interval (`n + 2^k`).
    pub start: ChordId,
    /// Peer currently believed to be the successor of `start`.
    pub node: PeerId,
    /// That peer's identifier.
    pub node_id: ChordId,
}

/// State of one Chord peer.
#[derive(Clone, Debug)]
pub struct ChordNode {
    /// The peer's network address.
    pub peer: PeerId,
    /// The peer's identifier on the ring.
    pub id: ChordId,
    /// Immediate successor (peer, id).
    pub successor: (PeerId, ChordId),
    /// Immediate predecessor (peer, id).
    pub predecessor: (PeerId, ChordId),
    /// Finger table with up to [`M`] entries.
    pub fingers: Vec<Option<Finger>>,
    /// Keys stored at this node (key identifier → original keys).
    pub store: BTreeMap<u64, Vec<u64>>,
}

impl ChordNode {
    /// Creates a node that is its own successor and predecessor (a
    /// single-node ring).
    pub fn solo(peer: PeerId, id: ChordId) -> Self {
        Self {
            peer,
            id,
            successor: (peer, id),
            predecessor: (peer, id),
            fingers: vec![None; M as usize],
            store: BTreeMap::new(),
        }
    }

    /// Number of stored values.
    pub fn load(&self) -> usize {
        self.store.values().map(Vec::len).sum()
    }

    /// Approximate resident bytes of this node's state: the struct itself,
    /// the finger table and the key store (B-tree entries plus per-key
    /// value vectors, with ~16 bytes of amortised tree overhead each).
    pub fn estimated_state_bytes(&self) -> u64 {
        let fingers = (self.fingers.capacity() * std::mem::size_of::<Option<Finger>>()) as u64;
        let entry = std::mem::size_of::<(u64, Vec<u64>)>() as u64 + 16;
        let store = self.store.len() as u64 * entry
            + self
                .store
                .values()
                .map(|v| (v.capacity() * std::mem::size_of::<u64>()) as u64)
                .sum::<u64>();
        std::mem::size_of::<Self>() as u64 + fingers + store
    }

    /// `true` if this node is responsible for identifier `id`: `id` lies in
    /// `(predecessor, self]`.
    pub fn owns(&self, id: ChordId) -> bool {
        id.in_half_open_interval(self.predecessor.1, self.id)
    }

    /// The closest preceding finger for `target`, used by the iterative
    /// lookup: the highest finger whose node id lies strictly between this
    /// node and the target.
    pub fn closest_preceding(&self, target: ChordId) -> Option<(PeerId, ChordId)> {
        for finger in self.fingers.iter().rev().flatten() {
            if finger.node_id.in_open_interval(self.id, target) {
                return Some((finger.node, finger.node_id));
            }
        }
        if self.successor.1.in_open_interval(self.id, target) {
            return Some(self.successor);
        }
        None
    }

    /// Number of occupied finger entries.
    pub fn finger_count(&self) -> usize {
        self.fingers.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_node_owns_everything() {
        let node = ChordNode::solo(PeerId(1), ChordId::new(100));
        assert!(node.owns(ChordId::new(0)));
        assert!(node.owns(ChordId::new(100)));
        assert!(node.owns(ChordId::new(u32::MAX as u64)));
        assert_eq!(node.load(), 0);
        assert_eq!(node.finger_count(), 0);
    }

    #[test]
    fn ownership_is_predecessor_exclusive_self_inclusive() {
        let mut node = ChordNode::solo(PeerId(1), ChordId::new(100));
        node.predecessor = (PeerId(2), ChordId::new(50));
        assert!(node.owns(ChordId::new(100)));
        assert!(node.owns(ChordId::new(51)));
        assert!(!node.owns(ChordId::new(50)));
        assert!(!node.owns(ChordId::new(101)));
        assert!(!node.owns(ChordId::new(0)));
    }

    #[test]
    fn closest_preceding_prefers_the_farthest_useful_finger() {
        let mut node = ChordNode::solo(PeerId(1), ChordId::new(0));
        node.successor = (PeerId(2), ChordId::new(10));
        node.fingers[3] = Some(Finger {
            start: ChordId::new(8),
            node: PeerId(3),
            node_id: ChordId::new(40),
        });
        node.fingers[5] = Some(Finger {
            start: ChordId::new(32),
            node: PeerId(4),
            node_id: ChordId::new(90),
        });
        // Target beyond both fingers: pick the farther one (higher index).
        assert_eq!(
            node.closest_preceding(ChordId::new(100)),
            Some((PeerId(4), ChordId::new(90)))
        );
        // Target between the fingers: pick the nearer one.
        assert_eq!(
            node.closest_preceding(ChordId::new(60)),
            Some((PeerId(3), ChordId::new(40)))
        );
        // Target right after the node: only the successor helps.
        assert_eq!(
            node.closest_preceding(ChordId::new(20)),
            Some((PeerId(2), ChordId::new(10)))
        );
        // Target before everything: nothing precedes it.
        assert_eq!(node.closest_preceding(ChordId::new(5)), None);
    }
}
