//! Message accounting: per-kind, per-peer and per-operation counters.
//!
//! Every sub-figure of the paper's Figure 8 is an *average message count per
//! operation* (or a distribution of such counts), so accounting is a
//! first-class part of the substrate rather than an afterthought in the
//! benchmark harness.
//!
//! ### Slab-addressed hot paths, streaming aggregates
//!
//! [`OpId`]s are dense sequential integers and [`PeerId`]s are dense slab
//! indices, so the two structures every message send and delivery touches —
//! the live-operation table and the per-peer received counters — are flat
//! vectors, not hash maps.  Live operations occupy a sliding window
//! (`VecDeque` plus a base offset): [`MessageStats::retire_finished`] pops
//! finished operations off the front and folds them into per-class
//! [`ClassStats`] aggregates (fixed-bucket [`Histogram`]s plus exact sums),
//! so a long open-loop run holds O(in-flight) operation state instead of
//! O(operations-ever).  Class labels are interned once per distinct label;
//! beginning an operation allocates nothing in steady state.

use std::collections::{HashMap, VecDeque};

use crate::peer::PeerId;
use crate::time::SimTime;

/// Identifier of one logical operation (a join, a search, …) for accounting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u64);

/// Counters accumulated for a single operation.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Interned class of the operation (resolve the label through
    /// [`MessageStats::op_label`] or [`ClassStats::name`]).
    pub(crate) class: u32,
    /// Messages sent while this operation was the active accounting scope.
    pub messages: u64,
    /// Messages that could not be delivered because the destination was dead.
    pub failed_deliveries: u64,
    /// Messages charged to the operation's failover detour: the first
    /// message that bounced off a dead peer plus everything sent after it.
    /// A healthy operation keeps this at zero, so
    /// `messages == primary + detour` splits first-try routing cost from
    /// recovery cost.
    pub detour_messages: u64,
    /// `true` once the operation has bounced off at least one dead peer;
    /// subsequent sends are recovery work and count as detour messages.
    pub(crate) detour: bool,
    /// Total bytes of the messages (approximate, see
    /// [`crate::message::NetMessage::approximate_size`]).
    pub bytes: u64,
    /// Largest hop count observed on any message of this operation.
    pub max_hops: u32,
    /// Virtual time at which the operation was issued.
    pub started_at: SimTime,
    /// Virtual time at which the operation completed (set by
    /// [`SimNetwork::finish_op`](crate::network::SimNetwork::finish_op)).
    pub finished_at: Option<SimTime>,
    /// The operation's critical path so far: the delivery time of the latest
    /// hop in its request chain.  The next hop of the operation departs from
    /// here, so a chain of hops accumulates latency while independent
    /// operations overlap freely in virtual time.
    pub(crate) frontier: SimTime,
    /// Completion candidate including fire-and-forget notifications, which
    /// run in parallel with (and may outlast) the request chain.
    pub(crate) completion: SimTime,
}

impl OpStats {
    /// Virtual latency of the operation: time from issue to completion.
    ///
    /// `None` until the operation is finished.
    pub fn latency(&self) -> Option<SimTime> {
        self.finished_at
            .map(|finished| finished.saturating_sub(self.started_at))
    }

    /// Messages sent before the operation's first bounce (first-try routing
    /// cost): `messages − detour_messages`.
    pub fn primary_messages(&self) -> u64 {
        self.messages - self.detour_messages
    }

    /// `true` once the operation has entered failover-detour mode.
    pub fn in_detour(&self) -> bool {
        self.detour
    }
}

/// A RAII-like handle for an operation accounting scope.
///
/// `OpScope` is deliberately **not** `Drop`-based: the simulator is purely
/// synchronous and protocols explicitly call
/// [`SimNetwork::finish_op`](crate::network::SimNetwork::finish_op) so that
/// nested scopes never accidentally swallow each other's messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpScope {
    /// Identifier of the scoped operation.
    pub id: OpId,
}

/// A compact fixed-bucket histogram over small non-negative integers.
///
/// Used for Figure 8(h) (the distribution of load-balancing shift sizes) and
/// as the aggregate an operation retires into: messages-per-op, hops-per-op
/// and whole-millisecond latency distributions per operation class.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Largest value ever recorded, or `None` if empty.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Mean of the recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The `q`-quantile of the recorded values (`q` in `(0, 1]`): the
    /// smallest recorded value `v` such that at least `q · total`
    /// observations are `≤ v`.  Returns `None` for an empty histogram.
    ///
    /// # Panics
    /// Panics if `q` is not in `(0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<usize> {
        assert!(q > 0.0 && q <= 1.0, "percentile requires q in (0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (value, count) in self.iter() {
            cumulative += count;
            if cumulative >= rank {
                return Some(value);
            }
        }
        self.max_value()
    }

    /// Median (50th percentile); `None` if empty.
    pub fn p50(&self) -> Option<usize> {
        self.percentile(0.50)
    }

    /// 95th percentile; `None` if empty.
    pub fn p95(&self) -> Option<usize> {
        self.percentile(0.95)
    }

    /// 99th percentile; `None` if empty.
    pub fn p99(&self) -> Option<usize> {
        self.percentile(0.99)
    }

    /// Fraction of observations equal to `value`.
    pub fn frequency(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            if self.counts.len() <= v {
                self.counts.resize(v + 1, 0);
            }
            self.counts[v] += c;
        }
        self.total += other.total;
    }
}

/// Streaming aggregate of every *retired* operation of one class (label).
///
/// Retirement ([`MessageStats::retire_finished`]) folds a finished
/// operation's counters into these fixed-size aggregates and drops the
/// per-operation record, bounding a run's memory by the number of in-flight
/// operations plus the number of distinct labels.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    name: String,
    retired: u64,
    messages_sum: u64,
    bytes: u64,
    failed_deliveries: u64,
    detour_hops: u64,
    latency_us_sum: u64,
    messages: Histogram,
    hops: Histogram,
    latency_ms: Histogram,
}

impl ClassStats {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    fn retire(&mut self, op: &OpStats) {
        self.retired += 1;
        self.messages_sum += op.messages;
        self.bytes += op.bytes;
        self.failed_deliveries += op.failed_deliveries;
        self.detour_hops += op.detour_messages;
        self.messages.record(op.messages as usize);
        self.hops.record(op.max_hops as usize);
        let latency = op.latency().unwrap_or(SimTime::ZERO);
        self.latency_us_sum += latency.as_micros();
        self.latency_ms
            .record((latency.as_micros() / 1000) as usize);
    }

    /// The operation label this aggregate covers.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations retired into this aggregate.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Total messages across retired operations.
    pub fn messages_sum(&self) -> u64 {
        self.messages_sum
    }

    /// Total approximate bytes across retired operations.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total failed deliveries across retired operations.
    pub fn failed_deliveries(&self) -> u64 {
        self.failed_deliveries
    }

    /// Total failover-detour hops across retired operations: messages sent
    /// at or after each operation's first bounce off a dead peer.  Splits
    /// the class's hop budget into first-try routing and recovery work —
    /// `messages_sum() == primary_hops() + detour_hops()` always holds.
    pub fn detour_hops(&self) -> u64 {
        self.detour_hops
    }

    /// Total first-try hops across retired operations (messages sent before
    /// any bounce).
    pub fn primary_hops(&self) -> u64 {
        self.messages_sum - self.detour_hops
    }

    /// Distribution of messages per retired operation.
    pub fn messages_histogram(&self) -> &Histogram {
        &self.messages
    }

    /// Distribution of the maximum hop count per retired operation.
    pub fn hops_histogram(&self) -> &Histogram {
        &self.hops
    }

    /// Distribution of virtual latency per retired operation, in whole
    /// milliseconds (sub-millisecond latencies land in bucket 0).
    pub fn latency_ms_histogram(&self) -> &Histogram {
        &self.latency_ms
    }

    /// Mean virtual latency of retired operations (exact, from the
    /// microsecond sum rather than the millisecond buckets).
    pub fn mean_latency(&self) -> Option<SimTime> {
        self.latency_us_sum
            .checked_div(self.retired)
            .map(SimTime::from_micros)
    }
}

/// Global message statistics for a [`SimNetwork`](crate::network::SimNetwork).
#[derive(Clone, Debug, Default)]
pub struct MessageStats {
    total_sent: u64,
    total_delivered: u64,
    total_failed: u64,
    total_bytes: u64,
    by_kind: HashMap<&'static str, u64>,
    /// Messages received per peer, slab-indexed by the dense peer id.
    received_by_peer: Vec<u64>,
    /// Sliding window of live operations: the op with [`OpId`] `base + i`
    /// lives at index `i`.  `retire_finished` pops the front.
    live: VecDeque<OpStats>,
    base: u64,
    next_op: u64,
    /// Per-class streaming aggregates, indexed by interned class id.
    classes: Vec<ClassStats>,
    class_ids: HashMap<String, u32>,
}

impl MessageStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages sent (delivered or not).
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total messages successfully delivered to an alive peer.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Total messages whose destination was dead at delivery time.
    pub fn total_failed(&self) -> u64 {
        self.total_failed
    }

    /// Approximate total bytes of all sent messages.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Messages sent per statistics bucket (message kind).
    pub fn by_kind(&self) -> &HashMap<&'static str, u64> {
        &self.by_kind
    }

    /// Messages sent with a given kind label.
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// `(peer, received)` for every peer that received at least one message —
    /// the per-node access load of Figure 8(f).
    pub fn received_counts(&self) -> impl Iterator<Item = (PeerId, u64)> + '_ {
        self.received_by_peer
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (PeerId(i as u32), c))
    }

    /// Messages received by one peer.
    #[inline]
    pub fn received_count(&self, peer: PeerId) -> u64 {
        self.received_by_peer
            .get(peer.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Interns `label`, returning its class id.
    fn class_id(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.class_ids.get(label) {
            return id;
        }
        let id = self.classes.len() as u32;
        self.classes.push(ClassStats::new(label));
        self.class_ids.insert(label.to_owned(), id);
        id
    }

    /// Begins a new operation accounting scope starting at virtual time zero.
    pub fn begin_op(&mut self, label: &str) -> OpScope {
        self.begin_op_at(label, SimTime::ZERO)
    }

    /// Begins a new operation accounting scope issued at virtual time `at`.
    ///
    /// Allocation-free in steady state: the label is interned on its first
    /// occurrence and the live window reuses its buffer.
    pub fn begin_op_at(&mut self, label: &str, at: SimTime) -> OpScope {
        let class = self.class_id(label);
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.live.push_back(OpStats {
            class,
            started_at: at,
            frontier: at,
            completion: at,
            ..OpStats::default()
        });
        OpScope { id }
    }

    /// Identifier the *next* [`begin_op`](Self::begin_op) call will hand out.
    ///
    /// Harnesses snapshot this before dispatching an operation and then read
    /// the stats of every op in `[snapshot, next_op_id())` afterwards — that
    /// range covers the operation itself plus anything it triggered (e.g. a
    /// load-balancing pass).
    pub fn next_op_id(&self) -> u64 {
        self.next_op
    }

    #[inline]
    fn live_index(&self, id: OpId) -> Option<usize> {
        id.0.checked_sub(self.base).map(|i| i as usize)
    }

    #[inline]
    fn live_mut(&mut self, id: OpId) -> Option<&mut OpStats> {
        let index = self.live_index(id)?;
        self.live.get_mut(index)
    }

    /// The critical-path frontier of an in-flight operation: the virtual
    /// time its next hop would depart at.
    pub fn op_frontier(&self, id: OpId) -> Option<SimTime> {
        self.op(id).map(|s| s.frontier)
    }

    /// Advances an operation's critical path to `at` (a hop of its request
    /// chain was delivered at that time).  A no-op for retired operations.
    pub(crate) fn advance_op_frontier(&mut self, id: OpId, at: SimTime) {
        if let Some(stats) = self.live_mut(id) {
            stats.frontier = stats.frontier.max(at);
            stats.completion = stats.completion.max(at);
        }
    }

    /// Records that a fire-and-forget notification of the operation lands at
    /// `at`.  Notifications run in parallel with the request chain, so they
    /// extend the operation's completion time without moving its frontier.
    pub(crate) fn extend_op_completion(&mut self, id: OpId, at: SimTime) {
        if let Some(stats) = self.live_mut(id) {
            stats.completion = stats.completion.max(at);
        }
    }

    /// Marks an operation as complete, stamping its finish time.
    pub(crate) fn finish_op(&mut self, id: OpId) {
        if let Some(stats) = self.live_mut(id) {
            stats.finished_at = Some(stats.completion.max(stats.frontier));
        }
    }

    /// Retires every finished operation at the front of the live window into
    /// its class aggregate ([`ClassStats`]), dropping the per-operation
    /// records.  Called by the workload runners after each dispatch, this
    /// bounds a long run's operation state to O(in-flight operations).
    ///
    /// Retired operations are no longer visible through [`op`](Self::op) /
    /// [`ops`](Self::ops) / [`op_latencies`](Self::op_latencies); their
    /// contribution lives on in [`class_stats`](Self::class_stats).
    pub fn retire_finished(&mut self) {
        while let Some(front) = self.live.front() {
            if front.finished_at.is_none() {
                break;
            }
            let op = self.live.pop_front().expect("front exists");
            self.base += 1;
            self.classes[op.class as usize].retire(&op);
        }
    }

    /// Number of operations currently held in the live window (in-flight
    /// plus finished-but-not-yet-retired).
    pub fn live_op_count(&self) -> usize {
        self.live.len()
    }

    /// Number of operations retired into class aggregates.
    pub fn retired_op_count(&self) -> u64 {
        self.base
    }

    /// The streaming aggregate of one operation label, if any operation of
    /// that label was ever begun.
    pub fn class_stats(&self, label: &str) -> Option<&ClassStats> {
        let id = *self.class_ids.get(label)?;
        self.classes.get(id as usize)
    }

    /// Every class aggregate, in first-seen label order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassStats> + '_ {
        self.classes.iter()
    }

    /// The label an operation was begun with (`None` for retired ids).
    pub fn op_label(&self, id: OpId) -> Option<&str> {
        self.op(id)
            .map(|s| self.classes[s.class as usize].name.as_str())
    }

    /// `(label, latency)` of every finished *live* (not yet retired)
    /// operation, in issue order.
    pub fn op_latencies(&self) -> Vec<(String, SimTime)> {
        self.live
            .iter()
            .filter_map(|s| {
                s.latency()
                    .map(|l| (self.classes[s.class as usize].name.clone(), l))
            })
            .collect()
    }

    /// Average virtual latency of finished operations whose label matches
    /// `label` — retired and live alike — or `None` if there are none.
    pub fn average_latency(&self, label: &str) -> Option<SimTime> {
        let id = *self.class_ids.get(label)?;
        let class = &self.classes[id as usize];
        let (count, sum) = self
            .live
            .iter()
            .filter(|op| op.class == id)
            .filter_map(|op| op.latency())
            .fold((class.retired, class.latency_us_sum), |(c, s), l| {
                (c + 1, s + l.as_micros())
            });
        sum.checked_div(count).map(SimTime::from_micros)
    }

    /// Statistics of a live (in-flight or not yet retired) operation.
    pub fn op(&self, id: OpId) -> Option<&OpStats> {
        let index = self.live_index(id)?;
        self.live.get(index)
    }

    /// All live operations, in issue order.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpStats)> + '_ {
        self.live
            .iter()
            .enumerate()
            .map(|(i, s)| (OpId(self.base + i as u64), s))
    }

    /// Number of operations begun over the lifetime of the run (retired or
    /// live).
    pub fn op_count(&self) -> usize {
        self.next_op as usize
    }

    /// Average messages per operation whose label matches `label`, over
    /// retired and live operations alike.
    ///
    /// Returns `None` if no such operation exists.
    pub fn average_messages(&self, label: &str) -> Option<f64> {
        let id = *self.class_ids.get(label)?;
        let class = &self.classes[id as usize];
        let (count, sum) = self
            .live
            .iter()
            .filter(|op| op.class == id)
            .fold((class.retired, class.messages_sum), |(c, s), op| {
                (c + 1, s + op.messages)
            });
        if count == 0 {
            None
        } else {
            Some(sum as f64 / count as f64)
        }
    }

    /// Records a message send attributed to `op`.
    pub(crate) fn record_send(&mut self, op: OpId, kind: &'static str, bytes: usize, hop: u32) {
        self.total_sent += 1;
        self.total_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
        if let Some(stats) = self.live_mut(op) {
            stats.messages += 1;
            stats.bytes += bytes as u64;
            stats.max_hops = stats.max_hops.max(hop);
            if stats.detour {
                stats.detour_messages += 1;
            }
        }
    }

    /// Records a successful delivery to `peer`.
    pub(crate) fn record_delivery(&mut self, peer: PeerId) {
        self.total_delivered += 1;
        let index = peer.0 as usize;
        if self.received_by_peer.len() <= index {
            self.received_by_peer.resize(index + 1, 0);
        }
        self.received_by_peer[index] += 1;
    }

    /// Records a failed delivery attributed to `op`.
    pub(crate) fn record_failure(&mut self, op: OpId) {
        self.total_failed += 1;
        if let Some(stats) = self.live_mut(op) {
            stats.failed_deliveries += 1;
            // The bounced message opens the operation's failover detour:
            // it was counted as first-try at send time (the sender could
            // not know the destination was dead), so reclassify it, and
            // every later send of this op counts as detour at send time.
            if !stats.detour {
                stats.detour = true;
                stats.detour_messages += 1;
            }
        }
    }

    /// Clears per-peer received counters (used when an experiment wants to
    /// measure access load only over its query phase, as in Figure 8(f)).
    pub fn reset_received_counters(&mut self) {
        self.received_by_peer.iter_mut().for_each(|c| *c = 0);
    }

    /// Snapshot of the total number of sent messages; callers diff two
    /// snapshots to attribute traffic to a phase of an experiment.
    pub fn sent_snapshot(&self) -> u64 {
        self.total_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_scopes_accumulate_messages_independently() {
        let mut stats = MessageStats::new();
        let a = stats.begin_op("join");
        let b = stats.begin_op("leave");
        stats.record_send(a.id, "x", 10, 1);
        stats.record_send(a.id, "x", 10, 2);
        stats.record_send(b.id, "y", 5, 1);
        assert_eq!(stats.op(a.id).unwrap().messages, 2);
        assert_eq!(stats.op(b.id).unwrap().messages, 1);
        assert_eq!(stats.total_sent(), 3);
        assert_eq!(stats.total_bytes(), 25);
        assert_eq!(stats.kind_count("x"), 2);
        assert_eq!(stats.kind_count("y"), 1);
        assert_eq!(stats.kind_count("z"), 0);
    }

    #[test]
    fn average_messages_by_label() {
        let mut stats = MessageStats::new();
        for msgs in [2u64, 4, 6] {
            let op = stats.begin_op("search");
            for i in 0..msgs {
                stats.record_send(op.id, "s", 1, i as u32 + 1);
            }
        }
        let other = stats.begin_op("join");
        stats.record_send(other.id, "j", 1, 1);
        assert_eq!(stats.average_messages("search"), Some(4.0));
        assert_eq!(stats.average_messages("join"), Some(1.0));
        assert_eq!(stats.average_messages("missing"), None);
    }

    #[test]
    fn delivery_and_failure_counters() {
        let mut stats = MessageStats::new();
        let op = stats.begin_op("probe");
        stats.record_send(op.id, "p", 1, 1);
        stats.record_delivery(PeerId(3));
        stats.record_send(op.id, "p", 1, 2);
        stats.record_failure(op.id);
        assert_eq!(stats.total_delivered(), 1);
        assert_eq!(stats.total_failed(), 1);
        assert_eq!(stats.received_count(PeerId(3)), 1);
        assert_eq!(stats.received_count(PeerId(4)), 0);
        assert_eq!(stats.op(op.id).unwrap().failed_deliveries, 1);
        assert_eq!(
            stats.received_counts().collect::<Vec<_>>(),
            vec![(PeerId(3), 1)]
        );
    }

    #[test]
    fn max_hops_tracked_per_op() {
        let mut stats = MessageStats::new();
        let op = stats.begin_op("walk");
        for hop in [1, 5, 3] {
            stats.record_send(op.id, "w", 1, hop);
        }
        assert_eq!(stats.op(op.id).unwrap().max_hops, 5);
    }

    #[test]
    fn reset_received_counters_only_clears_per_peer_data() {
        let mut stats = MessageStats::new();
        let op = stats.begin_op("x");
        stats.record_send(op.id, "x", 1, 1);
        stats.record_delivery(PeerId(0));
        stats.reset_received_counters();
        assert_eq!(stats.received_count(PeerId(0)), 0);
        assert_eq!(stats.total_sent(), 1);
        assert_eq!(stats.total_delivered(), 1);
    }

    #[test]
    fn retirement_folds_finished_ops_into_class_aggregates() {
        let mut stats = MessageStats::new();
        let a = stats.begin_op("search");
        stats.record_send(a.id, "s", 7, 1);
        stats.record_send(a.id, "s", 7, 2);
        let b = stats.begin_op("search");
        stats.record_send(b.id, "s", 7, 1);
        let c = stats.begin_op("join");
        stats.finish_op(a.id);
        // b unfinished: retirement stops at it even though a is done.
        stats.retire_finished();
        assert_eq!(stats.live_op_count(), 2);
        assert_eq!(stats.retired_op_count(), 1);
        assert!(stats.op(a.id).is_none(), "a was retired");
        assert!(stats.op(b.id).is_some());
        let class = stats.class_stats("search").unwrap();
        assert_eq!(class.retired(), 1);
        assert_eq!(class.messages_sum(), 2);
        assert_eq!(class.bytes(), 14);
        assert_eq!(class.messages_histogram().count(2), 1);
        assert_eq!(class.hops_histogram().max_value(), Some(2));

        stats.finish_op(b.id);
        stats.finish_op(c.id);
        stats.retire_finished();
        assert_eq!(stats.live_op_count(), 0);
        assert_eq!(stats.retired_op_count(), 3);
        let class = stats.class_stats("search").unwrap();
        assert_eq!(class.retired(), 2);
        // Averages keep covering retired operations.
        assert_eq!(stats.average_messages("search"), Some(1.5));
        assert_eq!(stats.average_messages("join"), Some(0.0));
        assert_eq!(stats.op_count(), 3);
    }

    #[test]
    fn retired_ops_ignore_late_updates_and_keep_latency_aggregates() {
        let mut stats = MessageStats::new();
        let op = stats.begin_op_at("rpc", SimTime::from_millis(5));
        stats.advance_op_frontier(op.id, SimTime::from_millis(12));
        stats.finish_op(op.id);
        assert_eq!(
            stats.op(op.id).unwrap().latency(),
            Some(SimTime::from_millis(7))
        );
        stats.retire_finished();
        // Late traffic attributed to the retired id is dropped silently:
        // global counters still move, per-op state is gone.
        stats.record_send(op.id, "r", 9, 3);
        stats.advance_op_frontier(op.id, SimTime::from_millis(99));
        stats.extend_op_completion(op.id, SimTime::from_millis(99));
        stats.finish_op(op.id);
        assert_eq!(stats.total_sent(), 1);
        let class = stats.class_stats("rpc").unwrap();
        assert_eq!(class.retired(), 1);
        assert_eq!(class.latency_ms_histogram().count(7), 1);
        assert_eq!(class.mean_latency(), Some(SimTime::from_millis(7)));
        assert_eq!(stats.average_latency("rpc"), Some(SimTime::from_millis(7)));
        assert_eq!(stats.op_label(op.id), None);
    }

    #[test]
    fn live_window_indexing_survives_retirement() {
        let mut stats = MessageStats::new();
        let ops: Vec<OpScope> = (0..10).map(|_| stats.begin_op("w")).collect();
        for op in &ops[..4] {
            stats.finish_op(op.id);
        }
        stats.retire_finished();
        // Ids keep resolving to the right records after the window slid.
        for (i, op) in ops.iter().enumerate().skip(4) {
            stats.record_send(op.id, "w", 1, i as u32);
        }
        for (i, op) in ops.iter().enumerate().skip(4) {
            assert_eq!(stats.op(op.id).unwrap().max_hops, i as u32);
        }
        let ids: Vec<u64> = stats.ops().map(|(id, _)| id.0).collect();
        assert_eq!(ids, (4..10).collect::<Vec<u64>>());
        assert_eq!(stats.op_label(ops[5].id), Some("w"));
    }

    #[test]
    fn histogram_basic_statistics() {
        let mut h = Histogram::new();
        for v in [1, 1, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(10), 0);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.mean() - 13.0 / 6.0).abs() < 1e-9);
        assert!((h.frequency(3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(0);
        a.record(2);
        let mut b = Histogram::new();
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.max_value(), Some(5));
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.iter().count(), 0);
    }
}
