//! Message accounting: per-kind, per-peer and per-operation counters.
//!
//! Every sub-figure of the paper's Figure 8 is an *average message count per
//! operation* (or a distribution of such counts), so accounting is a
//! first-class part of the substrate rather than an afterthought in the
//! benchmark harness.

use std::collections::HashMap;

use crate::peer::PeerId;
use crate::time::SimTime;

/// Identifier of one logical operation (a join, a search, …) for accounting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u64);

/// Counters accumulated for a single operation.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Label of the operation (e.g. `"join"`, `"search.exact"`).
    pub label: String,
    /// Messages sent while this operation was the active accounting scope.
    pub messages: u64,
    /// Messages that could not be delivered because the destination was dead.
    pub failed_deliveries: u64,
    /// Total bytes of the messages (approximate, see
    /// [`crate::message::NetMessage::approximate_size`]).
    pub bytes: u64,
    /// Largest hop count observed on any message of this operation.
    pub max_hops: u32,
    /// Virtual time at which the operation was issued.
    pub started_at: SimTime,
    /// Virtual time at which the operation completed (set by
    /// [`SimNetwork::finish_op`](crate::network::SimNetwork::finish_op)).
    pub finished_at: Option<SimTime>,
    /// The operation's critical path so far: the delivery time of the latest
    /// hop in its request chain.  The next hop of the operation departs from
    /// here, so a chain of hops accumulates latency while independent
    /// operations overlap freely in virtual time.
    pub(crate) frontier: SimTime,
    /// Completion candidate including fire-and-forget notifications, which
    /// run in parallel with (and may outlast) the request chain.
    pub(crate) completion: SimTime,
}

impl OpStats {
    /// Virtual latency of the operation: time from issue to completion.
    ///
    /// `None` until the operation is finished.
    pub fn latency(&self) -> Option<SimTime> {
        self.finished_at
            .map(|finished| finished.saturating_sub(self.started_at))
    }
}

/// A RAII-like handle for an operation accounting scope.
///
/// `OpScope` is deliberately **not** `Drop`-based: the simulator is purely
/// synchronous and protocols explicitly call
/// [`SimNetwork::finish_op`](crate::network::SimNetwork::finish_op) so that
/// nested scopes never accidentally swallow each other's messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpScope {
    /// Identifier of the scoped operation.
    pub id: OpId,
}

/// A compact fixed-bucket histogram over small non-negative integers.
///
/// Used for Figure 8(h): the distribution of the number of nodes involved in
/// a single load-balancing shift.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Largest value ever recorded, or `None` if empty.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Mean of the recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The `q`-quantile of the recorded values (`q` in `(0, 1]`): the
    /// smallest recorded value `v` such that at least `q · total`
    /// observations are `≤ v`.  Returns `None` for an empty histogram.
    ///
    /// # Panics
    /// Panics if `q` is not in `(0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<usize> {
        assert!(q > 0.0 && q <= 1.0, "percentile requires q in (0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (value, count) in self.iter() {
            cumulative += count;
            if cumulative >= rank {
                return Some(value);
            }
        }
        self.max_value()
    }

    /// Median (50th percentile); `None` if empty.
    pub fn p50(&self) -> Option<usize> {
        self.percentile(0.50)
    }

    /// 95th percentile; `None` if empty.
    pub fn p95(&self) -> Option<usize> {
        self.percentile(0.95)
    }

    /// 99th percentile; `None` if empty.
    pub fn p99(&self) -> Option<usize> {
        self.percentile(0.99)
    }

    /// Fraction of observations equal to `value`.
    pub fn frequency(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            if self.counts.len() <= v {
                self.counts.resize(v + 1, 0);
            }
            self.counts[v] += c;
        }
        self.total += other.total;
    }
}

/// Global message statistics for a [`SimNetwork`](crate::network::SimNetwork).
#[derive(Clone, Debug, Default)]
pub struct MessageStats {
    total_sent: u64,
    total_delivered: u64,
    total_failed: u64,
    total_bytes: u64,
    by_kind: HashMap<&'static str, u64>,
    received_by_peer: HashMap<PeerId, u64>,
    ops: HashMap<OpId, OpStats>,
    next_op: u64,
}

impl MessageStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages sent (delivered or not).
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total messages successfully delivered to an alive peer.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Total messages whose destination was dead at delivery time.
    pub fn total_failed(&self) -> u64 {
        self.total_failed
    }

    /// Approximate total bytes of all sent messages.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Messages sent per statistics bucket (message kind).
    pub fn by_kind(&self) -> &HashMap<&'static str, u64> {
        &self.by_kind
    }

    /// Messages sent with a given kind label.
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Messages *received* (delivered) per peer — the per-node access load of
    /// Figure 8(f).
    pub fn received_by_peer(&self) -> &HashMap<PeerId, u64> {
        &self.received_by_peer
    }

    /// Messages received by one peer.
    pub fn received_count(&self, peer: PeerId) -> u64 {
        self.received_by_peer.get(&peer).copied().unwrap_or(0)
    }

    /// Begins a new operation accounting scope starting at virtual time zero.
    pub fn begin_op(&mut self, label: &str) -> OpScope {
        self.begin_op_at(label, SimTime::ZERO)
    }

    /// Begins a new operation accounting scope issued at virtual time `at`.
    pub fn begin_op_at(&mut self, label: &str, at: SimTime) -> OpScope {
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.ops.insert(
            id,
            OpStats {
                label: label.to_owned(),
                started_at: at,
                frontier: at,
                completion: at,
                ..OpStats::default()
            },
        );
        OpScope { id }
    }

    /// Identifier the *next* [`begin_op`](Self::begin_op) call will hand out.
    ///
    /// Harnesses snapshot this before dispatching an operation and then read
    /// the stats of every op in `[snapshot, next_op_id())` afterwards — that
    /// range covers the operation itself plus anything it triggered (e.g. a
    /// load-balancing pass).
    pub fn next_op_id(&self) -> u64 {
        self.next_op
    }

    /// The critical-path frontier of an in-flight operation: the virtual
    /// time its next hop would depart at.
    pub fn op_frontier(&self, id: OpId) -> Option<SimTime> {
        self.ops.get(&id).map(|s| s.frontier)
    }

    /// Advances an operation's critical path to `at` (a hop of its request
    /// chain was delivered at that time).
    pub(crate) fn advance_op_frontier(&mut self, id: OpId, at: SimTime) {
        if let Some(stats) = self.ops.get_mut(&id) {
            stats.frontier = stats.frontier.max(at);
            stats.completion = stats.completion.max(at);
        }
    }

    /// Records that a fire-and-forget notification of the operation lands at
    /// `at`.  Notifications run in parallel with the request chain, so they
    /// extend the operation's completion time without moving its frontier.
    pub(crate) fn extend_op_completion(&mut self, id: OpId, at: SimTime) {
        if let Some(stats) = self.ops.get_mut(&id) {
            stats.completion = stats.completion.max(at);
        }
    }

    /// Marks an operation as complete, stamping its finish time.
    pub(crate) fn finish_op(&mut self, id: OpId) {
        if let Some(stats) = self.ops.get_mut(&id) {
            stats.finished_at = Some(stats.completion.max(stats.frontier));
        }
    }

    /// `(label, latency)` of every finished operation, in issue order.
    pub fn op_latencies(&self) -> Vec<(String, SimTime)> {
        let mut finished: Vec<(OpId, &OpStats)> = self
            .ops
            .iter()
            .filter(|(_, s)| s.finished_at.is_some())
            .map(|(id, s)| (*id, s))
            .collect();
        finished.sort_unstable_by_key(|(id, _)| *id);
        finished
            .into_iter()
            .filter_map(|(_, s)| s.latency().map(|l| (s.label.clone(), l)))
            .collect()
    }

    /// Average virtual latency of finished operations whose label matches
    /// `label`, or `None` if there are none.
    pub fn average_latency(&self, label: &str) -> Option<SimTime> {
        let (count, sum) = self
            .ops
            .values()
            .filter(|op| op.label == label)
            .filter_map(|op| op.latency())
            .fold((0u64, 0u64), |(c, s), l| (c + 1, s + l.as_micros()));
        sum.checked_div(count).map(SimTime::from_micros)
    }

    /// Statistics of a finished or in-flight operation.
    pub fn op(&self, id: OpId) -> Option<&OpStats> {
        self.ops.get(&id)
    }

    /// All operations recorded so far.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpStats)> + '_ {
        self.ops.iter().map(|(id, s)| (*id, s))
    }

    /// Number of operations begun.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Average messages per operation whose label matches `label`.
    ///
    /// Returns `None` if no such operation exists.
    pub fn average_messages(&self, label: &str) -> Option<f64> {
        let (count, sum) = self
            .ops
            .values()
            .filter(|op| op.label == label)
            .fold((0u64, 0u64), |(c, s), op| (c + 1, s + op.messages));
        if count == 0 {
            None
        } else {
            Some(sum as f64 / count as f64)
        }
    }

    /// Records a message send attributed to `op`.
    pub(crate) fn record_send(&mut self, op: OpId, kind: &'static str, bytes: usize, hop: u32) {
        self.total_sent += 1;
        self.total_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
        if let Some(stats) = self.ops.get_mut(&op) {
            stats.messages += 1;
            stats.bytes += bytes as u64;
            stats.max_hops = stats.max_hops.max(hop);
        }
    }

    /// Records a successful delivery to `peer`.
    pub(crate) fn record_delivery(&mut self, peer: PeerId) {
        self.total_delivered += 1;
        *self.received_by_peer.entry(peer).or_insert(0) += 1;
    }

    /// Records a failed delivery attributed to `op`.
    pub(crate) fn record_failure(&mut self, op: OpId) {
        self.total_failed += 1;
        if let Some(stats) = self.ops.get_mut(&op) {
            stats.failed_deliveries += 1;
        }
    }

    /// Clears per-peer received counters (used when an experiment wants to
    /// measure access load only over its query phase, as in Figure 8(f)).
    pub fn reset_received_counters(&mut self) {
        self.received_by_peer.clear();
    }

    /// Snapshot of the total number of sent messages; callers diff two
    /// snapshots to attribute traffic to a phase of an experiment.
    pub fn sent_snapshot(&self) -> u64 {
        self.total_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_scopes_accumulate_messages_independently() {
        let mut stats = MessageStats::new();
        let a = stats.begin_op("join");
        let b = stats.begin_op("leave");
        stats.record_send(a.id, "x", 10, 1);
        stats.record_send(a.id, "x", 10, 2);
        stats.record_send(b.id, "y", 5, 1);
        assert_eq!(stats.op(a.id).unwrap().messages, 2);
        assert_eq!(stats.op(b.id).unwrap().messages, 1);
        assert_eq!(stats.total_sent(), 3);
        assert_eq!(stats.total_bytes(), 25);
        assert_eq!(stats.kind_count("x"), 2);
        assert_eq!(stats.kind_count("y"), 1);
        assert_eq!(stats.kind_count("z"), 0);
    }

    #[test]
    fn average_messages_by_label() {
        let mut stats = MessageStats::new();
        for msgs in [2u64, 4, 6] {
            let op = stats.begin_op("search");
            for i in 0..msgs {
                stats.record_send(op.id, "s", 1, i as u32 + 1);
            }
        }
        let other = stats.begin_op("join");
        stats.record_send(other.id, "j", 1, 1);
        assert_eq!(stats.average_messages("search"), Some(4.0));
        assert_eq!(stats.average_messages("join"), Some(1.0));
        assert_eq!(stats.average_messages("missing"), None);
    }

    #[test]
    fn delivery_and_failure_counters() {
        let mut stats = MessageStats::new();
        let op = stats.begin_op("probe");
        stats.record_send(op.id, "p", 1, 1);
        stats.record_delivery(PeerId(3));
        stats.record_send(op.id, "p", 1, 2);
        stats.record_failure(op.id);
        assert_eq!(stats.total_delivered(), 1);
        assert_eq!(stats.total_failed(), 1);
        assert_eq!(stats.received_count(PeerId(3)), 1);
        assert_eq!(stats.received_count(PeerId(4)), 0);
        assert_eq!(stats.op(op.id).unwrap().failed_deliveries, 1);
    }

    #[test]
    fn max_hops_tracked_per_op() {
        let mut stats = MessageStats::new();
        let op = stats.begin_op("walk");
        for hop in [1, 5, 3] {
            stats.record_send(op.id, "w", 1, hop);
        }
        assert_eq!(stats.op(op.id).unwrap().max_hops, 5);
    }

    #[test]
    fn reset_received_counters_only_clears_per_peer_data() {
        let mut stats = MessageStats::new();
        let op = stats.begin_op("x");
        stats.record_send(op.id, "x", 1, 1);
        stats.record_delivery(PeerId(0));
        stats.reset_received_counters();
        assert_eq!(stats.received_count(PeerId(0)), 0);
        assert_eq!(stats.total_sent(), 1);
        assert_eq!(stats.total_delivered(), 1);
    }

    #[test]
    fn histogram_basic_statistics() {
        let mut h = Histogram::new();
        for v in [1, 1, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(10), 0);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.mean() - 13.0 / 6.0).abs() < 1e-9);
        assert!((h.frequency(3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(0);
        a.record(2);
        let mut b = Histogram::new();
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.max_value(), Some(5));
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.iter().count(), 0);
    }
}
