//! Peer identities and the liveness registry.
//!
//! A [`PeerId`] is the simulator's stand-in for a physical network address
//! (the paper's "physical id in terms of its IP address").  The
//! [`PeerRegistry`] tracks which peers exist and whether they are alive,
//! which is all the substrate needs to model node failure (paper §III-C).

use std::fmt;

/// Opaque identifier of a peer (a physical compute node).
///
/// In a deployment this would be an IP address / port pair; in the simulator
/// it is a dense integer handed out by [`PeerRegistry::register`].  The id
/// is a `u32`: four billion peers is three orders of magnitude beyond the
/// million-peer target, and the narrow id halves every link, routing-table
/// entry and finger across all four overlays.  [`PeerId::raw`] still speaks
/// `u64` so seeded hashes (region maps, wire frames) are bit-identical to
/// the wide-id substrate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct PeerId(pub u32);

impl PeerId {
    /// Raw numeric value of the identifier, widened to the `u64` domain the
    /// seeded hashes and the wire format use.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0 as u64
    }

    /// Rebuilds an id from its [`raw`](Self::raw) value.
    ///
    /// # Panics
    /// Panics if `raw` does not fit the narrow id space — such a value can
    /// only come from a corrupt frame or a bug, never from
    /// [`PeerRegistry::register`].
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        assert!(
            raw <= u32::MAX as u64,
            "peer id {raw} exceeds the u32 id space"
        );
        PeerId(raw as u32)
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// Liveness of a peer as observed by the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeerStatus {
    /// The peer is running and will receive messages.
    Alive,
    /// The peer departed gracefully (LEAVE protocol completed).
    Departed,
    /// The peer crashed or left abruptly; messages to it bounce.
    Failed,
}

impl PeerStatus {
    /// `true` if messages addressed to a peer with this status are delivered.
    #[inline]
    pub fn is_alive(self) -> bool {
        matches!(self, PeerStatus::Alive)
    }
}

/// Registry of every peer ever created in a simulation together with its
/// liveness status.
///
/// [`PeerId`]s are dense sequential integers, so the registry is a plain
/// `Vec` slab indexed by the raw id: every status probe on the message hot
/// path (two per delivery) is an array index, not a hash lookup.
/// Identifiers are never reused — a departed or failed peer leaves a dead
/// slot behind — because seeded experiments sample from peer lists ordered
/// by id and id reuse would silently reorder them.
#[derive(Clone, Debug, Default)]
pub struct PeerRegistry {
    status: Vec<PeerStatus>,
    alive: usize,
}

impl PeerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a brand-new peer and returns its identifier.
    ///
    /// # Panics
    /// Panics if the dense `u32` id space is exhausted (more than four
    /// billion registrations) instead of silently wrapping ids.
    pub fn register(&mut self) -> PeerId {
        assert!(
            self.status.len() < u32::MAX as usize,
            "peer id space exhausted"
        );
        let id = PeerId(self.status.len() as u32);
        self.status.push(PeerStatus::Alive);
        self.alive += 1;
        id
    }

    /// Number of peers ever registered (alive or not).
    pub fn total(&self) -> usize {
        self.status.len()
    }

    /// Number of peers currently alive.
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Returns the status of `peer`, or `None` if it was never registered.
    #[inline]
    pub fn status(&self, peer: PeerId) -> Option<PeerStatus> {
        self.status.get(peer.0 as usize).copied()
    }

    /// `true` if the peer exists and is alive.
    pub fn is_alive(&self, peer: PeerId) -> bool {
        self.status(peer).is_some_and(PeerStatus::is_alive)
    }

    /// Marks a peer as having departed gracefully.
    ///
    /// Returns `false` if the peer was unknown.
    pub fn mark_departed(&mut self, peer: PeerId) -> bool {
        self.set_status(peer, PeerStatus::Departed)
    }

    /// Marks a peer as failed (crash / abrupt departure).
    ///
    /// Returns `false` if the peer was unknown.
    pub fn mark_failed(&mut self, peer: PeerId) -> bool {
        self.set_status(peer, PeerStatus::Failed)
    }

    /// Re-animates a peer (used when a departed peer re-joins, e.g. during
    /// the load-balancing leaf re-join of paper §IV-D).
    ///
    /// Returns `false` if the peer was unknown.
    pub fn mark_alive(&mut self, peer: PeerId) -> bool {
        self.set_status(peer, PeerStatus::Alive)
    }

    fn set_status(&mut self, peer: PeerId, status: PeerStatus) -> bool {
        match self.status.get_mut(peer.0 as usize) {
            Some(slot) => {
                self.alive -= usize::from(slot.is_alive());
                self.alive += usize::from(status.is_alive());
                *slot = status;
                true
            }
            None => false,
        }
    }

    /// Iterates over every registered peer and its status, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, PeerStatus)> + '_ {
        self.status
            .iter()
            .enumerate()
            .map(|(i, s)| (PeerId(i as u32), *s))
    }

    /// All currently alive peers, in id order.
    pub fn alive_peers(&self) -> Vec<PeerId> {
        self.iter()
            .filter(|(_, s)| s.is_alive())
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_unique_dense_ids() {
        let mut reg = PeerRegistry::new();
        let a = reg.register();
        let b = reg.register();
        let c = reg.register();
        assert_eq!(a, PeerId(0));
        assert_eq!(b, PeerId(1));
        assert_eq!(c, PeerId(2));
        assert_eq!(reg.total(), 3);
        assert_eq!(reg.alive_count(), 3);
    }

    #[test]
    fn status_transitions() {
        let mut reg = PeerRegistry::new();
        let a = reg.register();
        assert!(reg.is_alive(a));
        assert!(reg.mark_failed(a));
        assert!(!reg.is_alive(a));
        assert_eq!(reg.status(a), Some(PeerStatus::Failed));
        assert!(reg.mark_alive(a));
        assert!(reg.is_alive(a));
        assert!(reg.mark_departed(a));
        assert_eq!(reg.status(a), Some(PeerStatus::Departed));
        assert_eq!(reg.alive_count(), 0);
    }

    #[test]
    fn unknown_peer_is_not_alive_and_cannot_change_status() {
        let mut reg = PeerRegistry::new();
        let ghost = PeerId(42);
        assert_eq!(reg.status(ghost), None);
        assert!(!reg.is_alive(ghost));
        assert!(!reg.mark_failed(ghost));
        assert!(!reg.mark_departed(ghost));
        assert!(!reg.mark_alive(ghost));
    }

    #[test]
    fn alive_peers_reflects_failures() {
        let mut reg = PeerRegistry::new();
        let peers: Vec<_> = (0..10).map(|_| reg.register()).collect();
        for p in peers.iter().take(4) {
            reg.mark_failed(*p);
        }
        let mut alive = reg.alive_peers();
        alive.sort();
        assert_eq!(alive, peers[4..].to_vec());
        assert_eq!(reg.alive_count(), 6);
    }

    #[test]
    fn peer_id_display_and_raw() {
        let p = PeerId(7);
        assert_eq!(p.raw(), 7);
        assert_eq!(format!("{p}"), "peer#7");
        assert_eq!(format!("{p:?}"), "peer#7");
    }

    #[test]
    fn status_is_alive_helper() {
        assert!(PeerStatus::Alive.is_alive());
        assert!(!PeerStatus::Departed.is_alive());
        assert!(!PeerStatus::Failed.is_alive());
    }
}
