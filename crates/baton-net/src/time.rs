//! Virtual time and link-latency models for the discrete-event engine.
//!
//! The original substrate counted messages and nothing else; every question
//! the paper's Figure 8 asks is a message count.  Latency, throughput and
//! churn-under-load require a notion of *when* things happen, so the
//! simulator keeps a virtual clock: every message is scheduled for delivery
//! at `send time + link latency` and the network advances its clock as the
//! event queue drains.  Virtual time is deterministic — it is derived purely
//! from the seeded latency model, never from the wall clock.

use std::ops::{Add, AddAssign, Sub};

use crate::peer::PeerId;
use crate::rng::SimRng;

/// A point in (or span of) virtual time, in integer microseconds.
///
/// One type serves as both instant and duration — the simulation starts at
/// [`SimTime::ZERO`] and only ever moves forward, so the distinction buys
/// nothing but conversion noise here.  Microsecond resolution keeps the
/// arithmetic exact (no float drift in the event queue ordering) while
/// comfortably covering sub-millisecond link jitter and multi-hour runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// The end of virtual time — a window bounded by `MAX` never closes.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A time point / duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// A time point / duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// A time point / duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// The value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in milliseconds, as a float (for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in seconds, as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` at the origin (or for a zero duration).
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The span from `earlier` to `self`, clamped to zero if `earlier` is
    /// actually later (virtual time never runs backwards, so a non-zero
    /// clamp indicates a caller bug, not an engine state).
    pub fn saturating_sub(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

/// A seeded assignment of peers to geographic regions.
///
/// The assignment is a pure hash of the peer id and the map's salt: it never
/// changes as peers join and leave, costs no storage, and two copies of the
/// same `(regions, salt)` pair agree on every peer — the latency model and a
/// fault plan can therefore share a topology without sharing state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionMap {
    regions: u32,
    salt: u64,
}

impl RegionMap {
    /// A map of `regions` regions with the given hash salt.
    ///
    /// # Panics
    /// Panics if `regions` is zero.
    pub fn new(regions: u32, salt: u64) -> Self {
        assert!(regions > 0, "a region map needs at least one region");
        Self { regions, salt }
    }

    /// Number of regions peers are spread across.
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// The region of `peer`, in `[0, regions)`.
    pub fn region_of(&self, peer: PeerId) -> u32 {
        // SplitMix64 finalizer over (id, salt): uniform spread even for the
        // dense consecutive ids the registry hands out.
        let z = crate::rng::splitmix64_finalize(
            (peer.raw() ^ self.salt).wrapping_add(0x9E37_79B9_7F4A_7C15),
        );
        (z % u64::from(self.regions)) as u32
    }

    /// `true` if both peers hash into the same region.
    pub fn same_region(&self, a: PeerId, b: PeerId) -> bool {
        self.region_of(a) == self.region_of(b)
    }
}

/// Which links a [`LinkDegradation`] applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkScope {
    /// Every link.
    All,
    /// Links whose endpoints share a region.
    IntraRegion,
    /// Links whose endpoints sit in different regions.
    InterRegion,
    /// Links with at least one endpoint in the given region.
    Region(u32),
}

impl LinkScope {
    /// `true` if a link between regions `from` and `to` is in scope.
    pub fn covers(&self, from: u32, to: u32) -> bool {
        match self {
            LinkScope::All => true,
            LinkScope::IntraRegion => from == to,
            LinkScope::InterRegion => from != to,
            LinkScope::Region(r) => from == *r || to == *r,
        }
    }
}

/// A virtual-time-scheduled latency multiplier: while active, every sampled
/// latency on an in-scope link is scaled by up to `factor`.
///
/// The multiplier ramps linearly from 1 to `factor` over the first `ramp` of
/// the window (a zero `ramp` switches instantly) and drops back to 1 at
/// `until` — mid-run link degradation without swapping models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkDegradation {
    /// Virtual instant the degradation starts (inclusive).
    pub from: SimTime,
    /// Virtual instant it ends (exclusive); [`SimTime::MAX`] never ends.
    pub until: SimTime,
    /// Time to ramp linearly from 1× up to the full factor.
    pub ramp: SimTime,
    /// Latency multiplier at full strength (≥ 1 slows links down).
    pub factor: f64,
    /// Which links are affected.
    pub scope: LinkScope,
}

impl LinkDegradation {
    /// The multiplier this degradation contributes at virtual time `at`
    /// (1.0 outside its window).
    pub fn factor_at(&self, at: SimTime) -> f64 {
        if at < self.from || at >= self.until {
            return 1.0;
        }
        let elapsed = at.saturating_sub(self.from);
        if self.ramp.is_zero() || elapsed >= self.ramp {
            self.factor
        } else {
            1.0 + (self.factor - 1.0) * (elapsed.as_micros() as f64 / self.ramp.as_micros() as f64)
        }
    }
}

/// The topology-aware latency model: peers hash into regions, links inside a
/// region draw from `intra`, links between regions draw from `inter`, and a
/// schedule of [`LinkDegradation`]s scales in-scope links as virtual time
/// passes.
#[derive(Clone, Debug)]
pub struct RegionalLatency {
    /// The seeded peer → region assignment.
    pub map: RegionMap,
    /// Per-region models for links whose endpoints share a region: a link
    /// inside region `r` draws from `intra[r]`.  Each region owning its own
    /// jitter stream is what lets the sharded event engine sample
    /// intra-region latencies without cross-shard RNG contention — and the
    /// streams are derived deterministically from the one intra seed, so
    /// the split itself is reproducible.
    pub intra: Vec<LatencyModel>,
    /// Model for links that cross a region boundary (a single stream:
    /// cross-region traffic serialises through the inter-region barrier
    /// anyway).
    pub inter: Box<LatencyModel>,
    /// Scheduled degradations, applied multiplicatively when overlapping.
    pub degradations: Vec<LinkDegradation>,
}

impl RegionalLatency {
    fn sample(&mut self, from: PeerId, to: PeerId, at: SimTime) -> SimTime {
        let from_region = self.map.region_of(from);
        let to_region = self.map.region_of(to);
        let base = if from_region == to_region {
            self.intra[to_region as usize].sample(from, to, at)
        } else {
            self.inter.sample(from, to, at)
        };
        let mut factor = 1.0f64;
        for degradation in &self.degradations {
            if degradation.scope.covers(from_region, to_region) {
                factor *= degradation.factor_at(at);
            }
        }
        if factor == 1.0 {
            base
        } else {
            SimTime::from_micros((base.as_micros() as f64 * factor).round() as u64)
        }
    }
}

/// How long a message takes from one peer to another.
///
/// The model owns its own [`SimRng`] stream, deliberately separate from the
/// protocol RNGs: switching latency models (or sampling from one) never
/// perturbs join points, query keys or victim choices, which is what makes
/// the constant-zero model reproduce the count-only substrate *exactly*.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every link takes the same fixed time.  `Constant(SimTime::ZERO)` is
    /// the legacy count-only behaviour: all messages deliver "instantly"
    /// and every operation has zero virtual latency.
    Constant(SimTime),
    /// Uniform jitter in `[min, max]` — a flat random spread around a LAN- or
    /// WAN-like base latency.
    Uniform {
        /// Smallest possible link latency.
        min: SimTime,
        /// Largest possible link latency.
        max: SimTime,
        /// Seeded generator for the jitter stream.
        rng: SimRng,
    },
    /// Log-normal latency — the standard heavy-tailed model of internet
    /// round-trip times: most links are near the median, a few are much
    /// slower.
    LogNormal {
        /// Median link latency (the distribution's scale parameter).
        median: SimTime,
        /// Shape parameter σ of the underlying normal; larger means a
        /// heavier tail.  Typical internet fits use 0.3–0.7.
        sigma: f64,
        /// Seeded generator for the latency stream.
        rng: SimRng,
    },
    /// Topology-aware latency: peers hash into regions with separate
    /// intra-/inter-region models and a schedule of timed link
    /// degradations.  The only model whose samples depend on the endpoints
    /// and on virtual time.
    Regional(Box<RegionalLatency>),
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::zero()
    }
}

impl LatencyModel {
    /// The legacy count-only model: every delivery is instantaneous.
    pub fn zero() -> Self {
        LatencyModel::Constant(SimTime::ZERO)
    }

    /// A constant per-link latency.
    pub fn constant(latency: SimTime) -> Self {
        LatencyModel::Constant(latency)
    }

    /// Uniform jitter in `[min, max]`, drawn from a stream seeded with
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn uniform(min: SimTime, max: SimTime, seed: u64) -> Self {
        assert!(min <= max, "uniform latency requires min <= max");
        LatencyModel::Uniform {
            min,
            max,
            rng: SimRng::seeded(seed),
        }
    }

    /// Log-normal latency with the given median and shape, drawn from a
    /// stream seeded with `seed`.
    pub fn log_normal(median: SimTime, sigma: f64, seed: u64) -> Self {
        LatencyModel::LogNormal {
            median,
            sigma,
            rng: SimRng::seeded(seed),
        }
    }

    /// Topology-aware latency over `map`: intra-region links draw from
    /// `intra`, cross-region links from `inter`, with `degradations` scaling
    /// in-scope links as virtual time passes.
    ///
    /// `intra` is replicated into one model per region, each with a jitter
    /// stream deterministically derived from the original (region `r` gets
    /// `derive(r)`), so every shard of the event engine owns an independent
    /// per-region RNG stream.
    pub fn regional(
        map: RegionMap,
        intra: LatencyModel,
        inter: LatencyModel,
        degradations: Vec<LinkDegradation>,
    ) -> Self {
        let intra = (0..map.regions())
            .map(|r| intra.with_derived_stream(u64::from(r)))
            .collect();
        LatencyModel::Regional(Box::new(RegionalLatency {
            map,
            intra,
            inter: Box::new(inter),
            degradations,
        }))
    }

    /// A copy of this model whose jitter stream(s) are re-derived with
    /// `salt`, leaving the distribution parameters untouched.  Deriving from
    /// the embedded stream's *seed* (not its state) keeps the result
    /// deterministic however many samples the original has drawn.
    fn with_derived_stream(&self, salt: u64) -> LatencyModel {
        match self {
            LatencyModel::Constant(latency) => LatencyModel::Constant(*latency),
            LatencyModel::Uniform { min, max, rng } => LatencyModel::Uniform {
                min: *min,
                max: *max,
                rng: rng.derive(salt),
            },
            LatencyModel::LogNormal { median, sigma, rng } => LatencyModel::LogNormal {
                median: *median,
                sigma: *sigma,
                rng: rng.derive(salt),
            },
            LatencyModel::Regional(regional) => LatencyModel::Regional(Box::new(RegionalLatency {
                map: regional.map,
                intra: regional
                    .intra
                    .iter()
                    .map(|m| m.with_derived_stream(salt))
                    .collect(),
                inter: Box::new(regional.inter.with_derived_stream(salt)),
                degradations: regional.degradations.clone(),
            })),
        }
    }

    /// The region assignment of a [`Regional`](LatencyModel::Regional)
    /// model — the shard boundary the event queue organises around.
    pub fn region_map(&self) -> Option<RegionMap> {
        match self {
            LatencyModel::Regional(regional) => Some(regional.map),
            _ => None,
        }
    }

    /// `true` if every sample is zero (the count-only model).
    pub fn is_zero(&self) -> bool {
        matches!(self, LatencyModel::Constant(t) if t.is_zero())
    }

    /// Draws the latency of one message from `from` to `to`, sent at
    /// virtual time `at`.
    ///
    /// The endpoints and the send time are part of the contract so that
    /// models can be topology-aware; the [`Regional`](LatencyModel::Regional)
    /// model uses both, the others ignore them.
    pub fn sample(&mut self, from: PeerId, to: PeerId, at: SimTime) -> SimTime {
        match self {
            LatencyModel::Constant(latency) => *latency,
            LatencyModel::Uniform { min, max, rng } => {
                if min == max {
                    *min
                } else {
                    SimTime::from_micros(rng.uniform_u64(min.as_micros(), max.as_micros() + 1))
                }
            }
            LatencyModel::LogNormal { median, sigma, rng } => {
                // Box–Muller transform: two uniforms -> one standard normal.
                let u1 = rng.uniform_f64().max(f64::MIN_POSITIVE);
                let u2 = rng.uniform_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let factor = (*sigma * z).exp();
                SimTime::from_micros((median.as_micros() as f64 * factor).round() as u64)
            }
            LatencyModel::Regional(regional) => regional.sample(from, to, at),
        }
    }
}

/// A seed-free *description* of a latency model.
///
/// Scenario plans are built once per profile but instantiated once per
/// repetition with a per-repetition seed; a plan therefore carries the
/// distribution parameters and [`build`](LatencyPlan::build) turns them into
/// a seeded [`LatencyModel`] on demand.
#[derive(Clone, Debug)]
pub enum LatencyPlan {
    /// Fixed per-link latency (zero = the count-only model).
    Constant(SimTime),
    /// Uniform jitter in `[min, max]`.
    Uniform {
        /// Smallest possible link latency.
        min: SimTime,
        /// Largest possible link latency.
        max: SimTime,
    },
    /// Log-normal latency with the given median and shape.
    LogNormal {
        /// Median link latency.
        median: SimTime,
        /// Shape parameter σ of the underlying normal.
        sigma: f64,
    },
    /// Topology-aware latency: seeded regions, nested intra/inter plans and
    /// a degradation schedule.
    Regional {
        /// The seeded peer → region assignment (its salt is part of the
        /// plan, so regions are stable across repetitions).
        map: RegionMap,
        /// Plan for links whose endpoints share a region.
        intra: Box<LatencyPlan>,
        /// Plan for links that cross a region boundary.
        inter: Box<LatencyPlan>,
        /// Scheduled degradations.
        degradations: Vec<LinkDegradation>,
    },
}

impl LatencyPlan {
    /// Instantiates the plan with jitter streams seeded from `seed`.
    ///
    /// For the non-regional plans the seed is used verbatim, so
    /// `LatencyPlan::LogNormal { m, s }.build(seed)` is byte-for-byte
    /// `LatencyModel::log_normal(m, s, seed)` — the legacy scenarios depend
    /// on this to stay fixture-identical.
    pub fn build(&self, seed: u64) -> LatencyModel {
        match self {
            LatencyPlan::Constant(latency) => LatencyModel::constant(*latency),
            LatencyPlan::Uniform { min, max } => LatencyModel::uniform(*min, *max, seed),
            LatencyPlan::LogNormal { median, sigma } => {
                LatencyModel::log_normal(*median, *sigma, seed)
            }
            LatencyPlan::Regional {
                map,
                intra,
                inter,
                degradations,
            } => LatencyModel::regional(
                *map,
                intra.build(seed ^ 0x17A4),
                inter.build(seed ^ 0x17E4),
                degradations.clone(),
            ),
        }
    }

    /// The region assignment, for plans that have one.
    pub fn region_map(&self) -> Option<RegionMap> {
        match self {
            LatencyPlan::Regional { map, .. } => Some(*map),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(2500).as_millis_f64(), 2.5);
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_micros(1).is_zero());
    }

    #[test]
    fn sim_time_arithmetic_is_saturating_on_subtraction() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(b - a, SimTime::ZERO);
        let mut c = b;
        c += a;
        assert_eq!(c, SimTime::from_micros(14));
    }

    #[test]
    fn sim_time_display_picks_a_readable_unit() {
        assert_eq!(format!("{}", SimTime::from_micros(7)), "7µs");
        assert_eq!(format!("{}", SimTime::from_micros(2_500)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }

    #[test]
    fn constant_model_is_exact_and_zero_detects() {
        let mut zero = LatencyModel::zero();
        assert!(zero.is_zero());
        assert_eq!(
            zero.sample(PeerId(0), PeerId(1), SimTime::ZERO),
            SimTime::ZERO
        );
        let mut fixed = LatencyModel::constant(SimTime::from_millis(5));
        assert!(!fixed.is_zero());
        for _ in 0..10 {
            assert_eq!(
                fixed.sample(PeerId(0), PeerId(1), SimTime::ZERO),
                SimTime::from_millis(5)
            );
        }
    }

    #[test]
    fn uniform_model_respects_bounds() {
        let min = SimTime::from_micros(100);
        let max = SimTime::from_micros(200);
        let mut model = LatencyModel::uniform(min, max, 42);
        for _ in 0..1000 {
            let s = model.sample(PeerId(0), PeerId(1), SimTime::ZERO);
            assert!(s >= min && s <= max, "sample {s} out of bounds");
        }
        let mut degenerate = LatencyModel::uniform(min, min, 42);
        assert_eq!(degenerate.sample(PeerId(0), PeerId(1), SimTime::ZERO), min);
    }

    #[test]
    fn log_normal_model_is_positive_and_centred_near_the_median() {
        let median = SimTime::from_millis(40);
        let mut model = LatencyModel::log_normal(median, 0.5, 7);
        let mut below = 0usize;
        let n = 2000usize;
        for _ in 0..n {
            let s = model.sample(PeerId(0), PeerId(1), SimTime::ZERO);
            assert!(s > SimTime::ZERO);
            if s < median {
                below += 1;
            }
        }
        // The median of a log-normal is its scale parameter: about half the
        // samples fall on each side.
        assert!(
            (n / 2).abs_diff(below) < n / 10,
            "{below}/{n} samples below the median"
        );
    }

    #[test]
    fn seeded_models_are_deterministic() {
        let mut a = LatencyModel::log_normal(SimTime::from_millis(10), 0.4, 99);
        let mut b = LatencyModel::log_normal(SimTime::from_millis(10), 0.4, 99);
        for _ in 0..100 {
            assert_eq!(
                a.sample(PeerId(0), PeerId(1), SimTime::ZERO),
                b.sample(PeerId(0), PeerId(1), SimTime::ZERO)
            );
        }
    }

    #[test]
    fn region_map_is_stable_and_spreads_peers() {
        let map = RegionMap::new(4, 0xBA70);
        let twin = RegionMap::new(4, 0xBA70);
        let mut counts = [0usize; 4];
        for id in 0..1000u32 {
            let region = map.region_of(PeerId(id));
            assert!(region < 4);
            assert_eq!(region, twin.region_of(PeerId(id)), "copies must agree");
            counts[region as usize] += 1;
        }
        // Hash spread: every region gets a meaningful share of 1000 peers.
        for (region, count) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(count),
                "region {region} got {count}/1000 peers"
            );
        }
        // A different salt shuffles the assignment.
        let other = RegionMap::new(4, 0x5EED);
        assert!((0..1000u32).any(|id| map.region_of(PeerId(id)) != other.region_of(PeerId(id))));
        assert!(map.same_region(PeerId(3), PeerId(3)));
    }

    #[test]
    fn link_scopes_cover_the_expected_region_pairs() {
        assert!(LinkScope::All.covers(0, 1));
        assert!(LinkScope::IntraRegion.covers(2, 2));
        assert!(!LinkScope::IntraRegion.covers(0, 1));
        assert!(LinkScope::InterRegion.covers(0, 1));
        assert!(!LinkScope::InterRegion.covers(2, 2));
        assert!(LinkScope::Region(1).covers(1, 3));
        assert!(LinkScope::Region(1).covers(3, 1));
        assert!(!LinkScope::Region(1).covers(0, 3));
    }

    #[test]
    fn degradation_ramps_linearly_and_ends() {
        let degradation = LinkDegradation {
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(30),
            ramp: SimTime::from_secs(4),
            factor: 5.0,
            scope: LinkScope::All,
        };
        assert_eq!(degradation.factor_at(SimTime::from_secs(9)), 1.0);
        assert_eq!(degradation.factor_at(SimTime::from_secs(10)), 1.0);
        assert_eq!(degradation.factor_at(SimTime::from_secs(12)), 3.0);
        assert_eq!(degradation.factor_at(SimTime::from_secs(14)), 5.0);
        assert_eq!(degradation.factor_at(SimTime::from_secs(29)), 5.0);
        assert_eq!(degradation.factor_at(SimTime::from_secs(30)), 1.0);
        // A zero ramp switches instantly; a MAX window never closes.
        let step = LinkDegradation {
            ramp: SimTime::ZERO,
            until: SimTime::MAX,
            ..degradation
        };
        assert_eq!(step.factor_at(SimTime::from_secs(10)), 5.0);
        assert_eq!(step.factor_at(SimTime::from_secs(1_000_000)), 5.0);
    }

    #[test]
    fn regional_model_separates_intra_and_inter_links() {
        let map = RegionMap::new(2, 7);
        // Find one same-region and one cross-region pair.
        let base = PeerId(0);
        let same = (1..100)
            .map(PeerId)
            .find(|p| map.same_region(base, *p))
            .unwrap();
        let cross = (1..100)
            .map(PeerId)
            .find(|p| !map.same_region(base, *p))
            .unwrap();
        let mut model = LatencyModel::regional(
            map,
            LatencyModel::constant(SimTime::from_millis(5)),
            LatencyModel::constant(SimTime::from_millis(50)),
            vec![LinkDegradation {
                from: SimTime::from_secs(10),
                until: SimTime::from_secs(20),
                ramp: SimTime::ZERO,
                factor: 5.0,
                scope: LinkScope::InterRegion,
            }],
        );
        assert!(!model.is_zero());
        assert_eq!(
            model.sample(base, same, SimTime::ZERO),
            SimTime::from_millis(5)
        );
        assert_eq!(
            model.sample(base, cross, SimTime::ZERO),
            SimTime::from_millis(50)
        );
        // Inside the degradation window only cross-region links slow down.
        let mid = SimTime::from_secs(15);
        assert_eq!(model.sample(base, same, mid), SimTime::from_millis(5));
        assert_eq!(model.sample(base, cross, mid), SimTime::from_millis(250));
        // And the window closes.
        let after = SimTime::from_secs(25);
        assert_eq!(model.sample(base, cross, after), SimTime::from_millis(50));
    }

    #[test]
    fn regional_model_gives_each_region_its_own_seeded_stream() {
        let map = RegionMap::new(4, 0xBA70);
        let build = || {
            LatencyModel::regional(
                map,
                LatencyModel::log_normal(SimTime::from_millis(10), 0.5, 77),
                LatencyModel::constant(SimTime::from_millis(60)),
                Vec::new(),
            )
        };
        // Pick one intra-region pair in each of two different regions.
        let pair_in = |region: u32| {
            let a = (0..200u32)
                .map(PeerId)
                .find(|p| map.region_of(*p) == region)
                .unwrap();
            let b = (a.0 + 1..400)
                .map(PeerId)
                .find(|p| map.region_of(*p) == region)
                .unwrap();
            (a, b)
        };
        let (a0, b0) = pair_in(0);
        let (a1, b1) = pair_in(1);
        // Different regions draw from different (uncorrelated) streams...
        let mut m = build();
        let r0: Vec<_> = (0..16).map(|_| m.sample(a0, b0, SimTime::ZERO)).collect();
        let mut m = build();
        let r1: Vec<_> = (0..16).map(|_| m.sample(a1, b1, SimTime::ZERO)).collect();
        assert_ne!(r0, r1, "regions must not share one jitter stream");
        // ...and sampling in region 1 first leaves region 0's stream
        // untouched: the per-region split is what decouples shards.
        let mut m = build();
        for _ in 0..16 {
            m.sample(a1, b1, SimTime::ZERO);
        }
        let r0_after: Vec<_> = (0..16).map(|_| m.sample(a0, b0, SimTime::ZERO)).collect();
        assert_eq!(r0, r0_after, "region 0's stream must be independent");
    }

    #[test]
    fn latency_plan_builds_the_seeded_model_verbatim() {
        // The non-regional plans must hand the seed through unchanged: the
        // legacy scenario fixtures depend on it.
        let plan = LatencyPlan::LogNormal {
            median: SimTime::from_millis(40),
            sigma: 0.5,
        };
        let mut from_plan = plan.build(1234);
        let mut direct = LatencyModel::log_normal(SimTime::from_millis(40), 0.5, 1234);
        for _ in 0..50 {
            assert_eq!(
                from_plan.sample(PeerId(0), PeerId(1), SimTime::ZERO),
                direct.sample(PeerId(0), PeerId(1), SimTime::ZERO)
            );
        }
        assert!(plan.region_map().is_none());

        let regional = LatencyPlan::Regional {
            map: RegionMap::new(3, 9),
            intra: Box::new(LatencyPlan::Constant(SimTime::from_millis(1))),
            inter: Box::new(LatencyPlan::Uniform {
                min: SimTime::from_millis(10),
                max: SimTime::from_millis(20),
            }),
            degradations: Vec::new(),
        };
        assert_eq!(regional.region_map(), Some(RegionMap::new(3, 9)));
        let mut a = regional.build(7);
        let mut b = regional.build(7);
        for id in 0..32u32 {
            assert_eq!(
                a.sample(PeerId(0), PeerId(id), SimTime::ZERO),
                b.sample(PeerId(0), PeerId(id), SimTime::ZERO)
            );
        }
    }
}
