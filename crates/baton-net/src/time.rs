//! Virtual time and link-latency models for the discrete-event engine.
//!
//! The original substrate counted messages and nothing else; every question
//! the paper's Figure 8 asks is a message count.  Latency, throughput and
//! churn-under-load require a notion of *when* things happen, so the
//! simulator keeps a virtual clock: every message is scheduled for delivery
//! at `send time + link latency` and the network advances its clock as the
//! event queue drains.  Virtual time is deterministic — it is derived purely
//! from the seeded latency model, never from the wall clock.

use std::ops::{Add, AddAssign, Sub};

use crate::peer::PeerId;
use crate::rng::SimRng;

/// A point in (or span of) virtual time, in integer microseconds.
///
/// One type serves as both instant and duration — the simulation starts at
/// [`SimTime::ZERO`] and only ever moves forward, so the distinction buys
/// nothing but conversion noise here.  Microsecond resolution keeps the
/// arithmetic exact (no float drift in the event queue ordering) while
/// comfortably covering sub-millisecond link jitter and multi-hour runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time point / duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// A time point / duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// A time point / duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// The value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in milliseconds, as a float (for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in seconds, as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` at the origin (or for a zero duration).
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The span from `earlier` to `self`, clamped to zero if `earlier` is
    /// actually later (virtual time never runs backwards, so a non-zero
    /// clamp indicates a caller bug, not an engine state).
    pub fn saturating_sub(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

/// How long a message takes from one peer to another.
///
/// The model owns its own [`SimRng`] stream, deliberately separate from the
/// protocol RNGs: switching latency models (or sampling from one) never
/// perturbs join points, query keys or victim choices, which is what makes
/// the constant-zero model reproduce the count-only substrate *exactly*.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every link takes the same fixed time.  `Constant(SimTime::ZERO)` is
    /// the legacy count-only behaviour: all messages deliver "instantly"
    /// and every operation has zero virtual latency.
    Constant(SimTime),
    /// Uniform jitter in `[min, max]` — a flat random spread around a LAN- or
    /// WAN-like base latency.
    Uniform {
        /// Smallest possible link latency.
        min: SimTime,
        /// Largest possible link latency.
        max: SimTime,
        /// Seeded generator for the jitter stream.
        rng: SimRng,
    },
    /// Log-normal latency — the standard heavy-tailed model of internet
    /// round-trip times: most links are near the median, a few are much
    /// slower.
    LogNormal {
        /// Median link latency (the distribution's scale parameter).
        median: SimTime,
        /// Shape parameter σ of the underlying normal; larger means a
        /// heavier tail.  Typical internet fits use 0.3–0.7.
        sigma: f64,
        /// Seeded generator for the latency stream.
        rng: SimRng,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::zero()
    }
}

impl LatencyModel {
    /// The legacy count-only model: every delivery is instantaneous.
    pub fn zero() -> Self {
        LatencyModel::Constant(SimTime::ZERO)
    }

    /// A constant per-link latency.
    pub fn constant(latency: SimTime) -> Self {
        LatencyModel::Constant(latency)
    }

    /// Uniform jitter in `[min, max]`, drawn from a stream seeded with
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn uniform(min: SimTime, max: SimTime, seed: u64) -> Self {
        assert!(min <= max, "uniform latency requires min <= max");
        LatencyModel::Uniform {
            min,
            max,
            rng: SimRng::seeded(seed),
        }
    }

    /// Log-normal latency with the given median and shape, drawn from a
    /// stream seeded with `seed`.
    pub fn log_normal(median: SimTime, sigma: f64, seed: u64) -> Self {
        LatencyModel::LogNormal {
            median,
            sigma,
            rng: SimRng::seeded(seed),
        }
    }

    /// `true` if every sample is zero (the count-only model).
    pub fn is_zero(&self) -> bool {
        matches!(self, LatencyModel::Constant(t) if t.is_zero())
    }

    /// Draws the latency of one message from `from` to `to`.
    ///
    /// The endpoints are part of the contract so that future models can be
    /// topology-aware (e.g. coordinate-based delay); the current models are
    /// endpoint-oblivious.
    pub fn sample(&mut self, from: PeerId, to: PeerId) -> SimTime {
        let _ = (from, to);
        match self {
            LatencyModel::Constant(latency) => *latency,
            LatencyModel::Uniform { min, max, rng } => {
                if min == max {
                    *min
                } else {
                    SimTime::from_micros(rng.uniform_u64(min.as_micros(), max.as_micros() + 1))
                }
            }
            LatencyModel::LogNormal { median, sigma, rng } => {
                // Box–Muller transform: two uniforms -> one standard normal.
                let u1 = rng.uniform_f64().max(f64::MIN_POSITIVE);
                let u2 = rng.uniform_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let factor = (*sigma * z).exp();
                SimTime::from_micros((median.as_micros() as f64 * factor).round() as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(2500).as_millis_f64(), 2.5);
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_micros(1).is_zero());
    }

    #[test]
    fn sim_time_arithmetic_is_saturating_on_subtraction() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(b - a, SimTime::ZERO);
        let mut c = b;
        c += a;
        assert_eq!(c, SimTime::from_micros(14));
    }

    #[test]
    fn sim_time_display_picks_a_readable_unit() {
        assert_eq!(format!("{}", SimTime::from_micros(7)), "7µs");
        assert_eq!(format!("{}", SimTime::from_micros(2_500)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }

    #[test]
    fn constant_model_is_exact_and_zero_detects() {
        let mut zero = LatencyModel::zero();
        assert!(zero.is_zero());
        assert_eq!(zero.sample(PeerId(0), PeerId(1)), SimTime::ZERO);
        let mut fixed = LatencyModel::constant(SimTime::from_millis(5));
        assert!(!fixed.is_zero());
        for _ in 0..10 {
            assert_eq!(fixed.sample(PeerId(0), PeerId(1)), SimTime::from_millis(5));
        }
    }

    #[test]
    fn uniform_model_respects_bounds() {
        let min = SimTime::from_micros(100);
        let max = SimTime::from_micros(200);
        let mut model = LatencyModel::uniform(min, max, 42);
        for _ in 0..1000 {
            let s = model.sample(PeerId(0), PeerId(1));
            assert!(s >= min && s <= max, "sample {s} out of bounds");
        }
        let mut degenerate = LatencyModel::uniform(min, min, 42);
        assert_eq!(degenerate.sample(PeerId(0), PeerId(1)), min);
    }

    #[test]
    fn log_normal_model_is_positive_and_centred_near_the_median() {
        let median = SimTime::from_millis(40);
        let mut model = LatencyModel::log_normal(median, 0.5, 7);
        let mut below = 0usize;
        let n = 2000usize;
        for _ in 0..n {
            let s = model.sample(PeerId(0), PeerId(1));
            assert!(s > SimTime::ZERO);
            if s < median {
                below += 1;
            }
        }
        // The median of a log-normal is its scale parameter: about half the
        // samples fall on each side.
        assert!(
            (n / 2).abs_diff(below) < n / 10,
            "{below}/{n} samples below the median"
        );
    }

    #[test]
    fn seeded_models_are_deterministic() {
        let mut a = LatencyModel::log_normal(SimTime::from_millis(10), 0.4, 99);
        let mut b = LatencyModel::log_normal(SimTime::from_millis(10), 0.4, 99);
        for _ in 0..100 {
            assert_eq!(
                a.sample(PeerId(0), PeerId(1)),
                b.sample(PeerId(0), PeerId(1))
            );
        }
    }
}
