//! The [`Overlay`] trait: one interface over every overlay simulator.
//!
//! The workspace compares three structured overlays — BATON (`baton-core`),
//! Chord (`baton-chord`) and the multiway tree (`baton-mtree`) — on
//! identical workloads.  Each system keeps its own rich, precise API
//! (protocol-specific reports, validation oracles), but the experiment
//! harness, the workload runners and the figure drivers only need a common
//! denominator: build churn, move data, run queries, read message costs.
//! That denominator is this trait.
//!
//! Anything a system cannot do is a *capability*, not a special case in the
//! harness: Chord reports `range_queries: false` and its
//! [`Overlay::search_range`] returns [`OverlayError::Unsupported`], so a
//! generic driver simply skips the series — exactly how the paper's
//! Figure 8(e) omits Chord.
//!
//! New baselines (D3-tree, ART, …) plug into every existing experiment by
//! implementing this trait; no driver changes required.

use crate::peer::PeerId;
use crate::stats::{Histogram, MessageStats};
use crate::time::{LatencyModel, SimTime};
use crate::trace::{TraceBuffer, TraceConfig};

/// How long a failed peer stays dead before the surviving replicas finish
/// re-replicating its slice (tentpole (c): timed repair on the virtual
/// clock).
///
/// Two delays model the two recovery regimes: `fast` is the re-replication
/// time when at least one replica of the dead peer's slice survives (the
/// copy is streamed from a live neighbour), `slow` is the full
/// detect-and-rebuild time when no replica survived — which is always the
/// case at k = 1, where the repair must wait for the §III-D failure
/// protocol's timeout-driven detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairPolicy {
    /// Repair delay when a surviving replica can stream the slice back.
    pub fast: SimTime,
    /// Repair delay when no replica survived (timeout-detected rebuild).
    pub slow: SimTime,
}

impl RepairPolicy {
    /// The base repair delay for a failure, by replica survival.
    pub fn delay(&self, replica_survives: bool) -> SimTime {
        if replica_survives {
            self.fast
        } else {
            self.slow
        }
    }
}

/// What an overlay implementation can and cannot do.
///
/// Drivers consult the capabilities instead of hard-coding system names, so
/// adding a baseline never means touching the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlayCapabilities {
    /// The overlay preserves key order and can answer range queries.
    /// (`false` for DHTs such as Chord: hashing destroys order.)
    pub range_queries: bool,
    /// The overlay runs a load-balancing protocol; the
    /// `balance_messages` field of [`OpCost`] and
    /// [`Overlay::balance_shift_histogram`] are meaningful.
    pub load_balancing: bool,
    /// The overlay supports abrupt node failures via
    /// [`Overlay::fail_random`].
    pub failures: bool,
    /// The overlay is a tree and [`Overlay::access_load_by_level`] reports
    /// per-level load.
    pub level_load: bool,
    /// The overlay offers a direct deterministic bulk construction next to
    /// its default join-by-join build (registered as the `bulk` constructor
    /// of its `OverlaySpec`).  A bulk-built overlay is structurally valid
    /// and behaviourally equivalent to a join-built one, but not
    /// byte-identical — drivers only take the fast path when explicitly
    /// asked (`build: Bulk` scenario knob, perf-harness scale rows).
    pub bulk_build: bool,
}

impl OverlayCapabilities {
    /// Capabilities of a plain DHT: exact queries and churn only.
    pub const DHT: Self = Self {
        range_queries: false,
        load_balancing: false,
        failures: false,
        level_load: false,
        bulk_build: false,
    };

    /// Capabilities of an order-preserving tree without balancing.
    pub const PLAIN_TREE: Self = Self {
        range_queries: true,
        load_balancing: false,
        failures: false,
        level_load: true,
        bulk_build: false,
    };

    /// Every workload capability enabled (bulk construction stays a
    /// per-overlay opt-in via [`with_bulk_build`](Self::with_bulk_build)).
    pub const FULL: Self = Self {
        range_queries: true,
        load_balancing: true,
        failures: true,
        level_load: true,
        bulk_build: false,
    };

    /// This preset, plus the bulk-construction capability.
    pub const fn with_bulk_build(mut self) -> Self {
        self.bulk_build = true;
        self
    }
}

/// Message cost of one churn event (join, leave or failure recovery).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnCost {
    /// Messages to find the join node / the replacement node (Figure 8(a)).
    pub locate_messages: u64,
    /// Messages to update routing tables and links afterwards
    /// (Figure 8(b)).
    pub update_messages: u64,
    /// Data items lost by the event (non-zero only for failures on systems
    /// that do not replicate).
    pub lost_items: usize,
}

impl ChurnCost {
    /// Total messages of the event.
    pub fn total_messages(&self) -> u64 {
        self.locate_messages + self.update_messages
    }
}

/// Message cost of one data operation (insert, delete, exact or range
/// query).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Messages used by the operation, load balancing included.
    pub messages: u64,
    /// Number of matching values found (queries) or removed (deletes).
    pub matches: usize,
    /// Nodes whose range intersected the query (range queries; 1 for
    /// point operations that reached an owner).
    pub nodes_visited: usize,
    /// Messages spent on load balancing triggered by the operation
    /// (Figure 8(g); zero for systems without balancing).
    pub balance_messages: u64,
}

/// Errors surfaced through the [`Overlay`] interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayError {
    /// The operation is outside the overlay's capabilities (e.g. a range
    /// query on Chord).  Generic drivers treat this as "skip the series",
    /// not as a failure.
    Unsupported(&'static str),
    /// The operation failed; the message is the underlying system's error
    /// rendering.
    Op(String),
    /// The operation could not be completed because the peers holding (or
    /// leading to) the data are currently dead — the key's availability
    /// window, not a protocol bug.  Workload runners count these per op
    /// class instead of treating them as generic failures.
    Unavailable(String),
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            OverlayError::Op(message) => write!(f, "overlay operation failed: {message}"),
            OverlayError::Unavailable(message) => {
                write!(f, "operation hit an availability window: {message}")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// Result alias for [`Overlay`] operations.
pub type OverlayResult<T> = Result<T, OverlayError>;

/// A peer-to-peer overlay under simulation: the common surface the
/// workload runners and figure drivers program against.
///
/// Implementations exist for `BatonSystem`, `ChordSystem` and
/// `MTreeSystem`; the harness holds them as `Box<dyn Overlay>`.
pub trait Overlay {
    /// Short human-readable name ("BATON", "Chord", …), used as the series
    /// label in figures.
    fn name(&self) -> &'static str;

    /// What this overlay can do; drivers skip unsupported series.
    fn capabilities(&self) -> OverlayCapabilities;

    /// Number of live nodes.
    fn node_count(&self) -> usize;

    /// Total data items stored across all nodes.
    fn total_items(&self) -> usize;

    /// Message statistics of the underlying simulated network.
    fn stats(&self) -> &MessageStats;

    /// Mutable statistics (experiments reset per-peer counters between
    /// phases, as in Figure 8(f)).
    fn stats_mut(&mut self) -> &mut MessageStats;

    /// The virtual instant the overlay's simulated network has reached.
    ///
    /// Default: the origin — for overlays that do not simulate time.
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }

    /// Advances the network's arrival clock to `at`: operations issued after
    /// this call are stamped as arriving at `at`, so an open-loop workload
    /// can interleave operations in virtual time.
    ///
    /// Default: no-op — for overlays that do not simulate time.
    fn advance_to(&mut self, _at: SimTime) {}

    /// Replaces the link-latency model of the overlay's simulated network.
    ///
    /// Default: no-op — for overlays that do not simulate time; such
    /// overlays simply report zero latency for every operation.
    fn set_latency_model(&mut self, _model: LatencyModel) {}

    /// Approximate resident bytes of the overlay's protocol state: node
    /// structs, links, routing tables and stored items, including their
    /// heap allocations, but excluding the shared network substrate (event
    /// queue, statistics).  This is what the perf harness divides by
    /// `node_count()` for the bytes-per-peer rows.
    ///
    /// Default: 0 — for test doubles and overlays that do not report.
    fn estimated_state_bytes(&self) -> u64 {
        0
    }

    /// `(label, virtual latency)` of every finished operation, in issue
    /// order — the raw series behind the latency percentiles the harness
    /// reports next to the paper's message counts.
    fn op_latencies(&self) -> Vec<(String, SimTime)> {
        self.stats().op_latencies()
    }

    /// Installs a route recorder on the overlay's network: every sampled
    /// operation from now on records a per-hop
    /// [`Span`](crate::trace::Span), bounded by the config's ring-buffer
    /// capacity.  Pure observation — statistics, latency draws and message
    /// counts are untouched.
    ///
    /// Default: no-op — for test doubles without a simulated network;
    /// [`take_trace`](Self::take_trace) then returns `None`.
    fn set_trace(&mut self, _config: TraceConfig) {}

    /// Removes and returns the route recorder installed by
    /// [`set_trace`](Self::set_trace), disabling tracing.
    ///
    /// Default: `None`.
    fn take_trace(&mut self) -> Option<TraceBuffer> {
        None
    }

    /// Extracts an immutable routing/ownership snapshot of the overlay's
    /// current state for the concurrent serve front-end
    /// ([`crate::serve`]): dense per-peer key ranges, item indexes, link
    /// tables and replica sets that lock-free readers answer exact and
    /// range queries from with zero event-queue traffic.  Pure
    /// observation — statistics, RNG streams and the virtual clock are
    /// untouched, so a run that extracts snapshots stays byte-identical
    /// to one that does not.
    ///
    /// Default: `None` — for test doubles and overlays without snapshot
    /// support.
    fn routing_snapshot(&self) -> Option<crate::serve::RoutingSnapshot> {
        None
    }

    /// The live peers, sorted by id.
    ///
    /// Fault plans use this to target *specific* peers (e.g. "kill half of
    /// region 2"); the id order is the stable sampling order the systems
    /// maintain for `random_peer`.
    ///
    /// Default: empty — overlays that do not expose their peer list cannot
    /// be targeted by region-scoped faults (region kills degrade to no-ops).
    fn peers(&self) -> &[PeerId] {
        &[]
    }

    /// A new node joins through a random existing contact.
    fn join_random(&mut self) -> OverlayResult<ChurnCost>;

    /// A random node departs gracefully.
    fn leave_random(&mut self) -> OverlayResult<ChurnCost>;

    /// The *specific* peer `peer` departs gracefully.
    ///
    /// Default: unsupported — an overlay supporting neither this nor
    /// [`fail_peer`](Self::fail_peer) cannot be hit by targeted fault
    /// plans: its fault kills are *skipped* (never degraded to removing a
    /// random peer, which would misreport a correlated failure as an
    /// uncorrelated one).
    fn leave_peer(&mut self, _peer: PeerId) -> OverlayResult<ChurnCost> {
        Err(OverlayError::Unsupported("targeted departure"))
    }

    /// A random node fails abruptly and the overlay recovers.
    ///
    /// Default: unsupported (see [`OverlayCapabilities::failures`]).
    fn fail_random(&mut self) -> OverlayResult<ChurnCost> {
        Err(OverlayError::Unsupported("failure injection"))
    }

    /// The *specific* peer `peer` fails abruptly and the overlay recovers.
    ///
    /// Default: unsupported — fault plans degrade a targeted failure to a
    /// targeted graceful departure ([`leave_peer`](Self::leave_peer)),
    /// mirroring how [`fail_random`](Self::fail_random) degrades on
    /// overlays without a failure protocol; an overlay supporting neither
    /// targeted form is skipped rather than losing a random peer.
    fn fail_peer(&mut self, _peer: PeerId) -> OverlayResult<ChurnCost> {
        Err(OverlayError::Unsupported("targeted failure"))
    }

    /// The replication degree k currently in effect: every key lives at its
    /// routed owner plus k−1 deterministic replica peers.
    ///
    /// Default: 1 — no replication.
    fn replication(&self) -> usize {
        1
    }

    /// Sets the replication degree.  k = 1 (no replication) always
    /// succeeds; higher degrees are only accepted by overlays with a
    /// replica-placement rule.
    fn set_replication(&mut self, k: usize) -> OverlayResult<()> {
        if k == 1 {
            Ok(())
        } else {
            Err(OverlayError::Unsupported("replication"))
        }
    }

    /// `true` if `peer` is a member of the overlay and currently alive.
    ///
    /// Under deferred repair a failed peer stays in [`peers`](Self::peers)
    /// (its slice is still owned, just unavailable) until its repair runs,
    /// so fault plans filter victims through this instead of membership.
    ///
    /// Default: membership — for overlays that remove dead peers
    /// immediately, membership and liveness coincide.
    fn peer_alive(&self, peer: PeerId) -> bool {
        self.peers().binary_search(&peer).is_ok()
    }

    /// The *specific* peer `peer` fails abruptly but is **not** repaired
    /// yet: the overlay marks it dead and returns the repair delay (drawn
    /// per the policy and the replica survival of the peer's slice) after
    /// which the caller should invoke [`repair_peer`](Self::repair_peer).
    /// Between the two calls, reads for the dead peer's keys either fail
    /// over to a replica (k > 1) or surface
    /// [`OverlayError::Unavailable`].
    ///
    /// Default: unsupported — callers degrade to the immediate
    /// [`fail_peer`](Self::fail_peer) recovery.
    fn fail_peer_deferred(
        &mut self,
        _peer: PeerId,
        _policy: &RepairPolicy,
    ) -> OverlayResult<SimTime> {
        Err(OverlayError::Unsupported("deferred failure repair"))
    }

    /// Runs the repair for a peer previously failed through
    /// [`fail_peer_deferred`](Self::fail_peer_deferred): surviving replicas
    /// re-replicate the dead peer's slice and the structure is mended.
    ///
    /// Default: unsupported.
    fn repair_peer(&mut self, _peer: PeerId) -> OverlayResult<ChurnCost> {
        Err(OverlayError::Unsupported("deferred failure repair"))
    }

    /// `true` when a currently-dead peer's slice could stream from a live
    /// replica holder *right now* — the condition for its pending repair to
    /// take the policy's fast path.  The repair queue polls this after each
    /// completed repair: a victim classified for the slow path at kill time
    /// (its replica holders were dead too) is re-staged onto the fast path
    /// the moment an earlier repair brings a holder back.
    ///
    /// Default: `false` — overlays without replicated deferred repair never
    /// accelerate.
    fn repair_fast_eligible(&self, _peer: PeerId) -> bool {
        false
    }

    /// Places a dataset directly into the owning nodes' stores without
    /// routing — the data-load analogue of a bulk construction: zero
    /// messages, and every key lands at the node a routed insert would
    /// reach, so queries see the same dataset either way.  Returns `false`
    /// when the overlay has no direct path; callers fall back to routed
    /// inserts.  Like bulk construction itself, drivers only take this path
    /// when explicitly asked (`build: Bulk` scenario runs).
    ///
    /// Default: `false` — only overlays advertising
    /// [`OverlayCapabilities::bulk_build`] are expected to implement it.
    fn load_direct(&mut self, _data: &[(u64, u64)]) -> bool {
        false
    }

    /// Inserts `value` under `key` from a random issuer.
    fn insert(&mut self, key: u64, value: u64) -> OverlayResult<OpCost>;

    /// Deletes one value stored under `key` from a random issuer.
    fn delete(&mut self, key: u64) -> OverlayResult<OpCost>;

    /// Exact-match query for `key` from a random issuer.
    fn search_exact(&mut self, key: u64) -> OverlayResult<OpCost>;

    /// Range query for `[low, high)` from a random issuer.
    ///
    /// Returns [`OverlayError::Unsupported`] when
    /// [`OverlayCapabilities::range_queries`] is `false`.
    fn search_range(&mut self, low: u64, high: u64) -> OverlayResult<OpCost>;

    /// Average messages received per node at each tree level (Figure 8(f)).
    ///
    /// Default: empty (see [`OverlayCapabilities::level_load`]).
    fn access_load_by_level(&self) -> Vec<(u32, f64)> {
        Vec::new()
    }

    /// Distribution of load-balancing shift sizes (Figure 8(h)).
    ///
    /// Default: `None` (see [`OverlayCapabilities::load_balancing`]).
    fn balance_shift_histogram(&self) -> Option<&Histogram> {
        None
    }

    /// Checks the overlay's structural invariants.
    fn validate(&self) -> Result<(), String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal in-memory implementation used to exercise the trait's
    /// defaults and the error plumbing.
    struct Toy {
        stats: MessageStats,
        items: usize,
        nodes: usize,
    }

    impl Overlay for Toy {
        fn name(&self) -> &'static str {
            "Toy"
        }
        fn capabilities(&self) -> OverlayCapabilities {
            OverlayCapabilities::DHT
        }
        fn node_count(&self) -> usize {
            self.nodes
        }
        fn total_items(&self) -> usize {
            self.items
        }
        fn stats(&self) -> &MessageStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut MessageStats {
            &mut self.stats
        }
        fn join_random(&mut self) -> OverlayResult<ChurnCost> {
            self.nodes += 1;
            Ok(ChurnCost::default())
        }
        fn leave_random(&mut self) -> OverlayResult<ChurnCost> {
            if self.nodes <= 1 {
                return Err(OverlayError::Op("last node".into()));
            }
            self.nodes -= 1;
            Ok(ChurnCost::default())
        }
        fn insert(&mut self, _key: u64, _value: u64) -> OverlayResult<OpCost> {
            self.items += 1;
            Ok(OpCost {
                messages: 1,
                ..OpCost::default()
            })
        }
        fn delete(&mut self, _key: u64) -> OverlayResult<OpCost> {
            Ok(OpCost::default())
        }
        fn search_exact(&mut self, _key: u64) -> OverlayResult<OpCost> {
            Ok(OpCost::default())
        }
        fn search_range(&mut self, _low: u64, _high: u64) -> OverlayResult<OpCost> {
            Err(OverlayError::Unsupported("range query"))
        }
        fn validate(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn trait_objects_expose_defaults_and_capabilities() {
        let mut toy = Toy {
            stats: MessageStats::new(),
            items: 0,
            nodes: 1,
        };
        let overlay: &mut dyn Overlay = &mut toy;
        assert_eq!(overlay.name(), "Toy");
        assert!(!overlay.capabilities().range_queries);
        assert!(overlay.fail_random().is_err());
        assert!(overlay.access_load_by_level().is_empty());
        assert!(overlay.balance_shift_histogram().is_none());
        overlay.join_random().unwrap();
        assert_eq!(overlay.node_count(), 2);
        overlay.insert(1, 2).unwrap();
        assert_eq!(overlay.total_items(), 1);
        assert!(matches!(
            overlay.search_range(0, 10),
            Err(OverlayError::Unsupported(_))
        ));
        overlay.validate().unwrap();
    }

    #[test]
    fn costs_and_errors_format_and_total() {
        let cost = ChurnCost {
            locate_messages: 3,
            update_messages: 4,
            lost_items: 0,
        };
        assert_eq!(cost.total_messages(), 7);
        assert!(OverlayError::Unsupported("range query")
            .to_string()
            .contains("range query"));
        assert!(OverlayError::Op("boom".into()).to_string().contains("boom"));
        let presets = [
            OverlayCapabilities::FULL,
            OverlayCapabilities::DHT,
            OverlayCapabilities::PLAIN_TREE,
        ];
        assert_eq!(presets.iter().filter(|c| c.range_queries).count(), 2);
        assert_eq!(presets.iter().filter(|c| c.load_balancing).count(), 1);
        assert_eq!(presets.iter().filter(|c| c.level_load).count(), 2);
        // Bulk construction is never part of a preset; overlays opt in.
        assert_eq!(presets.iter().filter(|c| c.bulk_build).count(), 0);
        let bulk = OverlayCapabilities::FULL.with_bulk_build();
        assert!(bulk.bulk_build && bulk.range_queries);
    }

    #[test]
    fn replication_and_repair_defaults_are_off() {
        let mut toy = Toy {
            stats: MessageStats::new(),
            items: 0,
            nodes: 1,
        };
        let overlay: &mut dyn Overlay = &mut toy;
        assert_eq!(overlay.replication(), 1);
        overlay.set_replication(1).unwrap();
        assert!(matches!(
            overlay.set_replication(2),
            Err(OverlayError::Unsupported(_))
        ));
        // No peer list exposed: nothing is alive.
        assert!(!overlay.peer_alive(PeerId(0)));
        let policy = RepairPolicy {
            fast: SimTime::from_millis(500),
            slow: SimTime::from_secs(10),
        };
        assert_eq!(policy.delay(true), SimTime::from_millis(500));
        assert_eq!(policy.delay(false), SimTime::from_secs(10));
        assert!(overlay.fail_peer_deferred(PeerId(0), &policy).is_err());
        assert!(overlay.repair_peer(PeerId(0)).is_err());
        assert!(OverlayError::Unavailable("owner dead".into())
            .to_string()
            .contains("availability window"));
    }
}
