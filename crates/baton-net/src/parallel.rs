//! Process-global thread-count knob and a deterministic fork/join helper.
//!
//! The simulator parallelises at two levels.  Inside one run the event
//! queue is sharded by region (see [`SimNetwork`](crate::network::SimNetwork)),
//! and across runs the scenario engine executes independent
//! (overlay × repetition) units on a pool of OS threads.  Both levels take
//! their thread budget from this module: `--threads N` on the binaries
//! calls [`set_threads`], everything else calls [`threads`].
//!
//! Determinism contract: [`run_indexed`] assigns each unit a fixed index
//! and returns results **in index order**, so callers that aggregate in
//! index order produce byte-identical output regardless of how many worker
//! threads happened to execute the units, or in which wall-clock order they
//! finished.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// `0` means "not set": fall back to the machine's available parallelism.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Serialises [`with_threads`] callers: the budget is process-global, so
/// two concurrent scoped overrides would cross-talk without this lock.
static THREADS_SCOPE: Mutex<()> = Mutex::new(());

/// Sets the worker-thread budget for this process.
///
/// `0` restores the default (available parallelism).  Mirrors the style of
/// the process-global overlay filter: a plain global because the binaries
/// configure it once from the command line before any run starts.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The configured worker-thread budget: the value of the last
/// [`set_threads`] call, or the machine's available parallelism when unset
/// (falling back to 1 if even that is unknown).
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// The machine's available parallelism (what `--threads` defaults to).
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with the process-global thread budget temporarily set to `n`,
/// restoring the previous value afterwards (also on panic).
///
/// Scoped overrides from different threads are **serialised** against each
/// other: `set_threads` writes a process-wide atomic, so two concurrent
/// callers would otherwise observe each other's budget mid-run.  Tests and
/// harness code that need a specific budget should use this instead of raw
/// `set_threads`/`set_threads(0)` pairs.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _scope = THREADS_SCOPE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(THREADS.swap(n, Ordering::Relaxed));
    f()
}

/// Runs `count` independent units on up to [`threads`] worker threads and
/// returns their results **in index order**.
///
/// Workers claim unit indices from a shared atomic counter, so the
/// assignment of units to threads is racy — but each unit's inputs depend
/// only on its index and the results are reassembled by index, which is
/// what keeps the output bit-deterministic for any thread count.  With a
/// budget of one (or a single unit) the units run inline on the caller's
/// thread, with no pool at all.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(threads(), count, f)
}

/// [`run_indexed`] with an **explicit** thread budget instead of the
/// process-global one.
///
/// This is the test-safe entry point: callers that must not be affected by
/// (or affect) the global `--threads` knob pass their budget directly, so
/// concurrently running tests cannot cross-talk through the shared atomic.
pub fn run_indexed_with<T, F>(thread_budget: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread_budget.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, T)>> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("worker panicked"));
        }
    });
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, value) in per_worker.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("unit {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed_with(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_budget_runs_inline() {
        let out = run_indexed_with(1, 10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_units_is_fine() {
        let out: Vec<usize> = run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_budget_round_trips() {
        with_threads(3, || assert_eq!(threads(), 3));
        assert!(threads() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn explicit_budget_ignores_the_global_knob() {
        with_threads(1, || {
            // The global says "1 worker"; the explicit call still fans out
            // (and, more importantly, still returns index-ordered results).
            let out = run_indexed_with(4, 50, |i| i + 7);
            assert_eq!(out, (7..57).collect::<Vec<_>>());
            assert_eq!(threads(), 1);
        });
    }

    #[test]
    fn scoped_overrides_do_not_cross_talk() {
        // Regression test for the process-wide `set_threads` atomic: two
        // threads racing scoped overrides must each observe exactly their
        // own budget for the whole scope, and the prior value must be
        // restored afterwards.
        let before = threads();
        thread::scope(|scope| {
            for budget in [2usize, 5] {
                scope.spawn(move || {
                    for _ in 0..50 {
                        with_threads(budget, || {
                            assert_eq!(threads(), budget);
                            let out = run_indexed(8, |i| i);
                            assert_eq!(out, (0..8).collect::<Vec<_>>());
                            assert_eq!(threads(), budget);
                        });
                    }
                });
            }
        });
        assert_eq!(threads(), before);
    }
}
