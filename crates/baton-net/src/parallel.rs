//! Process-global thread-count knob and a deterministic fork/join helper.
//!
//! The simulator parallelises at two levels.  Inside one run the event
//! queue is sharded by region (see [`SimNetwork`](crate::network::SimNetwork)),
//! and across runs the scenario engine executes independent
//! (overlay × repetition) units on a pool of OS threads.  Both levels take
//! their thread budget from this module: `--threads N` on the binaries
//! calls [`set_threads`], everything else calls [`threads`].
//!
//! Determinism contract: [`run_indexed`] assigns each unit a fixed index
//! and returns results **in index order**, so callers that aggregate in
//! index order produce byte-identical output regardless of how many worker
//! threads happened to execute the units, or in which wall-clock order they
//! finished.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// `0` means "not set": fall back to the machine's available parallelism.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-thread budget for this process.
///
/// `0` restores the default (available parallelism).  Mirrors the style of
/// the process-global overlay filter: a plain global because the binaries
/// configure it once from the command line before any run starts.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The configured worker-thread budget: the value of the last
/// [`set_threads`] call, or the machine's available parallelism when unset
/// (falling back to 1 if even that is unknown).
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// The machine's available parallelism (what `--threads` defaults to).
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `count` independent units on up to [`threads`] worker threads and
/// returns their results **in index order**.
///
/// Workers claim unit indices from a shared atomic counter, so the
/// assignment of units to threads is racy — but each unit's inputs depend
/// only on its index and the results are reassembled by index, which is
/// what keeps the output bit-deterministic for any thread count.  With a
/// budget of one (or a single unit) the units run inline on the caller's
/// thread, with no pool at all.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, T)>> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("worker panicked"));
        }
    });
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, value) in per_worker.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("unit {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        set_threads(4);
        let out = run_indexed(100, |i| i * i);
        set_threads(0);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_budget_runs_inline() {
        set_threads(1);
        let out = run_indexed(10, |i| i + 1);
        set_threads(0);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_units_is_fine() {
        let out: Vec<usize> = run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_budget_round_trips() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
        assert!(default_threads() >= 1);
    }
}
