//! The [`SimNetwork`]: message queue, delivery, failure injection and
//! accounting glue.

use std::collections::VecDeque;

use crate::message::{Envelope, NetMessage};
use crate::peer::{PeerId, PeerRegistry, PeerStatus};
use crate::stats::{MessageStats, OpScope};

/// Error returned by [`SimNetwork::send`] when the *sender* is not a live
/// peer (sending from a dead peer indicates a protocol bug, not a simulated
/// fault, so it is an error rather than a counted failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The sending peer is unknown to the registry.
    UnknownSender(PeerId),
    /// The sending peer exists but is not alive.
    DeadSender(PeerId),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownSender(p) => write!(f, "unknown sender {p}"),
            SendError::DeadSender(p) => write!(f, "sender {p} is not alive"),
        }
    }
}

impl std::error::Error for SendError {}

/// Delivery failure surfaced by [`SimNetwork::deliver_next`]: the destination
/// peer was dead when the message arrived.  Protocols use this to trigger
/// their fault-tolerance paths (paper §III-C/D).
#[derive(Clone, Debug)]
pub struct DeliveryError<M> {
    /// The message that could not be delivered.
    pub envelope: Envelope<M>,
    /// Status of the destination at delivery time.
    pub destination_status: Option<PeerStatus>,
}

/// A deterministic message-passing network simulator.
///
/// Messages are delivered in FIFO order.  Every send is counted in
/// [`MessageStats`]; failed deliveries (dead destination) are counted
/// separately and returned to the caller.
#[derive(Clone, Debug, Default)]
pub struct SimNetwork<M> {
    peers: PeerRegistry,
    queue: VecDeque<Envelope<M>>,
    stats: MessageStats,
}

impl<M: NetMessage> SimNetwork<M> {
    /// Creates an empty network with no peers.
    pub fn new() -> Self {
        Self {
            peers: PeerRegistry::new(),
            queue: VecDeque::new(),
            stats: MessageStats::new(),
        }
    }

    /// Registers a new live peer.
    pub fn add_peer(&mut self) -> PeerId {
        self.peers.register()
    }

    /// Read-only access to the peer registry.
    pub fn peers(&self) -> &PeerRegistry {
        &self.peers
    }

    /// Marks a peer as failed (abrupt departure).
    pub fn fail_peer(&mut self, peer: PeerId) -> bool {
        self.peers.mark_failed(peer)
    }

    /// Marks a peer as gracefully departed.
    pub fn depart_peer(&mut self, peer: PeerId) -> bool {
        self.peers.mark_departed(peer)
    }

    /// Brings a departed/failed peer back (e.g. a leaf re-joining during
    /// load balancing).
    pub fn revive_peer(&mut self, peer: PeerId) -> bool {
        self.peers.mark_alive(peer)
    }

    /// `true` if the peer is currently alive.
    pub fn is_alive(&self, peer: PeerId) -> bool {
        self.peers.is_alive(peer)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Mutable access to statistics (used by harnesses to reset per-peer
    /// counters between experiment phases).
    pub fn stats_mut(&mut self) -> &mut MessageStats {
        &mut self.stats
    }

    /// Opens a new operation accounting scope with the given label.
    pub fn begin_op(&mut self, label: &str) -> OpScope {
        self.stats.begin_op(label)
    }

    /// Closes an operation scope.
    ///
    /// This is currently a no-op bookkeeping hook (scopes are keyed by
    /// [`OpId`] at send time), kept so call sites read naturally and so
    /// future per-op finalization (e.g. latency accounting) has a seam.
    pub fn finish_op(&mut self, _scope: OpScope) {}

    /// Sends a message from `from` to `to`, attributed to operation `op`,
    /// with an explicit hop count.
    ///
    /// The message is counted immediately (the paper counts *passing
    /// messages*, i.e. transmissions, regardless of whether the destination
    /// turns out to be dead).
    pub fn send_with_hop(
        &mut self,
        op: OpScope,
        from: PeerId,
        to: PeerId,
        hop: u32,
        payload: M,
    ) -> Result<(), SendError> {
        match self.peers.status(from) {
            None => return Err(SendError::UnknownSender(from)),
            Some(status) if !status.is_alive() => return Err(SendError::DeadSender(from)),
            Some(_) => {}
        }
        let bytes = payload.approximate_size();
        self.stats.record_send(op.id, payload.kind(), bytes, hop);
        self.queue.push_back(Envelope {
            from,
            to,
            hop,
            op: op.id,
            payload,
        });
        Ok(())
    }

    /// Sends a message with hop count 1 (first hop of an operation).
    pub fn send(
        &mut self,
        op: OpScope,
        from: PeerId,
        to: PeerId,
        payload: M,
    ) -> Result<(), SendError> {
        self.send_with_hop(op, from, to, 1, payload)
    }

    /// Counts a message without enqueuing it for delivery.
    ///
    /// Several BATON maintenance steps are pure notifications whose replies
    /// carry no protocol state the simulation needs to model (e.g. "inform
    /// your children about the new node", paper §III-A). `count_message`
    /// charges such traffic to the operation without forcing the caller to
    /// round-trip a payload through the queue.
    pub fn count_message(&mut self, op: OpScope, kind: &'static str, from: PeerId, to: PeerId) {
        let _ = from;
        self.stats.record_send(op.id, kind, 64, 1);
        if self.peers.is_alive(to) {
            self.stats.record_delivery(to);
        } else {
            self.stats.record_failure(op.id);
        }
    }

    /// Number of messages waiting for delivery.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Delivers the next queued message.
    ///
    /// * `None` — the queue is empty.
    /// * `Some(Ok(envelope))` — the destination is alive; the caller should
    ///   invoke the destination's handler.
    /// * `Some(Err(DeliveryError))` — the destination is dead; the caller
    ///   owns fault handling.
    #[allow(clippy::type_complexity)]
    pub fn deliver_next(&mut self) -> Option<Result<Envelope<M>, DeliveryError<M>>> {
        let envelope = self.queue.pop_front()?;
        let status = self.peers.status(envelope.to);
        if status.is_some_and(PeerStatus::is_alive) {
            self.stats.record_delivery(envelope.to);
            Some(Ok(envelope))
        } else {
            self.stats.record_failure(envelope.op);
            Some(Err(DeliveryError {
                envelope,
                destination_status: status,
            }))
        }
    }

    /// Discards all queued messages (used between experiment phases).
    pub fn drain_queue(&mut self) {
        self.queue.clear();
    }

    /// Messages attributed to operation `op` so far.
    pub fn op_messages(&self, op: OpScope) -> u64 {
        self.stats.op(op.id).map(|s| s.messages).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Hello,
        World,
    }

    impl NetMessage for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Hello => "hello",
                Msg::World => "world",
            }
        }
    }

    fn two_peer_net() -> (SimNetwork<Msg>, PeerId, PeerId) {
        let mut net = SimNetwork::new();
        let a = net.add_peer();
        let b = net.add_peer();
        (net, a, b)
    }

    #[test]
    fn send_and_deliver_fifo_order() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, b, a, Msg::World).unwrap();
        assert_eq!(net.pending(), 2);
        let first = net.deliver_next().unwrap().unwrap();
        assert_eq!(first.payload, Msg::Hello);
        assert_eq!(first.to, b);
        let second = net.deliver_next().unwrap().unwrap();
        assert_eq!(second.payload, Msg::World);
        assert!(net.deliver_next().is_none());
        assert_eq!(net.stats().total_sent(), 2);
        assert_eq!(net.stats().total_delivered(), 2);
    }

    #[test]
    fn sending_from_dead_peer_is_an_error() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.fail_peer(a);
        let err = net.send(op, a, b, Msg::Hello).unwrap_err();
        assert_eq!(err, SendError::DeadSender(a));
        assert_eq!(net.stats().total_sent(), 0);
    }

    #[test]
    fn sending_from_unknown_peer_is_an_error() {
        let (mut net, _a, b) = two_peer_net();
        let op = net.begin_op("test");
        let ghost = PeerId(999);
        let err = net.send(op, ghost, b, Msg::Hello).unwrap_err();
        assert_eq!(err, SendError::UnknownSender(ghost));
    }

    #[test]
    fn delivery_to_dead_peer_is_counted_and_surfaced() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.fail_peer(b);
        let result = net.deliver_next().unwrap();
        let err = result.unwrap_err();
        assert_eq!(err.envelope.to, b);
        assert_eq!(err.destination_status, Some(PeerStatus::Failed));
        assert_eq!(net.stats().total_failed(), 1);
        assert_eq!(net.stats().total_delivered(), 0);
        // The send itself is still counted: the paper counts transmissions.
        assert_eq!(net.stats().total_sent(), 1);
        assert_eq!(net.op_messages(op), 1);
        assert_eq!(net.stats().op(op.id).unwrap().failed_deliveries, 1);
    }

    #[test]
    fn count_message_charges_op_without_queueing() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("notify");
        net.count_message(op, "notify.children", a, b);
        assert_eq!(net.pending(), 0);
        assert_eq!(net.op_messages(op), 1);
        assert_eq!(net.stats().total_delivered(), 1);
        net.fail_peer(b);
        net.count_message(op, "notify.children", a, b);
        assert_eq!(net.stats().total_failed(), 1);
    }

    #[test]
    fn revive_peer_restores_delivery() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.depart_peer(b);
        net.send(op, a, b, Msg::Hello).unwrap();
        assert!(net.deliver_next().unwrap().is_err());
        net.revive_peer(b);
        net.send(op, a, b, Msg::Hello).unwrap();
        assert!(net.deliver_next().unwrap().is_ok());
    }

    #[test]
    fn hop_counts_are_preserved_and_tracked() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("walk");
        net.send_with_hop(op, a, b, 7, Msg::Hello).unwrap();
        let env = net.deliver_next().unwrap().unwrap();
        assert_eq!(env.hop, 7);
        assert_eq!(net.stats().op(op.id).unwrap().max_hops, 7);
    }

    #[test]
    fn drain_queue_discards_pending_messages() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, a, b, Msg::Hello).unwrap();
        net.drain_queue();
        assert_eq!(net.pending(), 0);
        assert!(net.deliver_next().is_none());
    }

    #[test]
    fn per_kind_counters() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, a, b, Msg::World).unwrap();
        assert_eq!(net.stats().kind_count("hello"), 2);
        assert_eq!(net.stats().kind_count("world"), 1);
    }
}
